"""Extension bench: statistical backing for the Fig. 4 comparison.

Pairwise Mann-Whitney tests and Cliff's delta effect sizes over the
per-unit DPM distributions: "Waymo does ~100x better" as a tested,
significant statement rather than a visual one.
"""

from repro.analysis.cross import dominance_matrix, reliability_ranking

from conftest import write_exhibit

ANALYSIS = ["Mercedes-Benz", "Volkswagen", "Waymo", "Delphi", "Nissan",
            "Bosch", "GMCruise", "Tesla"]


def test_cross_manufacturer_significance(benchmark, db, exhibit_dir):
    ranking = benchmark(reliability_ranking, db, ANALYSIS)
    matrix = dominance_matrix(db, ANALYSIS)

    lines = ["Cross-manufacturer DPM comparison "
             "(Mann-Whitney + Cliff's delta)", ""]
    lines.append("ranking (best first):")
    for name, median, wins in ranking:
        lines.append(f"  {name:15s} median DPM {median:.3e}  "
                     f"significantly beats {wins} competitors")
    lines.append("")
    lines.append("Waymo pairwise:")
    for (left, right), comparison in sorted(matrix.items()):
        if "Waymo" not in (left, right):
            continue
        lines.append(
            f"  {left} vs {right}: p={comparison.p_value:.2e} "
            f"delta={comparison.cliffs_delta:+.2f} "
            f"({comparison.effect})")
    write_exhibit(exhibit_dir, "cross_significance", "\n".join(lines))

    assert ranking[0][0] == "Waymo"
    assert ranking[0][2] >= 5
    waymo_rows = [c for pair, c in matrix.items() if "Waymo" in pair]
    significant = [c for c in waymo_rows if c.significant(0.01)]
    assert len(significant) >= 5
