"""Fig. 5: cumulative disengagements vs cumulative miles (log-log).

Paper: strong linear correlation on the log-log axes for every
manufacturer; nobody's curve has flattened (the "burn-in" finding).
"""

from repro.reporting import figures_paper

from conftest import write_exhibit


def test_figure5(benchmark, db, exhibit_dir):
    figure = benchmark(figures_paper.figure5, db)
    write_exhibit(exhibit_dir, "figure5", figure.render())

    assert len(figure.series) == 8
    for series in figure.series:
        # Cumulative counts are monotone...
        assert series.y == sorted(series.y)
        # ...and the log-log fit is reported and strong.
        assert "slope=" in series.annotation
        r2 = float(series.annotation.split("r2=")[1])
        assert r2 > 0.8, series.name
