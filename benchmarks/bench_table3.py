"""Table III: fault tag and category definitions (the ontology)."""

from repro.reporting import tables_paper
from repro.taxonomy import FaultTag

from conftest import write_exhibit


def test_table3(benchmark, db, exhibit_dir):
    table = benchmark(tables_paper.table3, db)
    write_exhibit(exhibit_dir, "table3", table.render())

    assert len(table.rows) == len(FaultTag)
    tags = table.column("Tag")
    for expected in ("Environment", "Computer System",
                     "Recognition System", "Planner", "Sensor",
                     "Network", "Design Bug", "Software",
                     "AV Controller", "Hang/Crash"):
        assert expected in tags
