"""Ablation: the post-OCR correction pass on vs. off.

Measures parse yield (records recovered) with and without the
correction pass, holding the scan noise fixed.
"""

from repro.pipeline import PipelineConfig, process_corpus
from repro.synth import generate_corpus

from conftest import write_exhibit

SEED = 2018
MANUFACTURERS = ["Nissan", "Volkswagen", "Mercedes-Benz", "Tesla"]


def _yield_with(correction_enabled: bool) -> tuple[int, float]:
    corpus = generate_corpus(SEED, MANUFACTURERS)
    config = PipelineConfig(
        seed=SEED, manufacturers=MANUFACTURERS,
        correction_enabled=correction_enabled)
    result = process_corpus(corpus, config)
    truth = len(corpus.truth_disengagements())
    recovered = len(result.database.disengagements)
    accuracy = result.diagnostics.tagging.tag_accuracy
    return recovered, truth, accuracy


def test_ablation_ocr_correction(benchmark, exhibit_dir):
    on_recovered, truth, on_accuracy = _yield_with(True)
    off_recovered, _, off_accuracy = _yield_with(False)

    report = "\n".join([
        "Ablation: post-OCR correction pass",
        f"  correction ON:  {on_recovered}/{truth} records "
        f"({100 * on_recovered / truth:.2f}%), tag accuracy "
        f"{on_accuracy:.4f}",
        f"  correction OFF: {off_recovered}/{truth} records "
        f"({100 * off_recovered / truth:.2f}%), tag accuracy "
        f"{off_accuracy:.4f}",
    ])
    write_exhibit(exhibit_dir, "ablation_ocr", report)

    # Correction must not hurt, and should help at least one metric.
    assert on_recovered >= off_recovered
    assert on_accuracy >= off_accuracy - 0.005
    assert (on_recovered > off_recovered
            or on_accuracy > off_accuracy)

    benchmark(_yield_with, True)
