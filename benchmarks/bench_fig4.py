"""Fig. 4: distributions of DPM per car across manufacturers.

Paper: most manufacturers have median DPM in [0.01, 0.1] per mile with
99th percentile around 1/mile; Waymo ~100x better than competitors.
"""

import numpy as np

from repro.reporting import figures_paper

from conftest import write_exhibit


def test_figure4(benchmark, db, exhibit_dir):
    figure = benchmark(figures_paper.figure4, db)
    write_exhibit(exhibit_dir, "figure4", figure.render())

    assert len(figure.boxes) == 8
    medians = {box.label: box.box.median for box in figure.boxes}
    waymo = medians.pop("Waymo")
    # Waymo is roughly two orders of magnitude better.
    ratio = float(np.median(list(medians.values()))) / waymo
    assert 20 <= ratio <= 1000
    # The bulk of manufacturers sit in the paper's [0.01, 1] band.
    in_band = sum(1 for m in medians.values() if 0.005 <= m <= 1.5)
    assert in_band >= 5
