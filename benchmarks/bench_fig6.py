"""Fig. 6: fault-tag fractions per manufacturer (stacked bars).

Paper: Tesla almost entirely Unknown-T; Waymo with a large system-tag
share on top of perception tags; Volkswagen dominated by computer
system / software tags.
"""

from repro.analysis.categories import tag_fractions
from repro.reporting import figures_paper

from conftest import write_exhibit


def test_figure6(benchmark, db, exhibit_dir):
    figure = benchmark(figures_paper.figure6, db)
    write_exhibit(exhibit_dir, "figure6", figure.render())

    fractions = tag_fractions(
        db, ["Delphi", "Nissan", "Tesla", "Volkswagen", "Waymo"])
    assert fractions["Tesla"].get("Unknown-T", 0) > 0.9
    assert fractions["Waymo"].get("Recognition System", 0) > 0.2
    vw_system = (fractions["Volkswagen"].get("Computer System", 0)
                 + fractions["Volkswagen"].get("Software", 0))
    assert vw_system > 0.4
    for name, tags in fractions.items():
        assert abs(sum(tags.values()) - 1.0) < 1e-6, name
