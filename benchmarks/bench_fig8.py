"""Fig. 8: pooled log(DPM) vs log(cumulative miles) correlation.

Paper: Pearson r = -0.87 at p = 7e-56.
"""

import pytest

from repro.analysis.maturity import pooled_dpm_correlation
from repro.reporting import figures_paper
from repro.reporting.tables_paper import ANALYSIS_ORDER

from conftest import write_exhibit


def test_figure8(benchmark, db, exhibit_dir):
    figure = benchmark(figures_paper.figure8, db)
    write_exhibit(exhibit_dir, "figure8", figure.render())

    result = pooled_dpm_correlation(db, list(ANALYSIS_ORDER))
    assert result.r == pytest.approx(-0.87, abs=0.08)
    assert result.p_value < 1e-30
    assert result.n > 100  # one point per manufacturer-month
