"""Table VI: accidents, fraction of total, and DPA per manufacturer.

Paper: Waymo 25 (59.52%, DPA 18), Delphi 1 (2.38%, 572), Nissan 1
(2.38%, 135), GMCruise 14 (33.33%, 20), Uber ATC 1 (2.38%, -).
"""

import pytest

from repro.reporting import tables_paper

from conftest import write_exhibit

PAPER = {
    "Waymo": (25, 59.52, 18.0),
    "Delphi": (1, 2.38, 572.0),
    "Nissan": (1, 2.38, 135.0),
    "GMCruise": (14, 33.33, 20.0),
    "Uber ATC": (1, 2.38, None),
}


def test_table6(benchmark, db, exhibit_dir):
    table = benchmark(tables_paper.table6, db)
    write_exhibit(exhibit_dir, "table6", table.render())

    for name, (accidents, fraction, dpa) in PAPER.items():
        row = table.row_for(name)
        assert row is not None, name
        assert row[1] == accidents
        assert row[2] == pytest.approx(fraction, abs=0.1)
        if dpa is None:
            assert row[3] is None
        else:
            assert row[3] == pytest.approx(dpa, rel=0.05)
