"""Closed-loop load benchmark for the serving layer.

Measures RPS and p50/p99/p999 latency per route for two server
variants over the same seed-2018 database:

1. **threaded baseline** — the single-process `QueryServer`
   (`ThreadingHTTPServer`, GIL-bound).
2. **pre-fork** — `PreforkServer` with N worker processes sharing
   one port (SO_REUSEPORT where available).

Clients are *separate processes* (not threads), so on a single-core
box the load generator competes fairly with both server variants
instead of sharing the threaded server's GIL.

Budget (tiered, recorded with the core count as in
BENCH_pipeline.json): the N-process server's total RPS must be at
least the threaded baseline's on one core, and >=1.5x it when two or
more cores are present.  The run also asserts that the pre-fork
``/metrics`` exposition aggregates every worker and that pre-fork +
sharded responses are byte-identical to the single-process
monolithic-index server on every benchmarked route.

Run as a script (``python benchmarks/bench_load.py``) for the
self-contained report + budget assertions — this is what CI runs.
``--out BENCH_serving.json`` also records the measurements (the
committed baseline).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import tempfile
import time
import urllib.request
from pathlib import Path

from repro.obs import MetricsRegistry
from repro.pipeline import PipelineConfig, process_corpus
from repro.pipeline.checkpoint import canonical_json
from repro.query import QueryServer
from repro.serving import PreforkServer

SEED = 2018

#: Pre-fork total RPS vs the threaded baseline, by core count.  On
#: one core the expectation is parity (no parallelism to win, only
#: process overhead to lose), so the enforced floor sits a noise
#: margin below 1.0 — closed-loop runs on a contended single core
#: jitter by ~10% even with interleaved rounds.
RPS_BUDGET_MULTICORE = 1.5   # >=2 cores: real parallelism expected
RPS_BUDGET_1CORE = 0.85      # 1 core: parity within measurement noise

#: The benchmarked routes — one cached-query hot path, one grouped
#: query, one listing, one metric shortcut.
ROUTES = (
    "/v1/query?metric=dpm&group_by=manufacturer",
    "/v1/query?metric=count&group_by=month",
    "/v1/manufacturers",
    "/v1/metrics/dpm",
)

#: Response fields that legitimately differ between servers.
VOLATILE_FIELDS = ("elapsed_ms", "cached")


def _build_db():
    from repro.synth import generate_corpus

    config = PipelineConfig(seed=SEED, dictionary_mode="seed")
    corpus = generate_corpus(SEED)
    return process_corpus(corpus, config).database


# ----------------------------------------------------------------------
# The closed-loop client (runs in its own process).
# ----------------------------------------------------------------------

def _client(host: str, port: int, duration_s: float, start_event,
            out_queue) -> None:
    """Issue requests back-to-back over one keep-alive connection
    until the deadline, recording per-route latencies.  Routes are
    cycled so every route sees the same request mix from every
    client."""
    import http.client

    samples: dict[str, list[float]] = {route: [] for route in ROUTES}
    connection = http.client.HTTPConnection(host, port, timeout=10)
    start_event.wait()
    deadline = time.monotonic() + duration_s
    turn = 0
    while time.monotonic() < deadline:
        route = ROUTES[turn % len(ROUTES)]
        turn += 1
        begin = time.perf_counter()
        try:
            connection.request("GET", route)
            connection.getresponse().read()
        except Exception:
            # Reconnect; the gap shows up as missing RPS, not a
            # crash.
            connection.close()
            connection = http.client.HTTPConnection(host, port,
                                                    timeout=10)
            continue
        samples[route].append(time.perf_counter() - begin)
    connection.close()
    out_queue.put(samples)


def _percentile(latencies: list[float], q: float) -> float:
    ordered = sorted(latencies)
    return ordered[min(int(q * len(ordered)), len(ordered) - 1)]


def _measure(host: str, port: int, clients: int,
             duration_s: float) -> dict:
    """One closed-loop measurement: RPS + p50/p99/p999 per route."""
    context = multiprocessing.get_context("fork")
    start_event = context.Event()
    out_queue = context.Queue()
    processes = [context.Process(target=_client,
                                 args=(host, port, duration_s,
                                       start_event, out_queue))
                 for _ in range(clients)]
    for process in processes:
        process.start()
    start_event.set()
    merged: dict[str, list[float]] = {route: [] for route in ROUTES}
    for _ in processes:
        for route, latencies in out_queue.get().items():
            merged[route].extend(latencies)
    for process in processes:
        process.join()
    total = sum(len(latencies) for latencies in merged.values())
    per_route = {}
    for route, latencies in merged.items():
        if not latencies:
            per_route[route] = {"requests": 0}
            continue
        per_route[route] = {
            "requests": len(latencies),
            "rps": round(len(latencies) / duration_s, 1),
            "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
            "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
            "p999_ms": round(_percentile(latencies, 0.999) * 1e3, 3),
        }
    return {"total_requests": total,
            "total_rps": round(total / duration_s, 1),
            "routes": per_route}


def _warmup(url: str) -> None:
    """Prime caches (and every pre-fork worker) before timing."""
    for _ in range(4):
        for route in ROUTES:
            with urllib.request.urlopen(url + route,
                                        timeout=10) as res:
                res.read()


# ----------------------------------------------------------------------
# Parity + aggregation checks (the bench proves, not assumes).
# ----------------------------------------------------------------------

def _fetch(url: str, route: str) -> dict:
    with urllib.request.urlopen(url + route, timeout=10) as res:
        body = json.loads(res.read())
    for field in VOLATILE_FIELDS:
        body.pop(field, None)
    return body


def _assert_parity(single_url: str, prefork_url: str,
                   failures: list[str]) -> bool:
    for route in ROUTES:
        expected = canonical_json(_fetch(single_url, route))
        actual = canonical_json(_fetch(prefork_url, route))
        if actual != expected:
            failures.append(f"pre-fork response differs on {route}")
            return False
    return True


def _assert_metrics_aggregated(server: PreforkServer,
                               failures: list[str]) -> int:
    time.sleep(0.5)  # one worker flush interval
    text = server.scrape_metrics()
    seen = sum(
        1 for worker in range(server.processes)
        if f'repro_serving_worker_up{{worker="{worker}"}} 1' in text)
    if seen != server.processes:
        failures.append(
            f"/metrics aggregates {seen}/{server.processes} workers")
    return seen


# ----------------------------------------------------------------------
# Entry point.
# ----------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="also write the measurements as JSON")
    parser.add_argument("--processes", type=int, default=2,
                        help="pre-fork worker count "
                             "(default: %(default)s)")
    parser.add_argument("--clients", type=int, default=4,
                        help="closed-loop client processes "
                             "(default: %(default)s)")
    parser.add_argument("--duration", type=float, default=2.0,
                        help="seconds per measurement "
                             "(default: %(default)s)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="interleaved measurement rounds per "
                             "variant (best-of; "
                             "default: %(default)s)")
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    budget = (RPS_BUDGET_MULTICORE if cores >= 2
              else RPS_BUDGET_1CORE)
    report: dict = {
        "seed": SEED,
        "cpu_count": cores,
        "processes": args.processes,
        "clients": args.clients,
        "duration_s": args.duration,
        "rps_budget": budget,
    }
    failures: list[str] = []

    print(f"building seed-{SEED} database ({cores} core(s))...")
    db = _build_db()
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        db_path = Path(tmp) / "db.json"
        db.save(db_path)

        # Rounds are interleaved (baseline, pre-fork, baseline, ...)
        # so slow drift on a shared box hits both variants equally;
        # each variant keeps its best round.
        print(f"\ninterleaved rounds: threaded baseline vs pre-fork "
              f"x{args.processes} (sharded index), {args.clients} "
              f"client processes, {args.duration:.1f}s "
              f"x{args.rounds} each:")
        baseline: dict | None = None
        prefork: dict | None = None
        with QueryServer(db, port=0,
                         registry=MetricsRegistry()) as single, \
                PreforkServer(db_path, port=0,
                              processes=args.processes,
                              index_backend="sharded") as server:
            if not server.wait_ready(60):
                print("FAIL: pre-fork server never became ready")
                return 1
            _assert_parity(single.url, server.url, failures)
            _warmup(single.url)
            _warmup(server.url)
            for round_no in range(args.rounds):
                run = _measure(single.host, single.port,
                               args.clients, args.duration)
                if (baseline is None
                        or run["total_rps"] > baseline["total_rps"]):
                    baseline = run
                counter = _measure(server.host, server.port,
                                   args.clients, args.duration)
                if (prefork is None
                        or counter["total_rps"]
                        > prefork["total_rps"]):
                    prefork = counter
                print(f"  round {round_no + 1}: baseline "
                      f"{run['total_rps']:8.1f} rps | pre-fork "
                      f"{counter['total_rps']:8.1f} rps")
            workers_seen = _assert_metrics_aggregated(server,
                                                      failures)
        report["threaded_baseline"] = baseline
        report["prefork"] = prefork
        report["metrics_aggregated_workers"] = workers_seen
        print(f"  best: baseline {baseline['total_rps']:8.1f} rps | "
              f"pre-fork {prefork['total_rps']:8.1f} rps "
              f"(/metrics aggregated {workers_seen} workers)")

    ratio = (prefork["total_rps"] / baseline["total_rps"]
             if baseline["total_rps"] else 0.0)
    report["rps_ratio"] = round(ratio, 3)
    print(f"\npre-fork vs baseline: {ratio:.2f}x "
          f"(budget >={budget:.2f}x on {cores} core(s))")
    for variant in ("threaded_baseline", "prefork"):
        print(f"  {variant}:")
        for route, stats in report[variant]["routes"].items():
            if stats.get("requests"):
                print(f"    {route:45s} {stats['rps']:8.1f} rps  "
                      f"p50 {stats['p50_ms']:7.3f}ms  "
                      f"p99 {stats['p99_ms']:7.3f}ms  "
                      f"p999 {stats['p999_ms']:7.3f}ms")
    if ratio < budget:
        failures.append(
            f"pre-fork RPS {prefork['total_rps']:.1f} is "
            f"{ratio:.2f}x the baseline "
            f"{baseline['total_rps']:.1f}, under the "
            f"{budget:.2f}x budget on {cores} core(s)")

    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nreport written to {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: serving load budgets met "
          "(RPS ratio, parity, metrics aggregation)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
