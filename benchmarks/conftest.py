"""Benchmark fixtures.

The full pipeline runs once per benchmark session; each bench times
its exhibit generator over the resulting database, asserts the paper's
shape, and writes the rendered exhibit to ``benchmarks/output/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.pipeline import PipelineConfig, run_pipeline
from repro.rng import DEFAULT_SEED

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def pipeline_result():
    """The canonical seed-2018 pipeline run."""
    return run_pipeline(PipelineConfig(seed=DEFAULT_SEED))


@pytest.fixture(scope="session")
def db(pipeline_result):
    """The consolidated failure database."""
    return pipeline_result.database


@pytest.fixture(scope="session")
def exhibit_dir():
    """Directory collecting the rendered exhibits."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def write_exhibit(exhibit_dir: Path, name: str, text: str) -> None:
    """Persist one rendered exhibit."""
    (exhibit_dir / f"{name}.txt").write_text(text + "\n",
                                             encoding="utf-8")
