"""Fig. 9: DPM vs cumulative miles per manufacturer with fits.

Paper: negative regression slopes for nearly all manufacturers
(continuous ADS improvement); steeper improvement for manufacturers
starting from higher DPM ("low-hanging fruit"); Bosch the exception.
"""

from repro.analysis.maturity import all_assessments
from repro.reporting import figures_paper
from repro.reporting.tables_paper import ANALYSIS_ORDER

from conftest import write_exhibit


def test_figure9(benchmark, db, exhibit_dir):
    figure = benchmark(figures_paper.figure9, db)
    write_exhibit(exhibit_dir, "figure9", figure.render())

    assessments = all_assessments(db, list(ANALYSIS_ORDER))
    slopes = {name: a.dpm_fit.slope
              for name, a in assessments.items()
              if a.dpm_fit is not None}
    negative = [name for name, slope in slopes.items() if slope < 0]
    assert len(negative) >= 6
    assert slopes["Bosch"] > 0          # the worsening exception
    assert slopes["Waymo"] < -0.3       # strong improvement
    assert not any(a.mature for a in assessments.values())
