"""Table I: fleet size, miles, and incidents per manufacturer.

Paper: 144 cars, 1,116,605 miles, 5,328 disengagements, 42 accidents
(totals row: 61/460,384.1/2,896/10 then 83/656,221/2,432/32).
"""

import pytest

from repro.reporting import tables_paper

from conftest import write_exhibit


def test_table1(benchmark, db, exhibit_dir):
    table = benchmark(tables_paper.table1, db)
    write_exhibit(exhibit_dir, "table1", table.render())

    total = table.row_for("Total")
    assert total[2] + total[6] == pytest.approx(1116605, rel=0.03)
    assert total[3] + total[7] == pytest.approx(5328, abs=20)
    assert total[4] + total[8] == 42
    waymo = table.row_for("Waymo")
    assert waymo[1] == 49 and waymo[5] == 70
    assert waymo[2] == pytest.approx(424332, rel=0.05)
    assert waymo[6] == pytest.approx(635868, rel=0.05)
