"""Parallel fan-out and tagger hot-path benchmarks.

Five budgets guard this perf work:

1. **End-to-end speedup** — ``--workers 4`` must beat serial by
   >= 1.5x on a >= 4-core machine (scaled down to >= 1.1x on 2-3
   cores, waived on a single core where parallel speedup is
   physically impossible).  The parallel run is also asserted
   byte-identical to serial, so the speedup can never be bought with
   drift.
2. **Serial overhead** — with ``--workers`` unset the runner must stay
   within 5% of a pre-parallel replica of the same serial loop (the
   fan-out plumbing may not tax people who don't use it).
3. **Tagger index** — the inverted-index matcher must beat the
   ``match_linear`` reference scan by >= 5x per record (this is the
   core-count-independent part, asserted everywhere).
4. **Batched tagging** — ``tag_batch`` over the whole corpus must beat
   the per-unit ``tag`` loop by >= 1.3x (one normalization/tokenize
   pass through the shared cache, candidate sets via the inverted
   index, duplicate narratives deduped by identity), with results
   asserted equal element-by-element.
5. **Chunked payload** — at 2 workers, the chunked ``BatchOutcome``
   wire encoding must cut pickled bytes per unit by >= 30% versus the
   per-unit ``UnitOutcome`` stream it replaced (the chunk ships one
   merged health delta / metrics dump / wall time instead of one per
   unit).

Run as a script (``python benchmarks/bench_parallel.py``) for the
self-contained report CI runs; ``--out`` additionally writes the
measurements as JSON (the committed ``BENCH_pipeline.json`` baseline
is a snapshot of that report).
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import time
from pathlib import Path

from repro.nlp.dictionary import FailureDictionary
from repro.nlp.evaluation import evaluate_tagger
from repro.nlp.tagger import VotingTagger
from repro.nlp.textcache import cached_tokens
from repro.parsing import default_registry, filter_records
from repro.parsing.normalize import normalize_records
from repro.pipeline import (
    FailureDatabase,
    PipelineConfig,
    StageGuard,
    process_corpus,
)
from repro.pipeline import runner
from repro.pipeline.parallel import (
    BatchOutcome,
    UnitOutcome,
    resolve_batch_size,
)
from repro.pipeline.stages import OcrStage, PipelineDiagnostics
from repro.synth import generate_corpus

SEED = 2018
SUBSET = ["Nissan", "Volkswagen", "Delphi", "Tesla"]

#: Parallel must beat serial by this much at 4 workers (>= 4 cores).
SPEEDUP_BUDGET = 1.5
#: Relaxed budget when only 2-3 cores are available.
SPEEDUP_BUDGET_2CORE = 1.1
#: Serial runs must stay within this fraction of the replica loop.
OVERHEAD_BUDGET = 0.05
#: Indexed matching must beat the linear reference scan by this much.
INDEX_SPEEDUP_BUDGET = 5.0
#: ``tag_batch`` must beat the per-unit ``tag`` loop by this much.
TAG_BATCH_SPEEDUP_BUDGET = 1.3
#: Chunked dispatch must cut wire bytes per unit by this fraction
#: versus the per-unit outcome stream (measured at 2 workers).
BATCH_PAYLOAD_REDUCTION_BUDGET = 0.30


def _config(**overrides) -> PipelineConfig:
    return PipelineConfig(seed=SEED, manufacturers=SUBSET, **overrides)


def _replica_run(corpus, config: PipelineConfig) -> FailureDatabase:
    """The pre-parallel serial pipeline loop, reproduced inline.

    Exactly what ``process_corpus`` did before the fan-out layer
    existed: the same per-unit helpers, no executor plumbing, no
    stage timers.  Serves as the baseline for the serial-overhead
    budget — and as a correctness witness, since its database must be
    byte-identical to the real runner's.
    """
    diagnostics = PipelineDiagnostics()
    database = FailureDatabase()
    guard = StageGuard(policy=config.resolved_policy(),
                       seed=config.seed,
                       quarantine=database.quarantine)
    diagnostics.health = guard.health
    ocr_stage = OcrStage(
        config.scanner_profile, config.correction_enabled,
        config.fallback_threshold) if config.ocr_enabled else None
    registry = default_registry()
    raw_disengagements, raw_mileage = [], []
    for document in corpus.disengagement_documents:
        runner._process_disengagement(
            document, config, diagnostics, database, guard, ocr_stage,
            registry, raw_disengagements, raw_mileage, journal=False)
    for document in corpus.accident_documents:
        runner._process_accident(
            document, config, diagnostics, database, guard, ocr_stage,
            journal=False)
    normalized, mileage, _ = normalize_records(
        raw_disengagements, raw_mileage)
    filtered, _ = filter_records(
        normalized, drop_planned=config.drop_planned)
    dictionary = guard.run(
        "dictionary", "corpus",
        lambda: runner._build_dictionary(filtered, config),
        fallback=lambda: runner._degraded_dictionary())
    tagger = VotingTagger(dictionary)
    for record in filtered:
        result = guard.run(
            "tag", runner.record_id(record),
            lambda: tagger.tag(record.description),
            fallback=runner._unknown_tag)
        record.tag = result.tag
        record.category = result.category
    if config.attach_truth:
        evaluate_tagger(tagger, filtered)
    database.disengagements = filtered
    database.mileage = mileage
    return database


def _timed(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


# ----------------------------------------------------------------------
# pytest-benchmark entry points (informational).
# ----------------------------------------------------------------------

def test_parallel_full_pipeline(benchmark):
    corpus = generate_corpus(SEED, SUBSET)

    def run():
        return process_corpus(corpus, _config(workers=4))

    result = benchmark(run)
    assert result.diagnostics.parallel.enabled
    assert len(result.database.disengagements) > 1000


def test_indexed_match_micro(benchmark, db):
    texts = [r.description for r in db.disengagements]
    dictionary = FailureDictionary.build(texts)
    token_lists = [cached_tokens(t) for t in texts]

    def match_all():
        for tokens in token_lists:
            dictionary.match(tokens)

    benchmark(match_all)


# ----------------------------------------------------------------------
# Self-contained report (what CI runs).
# ----------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="also write the measurements as JSON")
    parser.add_argument("--rounds", type=int, default=5,
                        help="pipeline timing rounds per variant "
                             "(best-of; default: %(default)s)")
    args = parser.parse_args(argv)
    cores = os.cpu_count() or 1
    report: dict = {"seed": SEED, "manufacturers": SUBSET,
                    "cpu_count": cores}
    failures: list[str] = []

    print(f"synthesizing seed-{SEED} corpus "
          f"({', '.join(SUBSET)}; {cores} core(s))...")
    corpus = generate_corpus(SEED, SUBSET)
    serial_result = process_corpus(corpus, _config())  # warm caches
    serial_json = serial_result.database.to_json()
    records = len(serial_result.database.disengagements)

    # -- serial overhead vs the pre-parallel replica loop -------------
    replica_db, _ = _timed(lambda: _replica_run(corpus, _config()))
    assert replica_db.to_json() == serial_json, (
        "replica loop diverged from the runner — overhead A/B void")
    serial_times, replica_times = [], []
    for _ in range(args.rounds):
        serial_times.append(
            _timed(lambda: process_corpus(corpus, _config()))[1])
        replica_times.append(
            _timed(lambda: _replica_run(corpus, _config()))[1])
    serial_wall = min(serial_times)
    replica_wall = min(replica_times)
    overhead = serial_wall / replica_wall - 1.0
    report["serial_wall_s"] = round(serial_wall, 4)
    report["replica_wall_s"] = round(replica_wall, 4)
    report["serial_overhead"] = round(overhead, 4)
    print(f"\nserial runner:    {serial_wall:.3f}s over "
          f"{records:,} records")
    print(f"replica loop:     {replica_wall:.3f}s")
    print(f"serial overhead:  {overhead:+.1%} "
          f"(budget {OVERHEAD_BUDGET:.0%})")
    if overhead > OVERHEAD_BUDGET:
        failures.append(
            f"serial overhead {overhead:+.1%} exceeds "
            f"{OVERHEAD_BUDGET:.0%}")

    # -- end-to-end speedup at 2 and 4 workers ------------------------
    report["parallel"] = {}
    for workers in (2, 4):
        best = None
        for _ in range(args.rounds):
            result, wall = _timed(
                lambda: process_corpus(corpus, _config(workers=workers)))
            assert result.database.to_json() == serial_json, (
                f"--workers {workers} output diverged from serial")
            best = wall if best is None else min(best, wall)
        speedup = serial_wall / best
        batch_sizes = dict(sorted(
            result.diagnostics.parallel.batch_size.items()))
        report["parallel"][str(workers)] = {
            "wall_s": round(best, 4), "speedup": round(speedup, 3),
            "batch_size": batch_sizes}
        sizes = ", ".join(f"{s}={n}" for s, n in batch_sizes.items())
        print(f"{workers} workers:        {best:.3f}s "
              f"({speedup:.2f}x vs serial, byte-identical; "
              f"auto batch {sizes})")

    speedup4 = report["parallel"]["4"]["speedup"]
    if cores >= 4:
        budget = SPEEDUP_BUDGET
    elif cores >= 2:
        budget = SPEEDUP_BUDGET_2CORE
    else:
        budget = None
    report["speedup_budget"] = budget
    if budget is None:
        print(f"speedup budget:   waived (single-core machine)")
    else:
        print(f"speedup budget:   >={budget:.1f}x at 4 workers "
              f"({cores} cores)")
        if speedup4 < budget:
            failures.append(
                f"4-worker speedup {speedup4:.2f}x under the "
                f"{budget:.1f}x budget on {cores} cores")

    # -- tagger hot path: inverted index vs linear reference ----------
    texts = [r.description for r in serial_result.database.disengagements]
    dictionary = FailureDictionary.build(texts)
    token_lists = [cached_tokens(t) for t in texts]
    sample = token_lists[:400]
    for tokens in sample:  # parity spot-check rides along
        assert dictionary.match(tokens) == dictionary.match_linear(tokens)

    def indexed():
        for tokens in token_lists:
            dictionary.match(tokens)

    def linear():
        for tokens in sample:
            dictionary.match_linear(tokens)

    _, indexed_s = _timed(indexed)
    _, linear_sample_s = _timed(linear)
    indexed_per = indexed_s / len(token_lists)
    linear_per = linear_sample_s / len(sample)
    index_speedup = linear_per / indexed_per
    tagger = VotingTagger(dictionary)
    _, tag_s = _timed(lambda: [tagger.tag(t) for t in texts])
    records_per_s = len(texts) / tag_s
    report["tagger"] = {
        "entries": len(dictionary),
        "indexed_us_per_record": round(indexed_per * 1e6, 2),
        "linear_us_per_record": round(linear_per * 1e6, 2),
        "index_speedup": round(index_speedup, 1),
        "records_per_s": round(records_per_s, 1),
    }
    print(f"\ntagger dictionary: {len(dictionary):,} entries over "
          f"{len(texts):,} narratives")
    print(f"  indexed match:  {indexed_per * 1e6:8.1f} us/record")
    print(f"  linear match:   {linear_per * 1e6:8.1f} us/record")
    print(f"  index speedup:  {index_speedup:8.1f}x "
          f"(budget >={INDEX_SPEEDUP_BUDGET:.0f}x)")
    print(f"  end-to-end tag: {records_per_s:8,.0f} records/s")
    if index_speedup < INDEX_SPEEDUP_BUDGET:
        failures.append(
            f"index speedup {index_speedup:.1f}x under the "
            f"{INDEX_SPEEDUP_BUDGET:.0f}x budget")

    # -- batch-native tagging vs the per-unit loop --------------------
    # ``tag_batch`` pushes the whole corpus through normalization /
    # tokenization / index matching in one pass and dedupes duplicate
    # narratives by identity; the per-unit ``tag`` loop is the
    # unchanged reference implementation.  Parity is asserted on every
    # round, so the speedup can never be bought with drift.
    per_unit_results, _ = _timed(lambda: [tagger.tag(t) for t in texts])
    per_unit_times, batch_times = [], []
    for _ in range(args.rounds):
        batch_results, wall = _timed(lambda: tagger.tag_batch(texts))
        assert batch_results == per_unit_results, (
            "tag_batch diverged from the per-unit tag loop")
        batch_times.append(wall)
        per_unit_times.append(
            _timed(lambda: [tagger.tag(t) for t in texts])[1])
    per_unit_wall = min(per_unit_times)
    batch_wall = min(batch_times)
    batch_speedup = per_unit_wall / batch_wall
    distinct = len(set(texts))
    report["tag_batch"] = {
        "narratives": len(texts),
        "distinct_narratives": distinct,
        "per_unit_wall_s": round(per_unit_wall, 4),
        "batch_wall_s": round(batch_wall, 4),
        "speedup": round(batch_speedup, 3),
        "speedup_budget": TAG_BATCH_SPEEDUP_BUDGET,
    }
    print(f"\nbatched tagging ({len(texts):,} narratives, "
          f"{distinct:,} distinct):")
    print(f"  per-unit loop:  {per_unit_wall:8.3f}s")
    print(f"  tag_batch:      {batch_wall:8.3f}s")
    print(f"  speedup:        {batch_speedup:8.2f}x "
          f"(budget >={TAG_BATCH_SPEEDUP_BUDGET:.1f}x, "
          "results asserted equal)")
    if batch_speedup < TAG_BATCH_SPEEDUP_BUDGET:
        failures.append(
            f"tag_batch speedup {batch_speedup:.2f}x under the "
            f"{TAG_BATCH_SPEEDUP_BUDGET:.1f}x budget")

    # -- worker payload size: slots/tuple pickle vs dict baseline -----
    # One Stage III outcome crosses the pool pipe per tagged record.
    # Compare the shipped encoding (__slots__ dataclass with a 7-tuple
    # __getstate__, (stages, events) health pair) against what the
    # same outcomes cost as plain keyed dicts — the pre-compaction
    # wire shape.
    outcomes = [
        UnitOutcome(
            body={"tag": r.tag.value, "category": r.category.value},
            health=({"tag": (1, 0, 0, 0, 0)}, []),
            elapsed=0.001)
        for r in serial_result.database.disengagements]
    legacy = [
        {"body": o.body,
         "health": {"stages": {k: list(v)
                               for k, v in o.health[0].items()},
                    "events": list(o.health[1])},
         "error": o.error, "ocr": o.ocr, "elapsed": o.elapsed,
         "injected": o.injected, "metrics": o.metrics}
        for o in outcomes]
    compact_bytes = sum(len(pickle.dumps(o)) for o in outcomes)
    legacy_bytes = sum(len(pickle.dumps(o)) for o in legacy)
    payload_delta = 1.0 - compact_bytes / legacy_bytes
    report["worker_payload"] = {
        "units": len(outcomes),
        "compact_bytes_per_unit": round(compact_bytes / len(outcomes), 1),
        "dict_bytes_per_unit": round(legacy_bytes / len(outcomes), 1),
        "size_reduction": round(payload_delta, 4),
    }
    print(f"\nworker payload ({len(outcomes):,} Stage III outcomes):")
    print(f"  tuple-state:    {compact_bytes / len(outcomes):8.1f} "
          "bytes/unit")
    print(f"  dict baseline:  {legacy_bytes / len(outcomes):8.1f} "
          "bytes/unit")
    print(f"  reduction:      {payload_delta:8.1%}")
    if compact_bytes >= legacy_bytes:
        failures.append(
            "compact worker payload is not smaller than the dict "
            "baseline")

    # -- chunked dispatch payload vs the per-unit stream --------------
    # The same Stage III results shipped the way the chunked engine
    # ships them: one ``BatchOutcome`` per auto-resolved chunk at 2
    # workers, carrying per-unit journal bodies but only ONE merged
    # health delta / wall time / chaos count for the whole chunk.  The
    # per-unit baseline is the ``UnitOutcome`` stream built above.
    chunk_size = resolve_batch_size(None, len(outcomes), workers=2)
    chunks = [
        BatchOutcome(
            bodies=[o.body for o in outcomes[i:i + chunk_size]],
            health=({"tag": (len(outcomes[i:i + chunk_size]),
                             0, 0, 0, 0)}, []),
            elapsed=sum(o.elapsed for o in outcomes[i:i + chunk_size]))
        for i in range(0, len(outcomes), chunk_size)]
    chunked_bytes = sum(len(pickle.dumps(c)) for c in chunks)
    chunk_delta = 1.0 - chunked_bytes / compact_bytes
    report["batched_payload"] = {
        "units": len(outcomes),
        "workers": 2,
        "batch_size": chunk_size,
        "chunk_tasks": len(chunks),
        "per_unit_bytes_per_unit": round(
            compact_bytes / len(outcomes), 1),
        "chunked_bytes_per_unit": round(
            chunked_bytes / len(outcomes), 1),
        "size_reduction": round(chunk_delta, 4),
        "reduction_budget": BATCH_PAYLOAD_REDUCTION_BUDGET,
    }
    print(f"\nchunked dispatch payload (2 workers, auto batch "
          f"{chunk_size} -> {len(chunks)} chunk tasks):")
    print(f"  per-unit:       {compact_bytes / len(outcomes):8.1f} "
          "bytes/unit")
    print(f"  chunked:        {chunked_bytes / len(outcomes):8.1f} "
          "bytes/unit")
    print(f"  reduction:      {chunk_delta:8.1%} "
          f"(budget >={BATCH_PAYLOAD_REDUCTION_BUDGET:.0%})")
    if chunk_delta < BATCH_PAYLOAD_REDUCTION_BUDGET:
        failures.append(
            f"chunked payload reduction {chunk_delta:.1%} under the "
            f"{BATCH_PAYLOAD_REDUCTION_BUDGET:.0%} budget")

    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nreport written to {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("\nall budgets met.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
