"""Latency of the query & serving layer on the seed database.

Measures p50/p99 end-to-end HTTP latency for the five endpoint
families (``/healthz``, ``/stats``, ``/manufacturers``,
``/metrics/*``, ``/query``) with a cold result cache (``cache_size=0``
— every request recomputes) and a warm one, plus the recorded budget
this layer exists for:

    **a warm-cache grouped DPM query must be ≥10× faster than the
    equivalent full-scan analysis call** (``manufacturer_dpm_summary``
    over the whole database).

Run as a script (``python benchmarks/bench_query.py``) for the
self-contained report + budget assertion — this is what CI runs.  The
pytest-benchmark entry points time the engine paths individually.
"""

from __future__ import annotations

import json
import time
import urllib.request

from repro.analysis.dpm import manufacturer_dpm_summary
from repro.pipeline import PipelineConfig, run_pipeline
from repro.query import Query, QueryEngine, QueryServer
from repro.rng import DEFAULT_SEED

SPEEDUP_BUDGET = 10.0

#: One representative request per endpoint family.
ENDPOINT_FAMILIES = {
    "healthz": "/healthz",
    "stats": "/stats",
    "manufacturers": "/manufacturers",
    "metrics": "/metrics/dpm",
    "query": "/query?metric=categories",
}


def _seed_database():
    return run_pipeline(PipelineConfig(seed=DEFAULT_SEED)).database


def _fetch(url: str) -> None:
    with urllib.request.urlopen(url, timeout=30) as response:
        json.loads(response.read())


def _sample_ms(fn, rounds: int) -> list[float]:
    samples = []
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - started) * 1e3)
    return sorted(samples)


def _percentile(sorted_samples: list[float], q: float) -> float:
    index = min(len(sorted_samples) - 1,
                round(q * (len(sorted_samples) - 1)))
    return sorted_samples[index]


# ----------------------------------------------------------------------
# pytest-benchmark entry points (engine-level, no HTTP).
# ----------------------------------------------------------------------


def test_cold_grouped_dpm(benchmark, db):
    engine = QueryEngine(db, cache_size=0)  # every call recomputes
    query = Query(metric="dpm")
    result = benchmark(lambda: engine.execute(query))
    assert result.value and not result.cached


def test_warm_grouped_dpm(benchmark, db):
    engine = QueryEngine(db)
    query = Query(metric="dpm")
    engine.execute(query)  # prime
    result = benchmark(lambda: engine.execute(query))
    assert result.cached


def test_full_scan_equivalent(benchmark, db):
    summaries = benchmark(lambda: manufacturer_dpm_summary(db))
    assert summaries


def test_index_build(benchmark, db):
    from repro.query import DatabaseIndex

    index = benchmark(lambda: DatabaseIndex.build(db))
    assert index.counts["disengagements"] == len(db.disengagements)


def test_warm_speedup_budget(db):
    """The recorded ≥10× warm-cache budget, engine-level."""
    engine = QueryEngine(db)
    query = Query(metric="dpm")
    engine.execute(query)
    rounds = 50
    warm = _sample_ms(lambda: engine.execute(query), rounds)
    scan = _sample_ms(lambda: manufacturer_dpm_summary(db), rounds)
    speedup = _percentile(scan, 0.5) / max(_percentile(warm, 0.5),
                                           1e-6)
    assert speedup >= SPEEDUP_BUDGET, (
        f"warm-cache DPM speedup {speedup:.1f}x is under the "
        f"{SPEEDUP_BUDGET:.0f}x budget")


# ----------------------------------------------------------------------
# Self-contained report (what CI runs).
# ----------------------------------------------------------------------


def main() -> None:
    print(f"building seed-{DEFAULT_SEED} database...")
    db = _seed_database()
    print(f"  {len(db.disengagements):,} disengagements, "
          f"{len(db.accidents)} accidents, "
          f"{len(db.mileage):,} mileage cells")

    rounds = 30
    print(f"\nHTTP endpoint latency (ms, {rounds} rounds each):")
    print(f"  {'family':15s} {'cold p50':>9s} {'cold p99':>9s} "
          f"{'warm p50':>9s} {'warm p99':>9s}")
    warm_rows = {}
    for label, cache_size in (("cold", 0), ("warm", 256)):
        with QueryServer(db, port=0, cache_size=cache_size) as server:
            for family, path in ENDPOINT_FAMILIES.items():
                url = server.url + path
                _fetch(url)  # connection + (warm) cache priming
                samples = _sample_ms(lambda: _fetch(url), rounds)
                warm_rows.setdefault(family, {})[label] = (
                    _percentile(samples, 0.5),
                    _percentile(samples, 0.99))
    for family, row in warm_rows.items():
        cold_p50, cold_p99 = row["cold"]
        warm_p50, warm_p99 = row["warm"]
        print(f"  {family:15s} {cold_p50:9.3f} {cold_p99:9.3f} "
              f"{warm_p50:9.3f} {warm_p99:9.3f}")

    print("\nwarm-cache grouped DPM vs full-scan analysis:")
    engine = QueryEngine(db)
    query = Query(metric="dpm")
    engine.execute(query)
    rounds = 100
    warm = _sample_ms(lambda: engine.execute(query), rounds)
    scan = _sample_ms(lambda: manufacturer_dpm_summary(db), rounds)
    warm_p50 = _percentile(warm, 0.5)
    scan_p50 = _percentile(scan, 0.5)
    speedup = scan_p50 / max(warm_p50, 1e-6)
    print(f"  full scan  p50 {scan_p50:9.3f} ms   "
          f"p99 {_percentile(scan, 0.99):9.3f} ms")
    print(f"  warm cache p50 {warm_p50:9.3f} ms   "
          f"p99 {_percentile(warm, 0.99):9.3f} ms")
    print(f"  speedup    {speedup:8.1f}x  (budget: "
          f">={SPEEDUP_BUDGET:.0f}x)")
    assert speedup >= SPEEDUP_BUDGET, (
        f"warm-cache speedup {speedup:.1f}x violates the "
        f"{SPEEDUP_BUDGET:.0f}x budget")
    print("\nbudget met.")


if __name__ == "__main__":
    main()
