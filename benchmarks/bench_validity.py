"""Extension bench: threats-to-validity instruments.

Seed sensitivity of the headline metrics (our analogue of replication
across datasets), bootstrap CIs for the medians, and the
underreporting sweep.
"""

import pytest

from repro.analysis.validity import (
    median_dpm_ci,
    seed_sensitivity,
    underreporting_sweep,
)

from conftest import write_exhibit

SEEDS = (2018, 7, 42)
SUBSET = ["Nissan", "Volkswagen", "Delphi", "Tesla", "Waymo",
          "Mercedes-Benz"]


def test_seed_sensitivity(benchmark, exhibit_dir):
    results = benchmark.pedantic(
        seed_sensitivity, args=(SEEDS, SUBSET), rounds=1, iterations=1)

    lines = ["Seed sensitivity of headline metrics "
             f"(seeds={SEEDS}, subset of manufacturers)", ""]
    for metric, sweep in results.items():
        lines.append(f"{metric:25s} mean={sweep.mean:.4f} "
                     f"std={sweep.std:.4f} spread={sweep.spread:.4f}")
    write_exhibit(exhibit_dir, "validity_seeds", "\n".join(lines))

    # The headline conclusions must be stable across corpora.
    assert results["pooled_r"].mean == pytest.approx(-0.85, abs=0.1)
    assert results["pooled_r"].spread < 0.15
    assert results["tag_accuracy"].mean > 0.95
    assert results["mean_reaction_time_s"].spread < 0.2


def test_bootstrap_and_underreporting(benchmark, db, exhibit_dir):
    ci = benchmark(median_dpm_ci, db, "Waymo")
    sweep = underreporting_sweep(db, factors=(1.0, 2.0, 5.0))

    lines = [
        "Bootstrap CI for Waymo median per-car DPM (95%):",
        f"  {ci.statistic:.3e} in [{ci.low:.3e}, {ci.high:.3e}]",
        "",
        "Underreporting sweep (disengagement counts scaled):",
    ]
    for point in sweep:
        lines.append(
            f"  factor {point.factor:4.1f}: DPM x{point.dpm_scale:.1f}, "
            f"AV-worse-than-human conclusion holds: "
            f"{point.still_worse_than_human}")
    write_exhibit(exhibit_dir, "validity_bootstrap", "\n".join(lines))

    assert ci.low <= ci.statistic <= ci.high
    assert all(p.still_worse_than_human for p in sweep)
