"""Overhead of the resilience layer.

The guard wraps every per-document and per-record step, so its cost on
a *clean* run must be negligible (< 5% vs. the seed
``bench_pipeline_stages`` numbers).  ``test_resilient_full_pipeline``
is directly comparable to that bench's ``test_full_pipeline``; the
micro-benches isolate the guard and retry wrappers themselves, and the
chaos bench shows what a fault-heavy run costs.
"""

from repro.pipeline import (
    ChaosConfig,
    FailurePolicy,
    PipelineConfig,
    StageGuard,
    process_corpus,
    retry_with_backoff,
)
from repro.synth import generate_corpus

SEED = 2018
SUBSET = ["Nissan", "Volkswagen", "Delphi", "Tesla"]


def test_resilient_full_pipeline(benchmark):
    # Identical workload to bench_pipeline_stages.test_full_pipeline;
    # the guard is always on, so the delta vs. the seed numbers IS the
    # resilience overhead.
    corpus = generate_corpus(SEED, SUBSET)
    config = PipelineConfig(seed=SEED, manufacturers=SUBSET)
    result = benchmark(process_corpus, corpus, config)
    assert len(result.database.disengagements) > 1000
    assert result.diagnostics.health.clean


def test_guard_clean_path_micro(benchmark):
    guard = StageGuard(FailurePolicy())
    func = lambda: 1  # noqa: E731

    def run_guarded():
        total = 0
        for _ in range(10_000):
            total += guard.run("bench", "unit", func)
        return total

    assert benchmark(run_guarded) == 10_000


def test_retry_clean_path_micro(benchmark):
    func = lambda: 1  # noqa: E731

    def run_retry():
        total = 0
        for _ in range(10_000):
            total += retry_with_backoff(func, retries=2, seed=SEED,
                                        stream="bench")
        return total

    assert benchmark(run_retry) == 10_000


def test_chaotic_pipeline_with_quarantine(benchmark):
    # A fault-heavy run: 10% parse failures under quarantine.  Not
    # comparable to the clean numbers; shows the cost of capturing
    # tracebacks and carrying on.
    corpus = generate_corpus(SEED, SUBSET)
    config = PipelineConfig(
        seed=12, manufacturers=SUBSET, ocr_enabled=False,
        failure_policy="quarantine",
        chaos=ChaosConfig(stage="parse", rate=0.10))
    result = benchmark(process_corpus, corpus, config)
    assert len(result.database.disengagements) > 0
