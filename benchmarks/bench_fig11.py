"""Fig. 11: exponentiated-Weibull fits of reaction times.

Paper panels: Mercedes-Benz (tail stretching past 10 s) and Waymo
(concentrated below ~4 s), both well fit by an exponentiated Weibull.
"""

from repro.analysis.alertness import fit_reaction_times
from repro.reporting import figures_paper

from conftest import write_exhibit


def test_figure11(benchmark, db, exhibit_dir):
    figure = benchmark(figures_paper.figure11, db)
    write_exhibit(exhibit_dir, "figure11", figure.render())

    benz = fit_reaction_times(db, "Mercedes-Benz")
    waymo = fit_reaction_times(db, "Waymo")
    # Goodness of fit: the KS statistic stays small for both panels.
    assert benz.ks_statistic < 0.1
    assert waymo.ks_statistic < 0.1
    # Benz's distribution is wider / longer-tailed than Waymo's.
    assert benz.mean > waymo.mean
    benz_times = [t for t in db.reaction_times("Mercedes-Benz")
                  if t < 600]
    waymo_times = db.reaction_times("Waymo")
    assert max(benz_times) > 4.0
    assert max(waymo_times) <= 5.0
