"""Extension bench: the trip-level micro-simulator vs. field data.

Calibrates the generative model from the field database and checks
that the simulated fleet reproduces the field DPM/DPA statistics and
the paper's alertness counterfactual (less alert drivers -> more
accidents).
"""

import pytest

from repro.simulator import (
    DriverConfig,
    SimulatorConfig,
    calibrate_from_database,
    simulate_fleet,
)

from conftest import write_exhibit


def test_simulator_vs_field(benchmark, db, exhibit_dir):
    config = calibrate_from_database(db, "Delphi")
    fleet = benchmark.pedantic(
        simulate_fleet, args=(config, 30000), kwargs={"seed": 2018},
        rounds=1, iterations=1)

    field_records = db.disengagements_by_manufacturer()["Delphi"]
    field_miles = db.miles_by_manufacturer()["Delphi"]
    field_dpm = len(field_records) / field_miles

    # Alertness counterfactual: halve attention (4x reaction times).
    tired = SimulatorConfig(
        dpm=config.dpm,
        median_trip_miles=config.median_trip_miles,
        trip_sigma=config.trip_sigma,
        driver=DriverConfig(
            reaction_a=config.driver.reaction_a,
            reaction_c=config.driver.reaction_c,
            reaction_scale=config.driver.reaction_scale,
            alertness_factor=4.0,
            proactive_share=config.driver.proactive_share),
        traffic=config.traffic)
    tired_fleet = simulate_fleet(tired, trips=30000, seed=2018)

    lines = ["Trip-level simulator vs field data (Delphi)", ""]
    lines.append(f"DPM: field {field_dpm:.4g}, simulated "
                 f"{fleet.dpm:.4g}")
    lines.append(f"DPA: field 572, simulated "
                 f"{fleet.dpa and round(fleet.dpa)}")
    lines.append(f"manual share: simulated {fleet.manual_share:.2f}")
    lines.append(f"mean response window: {fleet.mean_window_s:.2f} s")
    lines.append("")
    lines.append("Alertness counterfactual (reaction times x4):")
    lines.append(f"  accidents {fleet.accidents} -> "
                 f"{tired_fleet.accidents} over the same exposure")
    write_exhibit(exhibit_dir, "simulator", "\n".join(lines))

    assert fleet.dpm == pytest.approx(field_dpm, rel=0.1)
    assert fleet.dpa is not None and 100 <= fleet.dpa <= 4000
    assert tired_fleet.accidents > fleet.accidents
