"""End-to-end pipeline stage benchmarks.

Times each stage of Fig. 1 in isolation (synthesis, OCR channel,
parsing, NLP tagging) plus the whole pipeline, over a mid-size
manufacturer subset.
"""

from repro.nlp import FailureDictionary, VotingTagger
from repro.ocr import ManualTranscriptionQueue, OcrCorrector, OcrEngine, Scanner, apply_fallback
from repro.parsing import default_registry
from repro.pipeline import PipelineConfig, process_corpus
from repro.rng import child_generator
from repro.synth import generate_corpus

SEED = 2018
SUBSET = ["Nissan", "Volkswagen", "Delphi", "Tesla"]


def test_stage1_synthesis(benchmark):
    corpus = benchmark(generate_corpus, SEED, SUBSET)
    assert len(corpus.truth_disengagements()) == 135 + 260 + 572 + 182


def test_stage2_ocr_channel(benchmark):
    corpus = generate_corpus(SEED, SUBSET)
    scanner, engine = Scanner(), OcrEngine()
    corrector = OcrCorrector()

    def run_ocr():
        total = 0
        queue = ManualTranscriptionQueue()
        for document in corpus.disengagement_documents:
            rng = child_generator(SEED, f"ocr:{document.document_id}")
            scanned = scanner.scan(document.document_id,
                                   document.lines, rng)
            result = engine.recognize(scanned, rng)
            lines = apply_fallback(scanned, result, queue)
            total += len(corrector.correct_lines(lines))
        return total

    lines = benchmark(run_ocr)
    assert lines > 1000


def test_stage3_parsing(benchmark):
    corpus = generate_corpus(SEED, SUBSET)
    registry = default_registry()

    def run_parse():
        total = 0
        for document in corpus.disengagement_documents:
            parser = registry.resolve(document.lines)
            report = parser.parse(document.lines,
                                  document.document_id)
            total += len(report.disengagements)
        return total

    recovered = benchmark(run_parse)
    assert recovered == 135 + 260 + 572 + 182


def test_stage4_nlp_tagging(benchmark):
    corpus = generate_corpus(SEED, SUBSET)
    texts = [r.description for r in corpus.truth_disengagements()]
    tagger = VotingTagger(FailureDictionary.build(texts))

    def run_tagging():
        return [tagger.tag(text).tag for text in texts]

    tags = benchmark(run_tagging)
    assert len(tags) == len(texts)


def test_full_pipeline(benchmark):
    corpus = generate_corpus(SEED, SUBSET)
    config = PipelineConfig(seed=SEED, manufacturers=SUBSET)
    result = benchmark(process_corpus, corpus, config)
    assert len(result.database.disengagements) > 1000
