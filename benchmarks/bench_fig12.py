"""Fig. 12: collision-speed distributions with exponential fits.

Paper: all accidents at low speed near intersections; >80% of
accidents at relative speed below 10 mph; exponential fits for AV
speed, manual-vehicle speed, and relative speed.
"""

from repro.analysis.apm import collision_speed_distributions
from repro.reporting import figures_paper

from conftest import write_exhibit


def test_figure12(benchmark, db, exhibit_dir):
    figure = benchmark(figures_paper.figure12, db)
    write_exhibit(exhibit_dir, "figure12", figure.render())

    distributions = collision_speed_distributions(db)
    assert distributions.fraction_relative_below(10.0) > 0.8
    # AV speeds concentrate lower than manual-vehicle speeds
    # (axis ranges 0-30 vs 0-40 in the paper).
    assert distributions.av_fit.scale < distributions.other_fit.scale
    assert max(distributions.av_speeds) <= 30.0
    assert max(distributions.other_speeds) <= 40.0
    assert len(figure.series) == 6
