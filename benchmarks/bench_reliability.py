"""Extension bench: the per-mission reliability model (Sec. V-C2).

Checks the Table VIII arithmetic from the model side: the survival
probabilities at the 10-mile median trip reproduce the APMi column,
and the crossover trip length behaves sensibly.
"""

import pytest

from repro.analysis.reliability import (
    build_mission_model,
    crossover_trip_length,
    mission_survival_curve,
)
from repro.calibration.baselines import MEDIAN_TRIP_MILES

from conftest import write_exhibit


def test_mission_reliability(benchmark, db, exhibit_dir):
    model = benchmark(build_mission_model, db, "Waymo")

    lines = ["Per-mission reliability model (Waymo)", ""]
    lines.append(f"miles between disengagements: "
                 f"{model.miles_between_disengagements():,.0f}")
    lines.append(f"miles between accidents:      "
                 f"{model.miles_between_accidents():,.0f}")
    curve = mission_survival_curve(model, [1, 10, 50, 100, 500])
    lines.append("")
    lines.append("trip mi   P(no disengagement)  P(no accident)")
    for length, p_dis, p_acc in curve:
        lines.append(f"{length:7.0f}   {p_dis:18.4f}  {p_acc:.6f}")
    crossover = crossover_trip_length(model)
    lines.append("")
    lines.append(f"AV-beats-airline crossover trip length: "
                 f"{crossover:.2f} miles")
    write_exhibit(exhibit_dir, "reliability_model", "\n".join(lines))

    # P(accident on a 10-mile trip) ~ APMi of Table VIII.
    p_accident = 1.0 - model.p_accident_free(MEDIAN_TRIP_MILES)
    assert p_accident == pytest.approx(model.apm * 10, rel=0.01)
    # The crossover sits below the median trip (AVs lose at 10 miles).
    assert crossover < MEDIAN_TRIP_MILES
    # ~2,300 miles between Waymo disengagements (464 over ~1.06M).
    assert model.miles_between_disengagements() == pytest.approx(
        2285, rel=0.15)
