"""Extension bench: stochastic fault-injection campaign vs. the
observed failure overlay.

The paper's future work asks for fault injection over the control
structure; this bench runs the campaign and checks its qualitative
agreement with the field data: ML components detect their own faults
poorly, and the perception system is the dominant failure site in the
observed overlay.
"""

from repro.stpa import overlay_failures
from repro.stpa.fault_injection import FaultInjector

from conftest import write_exhibit


def test_fault_injection_campaign(benchmark, db, exhibit_dir):
    injector = FaultInjector()
    campaign = benchmark(
        injector.run_campaign, 300, None, 2018)

    overlay = overlay_failures(db.disengagements)

    lines = ["Fault injection campaign vs observed overlay", ""]
    lines.append("origin               hazard   detected   observed "
                 "share")
    localized = overlay.total - overlay.unlocalized
    for origin, rate in campaign.hazard_ranking():
        observed = overlay.by_component.get(origin, 0) / localized
        lines.append(
            f"{origin:20s} {rate:6.2%}   "
            f"{campaign.detection_rate(origin):6.2%}    {observed:6.2%}")
    write_exhibit(exhibit_dir, "fault_injection", "\n".join(lines))

    # ML self-detection is poor; the substrate detects well.
    assert campaign.detection_rate("recognition") < 0.7
    assert campaign.detection_rate("compute") > 0.9
    # The observed field data localizes mostly to recognition.
    assert overlay.dominant_component() == "recognition"
