"""Fig. 7: yearly evolution of DPM distributions.

Paper: distinct decreasing median DPM trend for most manufacturers;
Waymo shows ~8x median decrease across the three years; Bosch is the
worsening exception.
"""

import numpy as np

from repro.analysis.dpm import yearly_dpm_distributions
from repro.reporting import figures_paper

from conftest import write_exhibit


def test_figure7(benchmark, db, exhibit_dir):
    figure = benchmark(figures_paper.figure7, db)
    write_exhibit(exhibit_dir, "figure7", figure.render())

    yearly = yearly_dpm_distributions(db)

    waymo = {year: float(np.median(values))
             for year, values in yearly["Waymo"].items()}
    ratio = waymo[2014] / max(waymo[2016], 1e-12)
    assert 3 <= ratio <= 30  # paper: ~8x decrease

    bosch = {year: float(np.median(values))
             for year, values in yearly["Bosch"].items()}
    assert bosch[max(bosch)] > bosch[min(bosch)]  # worsening

    labels = {box.label for box in figure.boxes}
    assert {"Waymo 2014", "Waymo 2015", "Waymo 2016"} <= labels
