"""Table V: disengagement modality distribution (percent).

Paper rows (automatic/manual/planned):
  Benz 47.11/52.89/0, Bosch 0/0/100, GMCruise 0/0/100,
  Nissan 54.2/45.8/0, Tesla 98.35/1.65/0, Volkswagen 100/0/0,
  Waymo 50.32/49.67/0.
"""

import pytest

from repro.reporting import tables_paper

from conftest import write_exhibit

PAPER = {
    "Mercedes-Benz": (47.11, 52.89, 0.0),
    "Bosch": (0.0, 0.0, 100.0),
    "GMCruise": (0.0, 0.0, 100.0),
    "Nissan": (54.2, 45.8, 0.0),
    "Tesla": (98.35, 1.65, 0.0),
    "Volkswagen": (100.0, 0.0, 0.0),
    "Waymo": (50.32, 49.67, 0.0),
}


def test_table5(benchmark, db, exhibit_dir):
    table = benchmark(tables_paper.table5, db)
    write_exhibit(exhibit_dir, "table5", table.render())

    for name, expected in PAPER.items():
        row = table.row_for(name)
        assert row is not None, name
        for measured, paper in zip(row[1:], expected):
            assert measured == pytest.approx(paper, abs=5.0), name
