"""Ablation: dictionary-voting tagger vs. naive first-match tagger,
and expanded (corpus-built) dictionary vs. seed-only dictionary.

Quantifies what the paper's two design choices buy: the voting scheme
("based on the maximum number of shared keywords") and the multi-pass
dictionary construction.
"""

from repro.nlp import (
    FailureDictionary,
    FirstMatchTagger,
    VotingTagger,
    evaluate_tagger,
)
from repro.nlp.tfidf import TfidfTagger

from conftest import write_exhibit


def test_ablation_voting_vs_first_match(benchmark, db, exhibit_dir):
    records = [r for r in db.disengagements if r.truth_tag is not None]
    texts = [r.description for r in records]
    labels = [r.truth_tag for r in records]
    expanded = FailureDictionary.build(texts)
    seeds = FailureDictionary.from_seeds()

    voting = evaluate_tagger(VotingTagger(expanded), records)
    voting_seed = evaluate_tagger(VotingTagger(seeds), records)
    first = evaluate_tagger(FirstMatchTagger(seeds), records)

    # Supervised baseline at a small label budget, scored on holdout.
    budget = 100
    tfidf = TfidfTagger().fit(texts[:budget], labels[:budget])
    tfidf_report = evaluate_tagger(tfidf, records[budget:])

    report = "\n".join([
        "Ablation: tagging strategy (tag accuracy / category accuracy)",
        f"  voting + expanded dictionary: {voting.tag_accuracy:.4f} / "
        f"{voting.category_accuracy:.4f}",
        f"  voting + seed dictionary:     {voting_seed.tag_accuracy:.4f}"
        f" / {voting_seed.category_accuracy:.4f}",
        f"  first-match + seed dict:      {first.tag_accuracy:.4f} / "
        f"{first.category_accuracy:.4f}",
        f"  TF-IDF, {budget} labels:         "
        f"{tfidf_report.tag_accuracy:.4f} / "
        f"{tfidf_report.category_accuracy:.4f}",
    ])
    write_exhibit(exhibit_dir, "ablation_tagger", report)

    # The ranking the design choices predict.
    assert voting.tag_accuracy >= voting_seed.tag_accuracy
    assert voting_seed.tag_accuracy >= first.tag_accuracy
    assert voting.tag_accuracy > 0.97
    # The unsupervised dictionary beats the small-budget supervised
    # baseline — the reason the authors built a dictionary.
    assert voting.tag_accuracy > tfidf_report.tag_accuracy

    # Time the production configuration.
    tagger = VotingTagger(expanded)
    sample = texts[:500]

    def tag_sample():
        return [tagger.tag(t).tag for t in sample]

    benchmark(tag_sample)
