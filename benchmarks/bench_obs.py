"""Overhead of the observability layer on the pipeline hot path.

The contract (docs/ARCHITECTURE.md, "Observability"): with tracing
and metrics fully enabled a run must cost <5% over an uninstrumented
one, and with observability disabled (the default) the instrumentation
must be a true no-op — the null tracer and a ``None`` registry, not a
cheap real one — so the disabled run is indistinguishable from the
pre-observability pipeline.

Run as a script (``python benchmarks/bench_obs.py``) to get a
self-contained report that measures off vs. fully-on wall time,
asserts the <5% budget, and verifies the instrumented database is
byte-identical to the plain one — this is what CI runs.  The pytest
benches isolate the span and counter primitives.
"""

import tempfile
from pathlib import Path

from repro.obs import MetricsRegistry, Tracer
from repro.pipeline import PipelineConfig, process_corpus
from repro.synth import generate_corpus

SEED = 2018
SUBSET = ["Nissan", "Volkswagen", "Delphi", "Tesla"]
OVERHEAD_BUDGET = 0.05


def _run(corpus, trace_dir=None, metrics=False):
    return process_corpus(corpus, PipelineConfig(
        seed=SEED, manufacturers=SUBSET,
        trace_dir=trace_dir, metrics_enabled=metrics))


def test_instrumented_full_pipeline(benchmark, tmp_path):
    corpus = generate_corpus(SEED, SUBSET)

    def run():
        with tempfile.TemporaryDirectory(dir=tmp_path) as scratch:
            return _run(corpus, trace_dir=Path(scratch), metrics=True)

    result = benchmark(run)
    assert len(result.database.disengagements) > 1000
    assert result.diagnostics.metrics is not None


def test_span_enter_exit_micro(benchmark, tmp_path):
    tracer = Tracer(tmp_path / "t.jsonl")

    def spans():
        for _ in range(2_000):
            with tracer.span("unit", kind="unit", stage="tag"):
                pass

    benchmark(spans)


def test_counter_inc_micro(benchmark):
    registry = MetricsRegistry()
    series = registry.counter("c_total", labelnames=("stage",)).labels(
        "tag")

    def incs():
        for _ in range(10_000):
            series.inc()

    benchmark(incs)


def test_histogram_observe_micro(benchmark):
    registry = MetricsRegistry()
    histogram = registry.histogram("h_seconds")

    def observes():
        for index in range(10_000):
            histogram.observe(index * 1e-4)

    benchmark(observes)


def main() -> int:
    """Measure observability overhead and enforce the <5% budget."""
    import time

    corpus = generate_corpus(SEED, SUBSET)
    _run(corpus)  # warm caches before timing anything

    def timed(func):
        start = time.perf_counter()
        result = func()
        return time.perf_counter() - start, result

    # Interleave the variants so background load hits both equally
    # and compare best-of-N to shed scheduling noise (the span and
    # counter costs are microseconds per unit on a ~600ms run).
    off_times, on_times = [], []
    instrumented = None
    with tempfile.TemporaryDirectory() as scratch:
        for round_index in range(9):
            elapsed, plain = timed(lambda: _run(corpus))
            off_times.append(elapsed)
            trace_dir = Path(scratch) / f"trace-{round_index}"
            trace_dir.mkdir()
            elapsed, instrumented = timed(
                lambda: _run(corpus, trace_dir=trace_dir,
                             metrics=True))
            on_times.append(elapsed)
    off = min(off_times)
    on = min(on_times)

    if plain.database.to_json() != instrumented.database.to_json():
        print("FAIL: instrumented run altered the pipeline output")
        return 1

    overhead = on / off - 1.0
    print(f"observability off: {off:.3f}s")
    print(f"trace + metrics:   {on:.3f}s")
    print(f"overhead:          {overhead:+.1%} "
          f"(budget {OVERHEAD_BUDGET:.0%})")
    if overhead > OVERHEAD_BUDGET:
        print("FAIL: observability overhead exceeds budget")
        return 1
    print("OK: output byte-identical, overhead within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
