"""Table IV: disengagements by root failure category (percent).

Paper rows (ML-planner / ML-perception / System / Unknown-C):
  Delphi     37.59 / 50.17 / 12.24 / 0
  Nissan     36.30 / 49.63 / 14.07 / 0
  Tesla       0.00 /  0.00 /  1.65 / 98.35
  Volkswagen  0.00 /  3.08 / 83.08 / 13.85
  Waymo      10.13 / 53.45 / 36.42 / 0
"""

import pytest

from repro.reporting import tables_paper

from conftest import write_exhibit

PAPER = {
    "Delphi": (37.59, 50.17, 12.24, 0.0),
    "Nissan": (36.30, 49.63, 14.07, 0.0),
    "Tesla": (0.0, 0.0, 1.65, 98.35),
    "Volkswagen": (0.0, 3.08, 83.08, 13.85),
    "Waymo": (10.13, 53.45, 36.42, 0.0),
}


def test_table4(benchmark, db, exhibit_dir):
    table = benchmark(tables_paper.table4, db)
    write_exhibit(exhibit_dir, "table4", table.render())

    for name, expected in PAPER.items():
        row = table.row_for(name)
        assert row is not None, name
        # Within 6 percentage points of the paper (NLP channel noise).
        for measured, paper in zip(row[1:], expected):
            assert measured == pytest.approx(paper, abs=6.0), name
