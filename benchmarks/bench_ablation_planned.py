"""Ablation: planned-test disengagements kept vs. dropped.

The paper keeps Bosch's and GM Cruise's planned-test disengagements
(footnote 3 argues they occurred naturally).  This bench quantifies
the alternative: dropping them removes ~44% of all disengagements and
shifts the pooled category shares, but leaves the headline
conclusions (ML/Design dominance, negative DPM-vs-miles correlation)
standing.
"""

from repro.analysis.categories import overall_category_shares
from repro.analysis.maturity import pooled_dpm_correlation
from repro.pipeline import PipelineConfig, run_pipeline

from conftest import write_exhibit

ANALYSIS = ["Mercedes-Benz", "Volkswagen", "Waymo", "Delphi", "Nissan",
            "Bosch", "GMCruise", "Tesla"]


def _run(drop_planned: bool):
    result = run_pipeline(PipelineConfig(
        seed=2018, drop_planned=drop_planned))
    db = result.database
    present = [n for n in ANALYSIS if n in db.manufacturers()
               and db.monthly_disengagements(n)]
    return {
        "records": len(db.disengagements),
        "shares": overall_category_shares(db),
        "pooled_r": pooled_dpm_correlation(db, present).r,
    }


def test_ablation_planned(benchmark, exhibit_dir):
    kept = _run(False)
    dropped = benchmark.pedantic(
        _run, args=(True,), rounds=1, iterations=1)

    lines = ["Ablation: planned-test disengagements", ""]
    for label, stats in (("kept (paper default)", kept),
                         ("dropped", dropped)):
        shares = stats["shares"]
        lines.append(
            f"{label:22s} records={stats['records']:5d}  "
            f"ML/Design={shares['ml_design']:.2%}  "
            f"perception={shares['perception']:.2%}  "
            f"pooled r={stats['pooled_r']:.3f}")
    write_exhibit(exhibit_dir, "ablation_planned", "\n".join(lines))

    # Dropping the planned campaigns removes Bosch + GMCruise
    # (~2,350 records)...
    assert kept["records"] - dropped["records"] > 2000
    # ...but the headline conclusions survive.
    assert dropped["shares"]["ml_design"] > 0.5
    assert dropped["pooled_r"] < -0.7
