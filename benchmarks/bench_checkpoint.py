"""Overhead of the checkpoint layer on a clean run.

Checkpointing journals every completed unit and fsyncs at stage
boundaries, so its cost on an *uninterrupted* run must stay under 5%
of the plain pipeline.  ``test_checkpointed_full_pipeline`` is
directly comparable to ``bench_resilience.test_resilient_full_pipeline``
(same workload, plus a checkpoint directory); the micro-benches
isolate the journal writer and the atomic-replace primitive.

Run as a script (``python benchmarks/bench_checkpoint.py``) to get a
self-contained overhead report that measures plain vs. checkpointed
wall time and asserts the <5% budget — this is what CI runs.
"""

import tempfile
from pathlib import Path

from repro.pipeline import PipelineConfig, process_corpus
from repro.pipeline.checkpoint import (
    CheckpointStore,
    atomic_write_text,
)
from repro.synth import generate_corpus

SEED = 2018
SUBSET = ["Nissan", "Volkswagen", "Delphi", "Tesla"]
OVERHEAD_BUDGET = 0.05


def _run(corpus, checkpoint_dir=None):
    return process_corpus(corpus, PipelineConfig(
        seed=SEED, manufacturers=SUBSET,
        checkpoint_dir=checkpoint_dir))


def test_checkpointed_full_pipeline(benchmark, tmp_path):
    corpus = generate_corpus(SEED, SUBSET)

    def run():
        # A fresh subdirectory per round: each run journals from
        # scratch, like a real first run.
        with tempfile.TemporaryDirectory(dir=tmp_path) as scratch:
            return _run(corpus, Path(scratch) / "ckpt")

    result = benchmark(run)
    assert len(result.database.disengagements) > 1000
    assert result.diagnostics.health.checkpoint.enabled


def test_journal_append_micro(benchmark, tmp_path):
    store = CheckpointStore(tmp_path, "bench")
    store.open(resume=False)
    body = {"outcome": "ok", "tag": "software", "category": "other"}

    def append_units():
        for index in range(2_000):
            store.append("tags", f"unit-{index}", body)
        store.sync()

    benchmark(append_units)
    store.close()


def test_atomic_write_micro(benchmark, tmp_path):
    target = tmp_path / "artifact.json"
    text = "x" * 65536

    def write():
        atomic_write_text(target, text)

    benchmark(write)
    assert target.read_text() == text


def main() -> int:
    """Measure checkpoint overhead and enforce the <5% budget."""
    import time

    corpus = generate_corpus(SEED, SUBSET)
    _run(corpus)  # warm caches before timing anything

    def timed(func):
        start = time.perf_counter()
        func()
        return time.perf_counter() - start

    # Interleave the two variants so background load hits both
    # equally, and compare best-of-N to shed scheduling noise (the
    # true overhead is ~20ms on a ~600ms run, far below the noise
    # floor of a single measurement on a shared machine).
    plain_times, checkpointed_times = [], []
    with tempfile.TemporaryDirectory() as scratch:
        for round_index in range(9):
            plain_times.append(timed(lambda: _run(corpus)))
            checkpointed_times.append(timed(lambda: _run(
                corpus, Path(scratch) / f"ckpt-{round_index}")))
    plain = min(plain_times)
    checkpointed = min(checkpointed_times)

    overhead = checkpointed / plain - 1.0
    print(f"plain run:        {plain:.3f}s")
    print(f"checkpointed run: {checkpointed:.3f}s")
    print(f"overhead:         {overhead:+.1%} "
          f"(budget {OVERHEAD_BUDGET:.0%})")
    if overhead > OVERHEAD_BUDGET:
        print("FAIL: checkpoint overhead exceeds budget")
        return 1
    print("OK: checkpoint overhead within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
