"""Extension bench: the Sec. V-A4 action-window risk argument.

Computes P(detection + reaction > time budget) from the fitted
reaction-time distributions and shows the speed scaling that makes
reaction-time-based accidents "a frequent failure mode" at deployment
scale.
"""

from repro.analysis.actionwindow import (
    DetectionModel,
    manufacturer_risk,
    risk_curve,
)
from repro.analysis.alertness import fit_reaction_times

from conftest import write_exhibit


def test_action_window_risk(benchmark, db, exhibit_dir):
    risk = benchmark(
        manufacturer_risk, db, "Waymo", 1.5, 0.5, 10000, 2018)

    fit = fit_reaction_times(db, "Waymo")
    curve = risk_curve(fit, DetectionModel(0.5), gap_feet=60.0,
                       speeds_mph=[5, 10, 20, 30, 40],
                       samples=10000, seed=2018)

    lines = ["Action-window risk (Waymo reaction-time fit, 0.5 s mean "
             "detection latency)", ""]
    lines.append(f"P(window > 1.5 s budget) = "
                 f"{risk.exceed_probability:.2%}  "
                 f"(mean window {risk.mean_window_s:.2f} s, "
                 f"p95 {risk.p95_window_s:.2f} s)")
    lines.append("")
    lines.append("60 ft gap, risk vs closing speed:")
    for speed, probability in curve:
        lines.append(f"  {speed:4.0f} mph -> {probability:7.2%}")
    write_exhibit(exhibit_dir, "action_window", "\n".join(lines))

    # Risk grows monotonically with speed and is severe at 40 mph.
    risks = [r for _, r in curve]
    assert risks == sorted(risks)
    assert risks[0] < 0.05       # 5 mph: ~8 s budget, safe
    assert risks[-1] > 0.3       # 40 mph: ~1 s budget, frequent misses
