"""Table VII: reliability of AVs compared to human drivers.

Paper median DPM: Benz 0.565, VW 0.0181, Waymo 7.45e-4, Delphi 0.0263,
Nissan 0.0413, Bosch 0.811, GMCruise 0.177, Tesla 0.250.  APM ratios
span 15-4000x worse than the human 2e-6/mile baseline.

Note: the paper prints Nissan's ratio as 15.285x, but its own APM
column gives 3.057e-4 / 2e-6 = 152.85x — a decimal typo in the paper.
We assert the *formula* (APM / human APM) and the 15-4000x headline
span instead of the typo.
"""

import pytest

from repro.calibration.baselines import PAPER_MEDIAN_DPM
from repro.reporting import tables_paper

from conftest import write_exhibit


def test_table7(benchmark, db, exhibit_dir):
    table = benchmark(tables_paper.table7, db)
    write_exhibit(exhibit_dir, "table7", table.render())

    assert len(table.rows) == 8
    for name, paper_dpm in PAPER_MEDIAN_DPM.items():
        row = table.row_for(name)
        assert row is not None, name
        # Order-of-magnitude agreement with the paper's medians.
        assert paper_dpm / 3 <= row[1] <= paper_dpm * 3, name

    ratios = []
    for row in table.rows:
        if row[3] is not None:
            ratios.append(float(row[3].rstrip("x")))
    assert len(ratios) == 4
    assert min(ratios) < 50 and max(ratios) > 1000  # the 15-4000x span
