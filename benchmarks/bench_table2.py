"""Table II: sample raw disengagement logs with tag/category mapping.

Paper shows four representative rows: Nissan (System/Software), Nissan
(ML/Design / Recognition System), Waymo (ML/Design / Environment), and
Volkswagen (System / Computer System watchdog).
"""

from repro.reporting import tables_paper

from conftest import write_exhibit


def test_table2(benchmark, db, exhibit_dir):
    table = benchmark(tables_paper.table2, db)
    write_exhibit(exhibit_dir, "table2", table.render())

    assert len(table.rows) == 4
    categories = table.column("Category")
    assert "System" in categories and "ML/Design" in categories
    tags = table.column("Tag")
    assert "Environment" in tags
    assert "Hang/Crash" in tags
