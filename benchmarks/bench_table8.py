"""Table VIII: AVs vs airplanes and surgical robots per mission.

Paper: Waymo APMi 4.14e-4 -> 4.22x worse than airlines, 0.0398 of the
surgical-robot rate; GMCruise 902x worse than airlines and 8.5x worse
than surgical robots.
"""

from repro.reporting import tables_paper

from conftest import write_exhibit


def test_table8(benchmark, db, exhibit_dir):
    table = benchmark(tables_paper.table8, db)
    write_exhibit(exhibit_dir, "table8", table.render())

    names = [row[0] for row in table.rows]
    assert names == ["Waymo", "Delphi", "Nissan", "GMCruise"]

    waymo = table.row_for("Waymo")
    assert 1.0 <= waymo[2] <= 10.0       # paper: 4.22x vs airlines
    assert waymo[3] < 0.5                # paper: 0.0398 vs SR

    gm = table.row_for("GMCruise")
    assert gm[2] > 100                   # paper: 902x vs airlines
    assert gm[3] > 1                     # paper: 8.5x vs SR
