"""Fig. 10: driver reaction-time distributions.

Paper: ~0.85 s average reaction time across all drivers, long-tailed
distributions, one ~4-hour Volkswagen outlier.
"""

import pytest

from repro.analysis.alertness import overall_mean_reaction_time
from repro.reporting import figures_paper

from conftest import write_exhibit


def test_figure10(benchmark, db, exhibit_dir):
    figure = benchmark(figures_paper.figure10, db)
    write_exhibit(exhibit_dir, "figure10", figure.render())

    assert len(figure.boxes) == 6
    assert overall_mean_reaction_time(db) == pytest.approx(0.85,
                                                           abs=0.2)
    vw = figure.box_by_label("Volkswagen").box
    assert vw.maximum > 10000  # the ~4 h record

    # Long tails: max well above the median everywhere.
    for box in figure.boxes:
        assert box.box.maximum > 2 * box.box.median
