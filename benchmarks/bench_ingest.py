"""Incremental ingestion speedup and hot-swap serving overhead.

Two recorded budgets for the always-on serving layer:

1. **Delta ingest ≥3× faster than a full rebuild.**  Growing the
   seed-2018 corpus by ~10% new documents and re-ingesting must beat
   re-processing the combined corpus from scratch by at least 3×,
   while producing a byte-identical database (the parity is asserted,
   not assumed).
2. **Hot-swapping adds ≤5% p99 latency.**  A server whose snapshot is
   being swapped continuously underneath must answer queries with a
   p99 within 5% of the same server serving a static snapshot (with a
   1 ms absolute floor so the budget is meaningful when the base p99
   is sub-millisecond HTTP noise).

Run as a script (``python benchmarks/bench_ingest.py``) for the
self-contained report + budget assertions — this is what CI runs.
``--out BENCH_ingest.json`` also records the measurements (the
committed baseline).  The pytest-benchmark entries time the pieces
individually.
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from repro.pipeline import PipelineConfig, ingest_corpus, process_corpus
from repro.query import QueryEngine, QueryServer, SnapshotManager
from repro.synth import generate_corpus
from repro.synth.dataset import SyntheticCorpus

SEED = 2018

#: Delta ingest of ~10% new documents must beat a full rebuild by this.
DELTA_SPEEDUP_BUDGET = 3.0

#: Relative p99 budget for serving under continuous hot-swaps...
SWAP_P99_BUDGET = 1.05
#: ...with an absolute floor (seconds): sub-millisecond HTTP p99s are
#: scheduler noise, not swap overhead.
SWAP_P99_FLOOR_S = 0.001

#: Fraction of the corpus withheld from the base ingest (the "drop").
DELTA_FRACTION = 0.10


def _config(checkpoint_dir=None) -> PipelineConfig:
    return PipelineConfig(seed=SEED, dictionary_mode="seed",
                          checkpoint_dir=checkpoint_dir)


def _split(corpus):
    """(base, combined): the last ~10% of documents are the delta."""
    keep = len(corpus.documents) - max(
        1, int(len(corpus.documents) * DELTA_FRACTION))
    base = SyntheticCorpus(seed=corpus.seed,
                           documents=corpus.documents[:keep])
    return base, corpus


# ----------------------------------------------------------------------
# pytest-benchmark entries.
# ----------------------------------------------------------------------


def test_full_rebuild(benchmark):
    corpus = generate_corpus(SEED)
    result = benchmark(lambda: process_corpus(corpus, _config()))
    assert len(result.database.disengagements) > 1000


def test_delta_ingest(benchmark, tmp_path):
    corpus = generate_corpus(SEED)
    base, combined = _split(corpus)
    prepared = tmp_path / "prepared"
    ingest_corpus(base, _config(prepared))

    def delta():
        with tempfile.TemporaryDirectory(dir=tmp_path) as scratch:
            work = Path(scratch) / "ckpt"
            shutil.copytree(prepared, work)
            return ingest_corpus(combined, _config(work))

    outcome = benchmark(delta)
    assert outcome.report.full_rebuild is False
    assert outcome.report.reused_documents > 0


def test_snapshot_swap(benchmark, tmp_path):
    corpus = generate_corpus(SEED)
    base, combined = _split(corpus)
    db_a = process_corpus(base, _config()).database
    db_b = process_corpus(combined, _config()).database
    manager = SnapshotManager(db_a)
    state = {"flip": False}

    def swap():
        state["flip"] = not state["flip"]
        manager.swap_database(db_b if state["flip"] else db_a)

    benchmark(swap)
    assert manager.generation > 1


# ----------------------------------------------------------------------
# Self-contained report (what CI runs).
# ----------------------------------------------------------------------


def _measure_delta_speedup(report: dict, failures: list[str],
                           rounds: int) -> None:
    corpus = generate_corpus(SEED)
    base, combined = _split(corpus)
    delta_docs = len(combined.documents) - len(base.documents)
    print(f"corpus: {len(combined.documents)} documents, "
          f"{delta_docs} of them new in the drop "
          f"({delta_docs / len(combined.documents):.0%})")

    # Parity first: the speedup budget means nothing if the shortcut
    # produced a different database.
    full_result = process_corpus(combined, _config())  # also warms
    full_fingerprint = full_result.database.fingerprint()

    full_times, delta_times = [], []
    with tempfile.TemporaryDirectory() as scratch:
        prepared = Path(scratch) / "prepared"
        ingest_corpus(base, _config(prepared))
        for index in range(rounds):
            start = time.perf_counter()
            process_corpus(combined, _config())
            full_times.append(time.perf_counter() - start)

            work = Path(scratch) / f"work-{index}"
            shutil.copytree(prepared, work)
            start = time.perf_counter()
            outcome = ingest_corpus(combined, _config(work))
            delta_times.append(time.perf_counter() - start)
            assert (outcome.database.fingerprint()
                    == full_fingerprint), "ingest parity broken"
            assert outcome.report.full_rebuild is False

    full_s, delta_s = min(full_times), min(delta_times)
    speedup = full_s / delta_s
    report["ingest"] = {
        "documents": len(combined.documents),
        "delta_documents": delta_docs,
        "full_rebuild_s": round(full_s, 3),
        "delta_ingest_s": round(delta_s, 3),
        "speedup": round(speedup, 1),
        "speedup_budget": DELTA_SPEEDUP_BUDGET,
        "parity": True,
    }
    print(f"  full rebuild: {full_s:.3f}s")
    print(f"  delta ingest: {delta_s:.3f}s (byte-identical output)")
    print(f"  speedup:      {speedup:.1f}x "
          f"(budget >={DELTA_SPEEDUP_BUDGET:.0f}x)")
    if speedup < DELTA_SPEEDUP_BUDGET:
        failures.append(
            f"delta ingest speedup {speedup:.1f}x under the "
            f"{DELTA_SPEEDUP_BUDGET:.0f}x budget")


def _p99(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1,
                       int(len(ordered) * 0.99))]


def _time_requests(url: str, count: int) -> list[float]:
    samples = []
    for _ in range(count):
        start = time.perf_counter()
        with urllib.request.urlopen(url, timeout=10) as res:
            res.read()
        samples.append(time.perf_counter() - start)
    return samples


def _measure_swap_overhead(report: dict, failures: list[str],
                           requests: int) -> None:
    # The budget isolates the *swap machinery*: the atomic publish
    # plus the per-request snapshot capture.  The replacement engines
    # are prebuilt (``swap_engine``), the production shape for a hot
    # path — candidate fingerprint + index build happen off the
    # serving path (their cost is the ingest measurement above); on a
    # single-core box an in-lock build would otherwise steal the GIL
    # from every request handler and measure build cost, not swap
    # cost.
    corpus = generate_corpus(SEED)
    base, combined = _split(corpus)
    db_a = process_corpus(base, _config()).database
    db_b = process_corpus(combined, _config()).database
    manager = SnapshotManager(db_a)
    engines = (manager.engine, QueryEngine(db_b))

    with QueryServer(manager, port=0) as server:
        url = server.url + "/query?metric=count"
        _time_requests(url, 50)  # warm connections and caches
        static_p99 = _p99(_time_requests(url, requests))

        stop = threading.Event()

        def swapper() -> None:
            flip = False
            while not stop.is_set():
                flip = not flip
                manager.swap_engine(engines[int(flip)])
                time.sleep(0.01)

        thread = threading.Thread(target=swapper, daemon=True)
        thread.start()
        try:
            swapping_p99 = _p99(_time_requests(url, requests))
        finally:
            stop.set()
            thread.join(timeout=5.0)
        swaps = manager.generation - 1

    allowed = max(static_p99 * SWAP_P99_BUDGET,
                  static_p99 + SWAP_P99_FLOOR_S)
    report["hot_swap"] = {
        "requests": requests,
        "static_p99_ms": round(static_p99 * 1e3, 3),
        "swapping_p99_ms": round(swapping_p99 * 1e3, 3),
        "allowed_p99_ms": round(allowed * 1e3, 3),
        "swaps_during_measurement": swaps,
        "p99_budget": SWAP_P99_BUDGET,
        "p99_floor_ms": SWAP_P99_FLOOR_S * 1e3,
    }
    print(f"hot-swap serving overhead ({requests} requests, "
          f"{swaps} swaps underneath):")
    print(f"  static p99:   {static_p99 * 1e3:7.3f} ms")
    print(f"  swapping p99: {swapping_p99 * 1e3:7.3f} ms "
          f"(allowed {allowed * 1e3:.3f} ms)")
    if swapping_p99 > allowed:
        failures.append(
            f"p99 under swaps {swapping_p99 * 1e3:.3f}ms exceeds "
            f"allowed {allowed * 1e3:.3f}ms")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="also write the measurements as JSON")
    parser.add_argument("--rounds", type=int, default=3,
                        help="ingest timing rounds per variant "
                             "(best-of; default: %(default)s)")
    parser.add_argument("--requests", type=int, default=400,
                        help="HTTP requests per latency measurement "
                             "(default: %(default)s)")
    args = parser.parse_args(argv)
    report: dict = {"seed": SEED, "dictionary_mode": "seed"}
    failures: list[str] = []

    _measure_delta_speedup(report, failures, args.rounds)
    _measure_swap_overhead(report, failures, args.requests)

    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nreport written to {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: ingest + hot-swap budgets met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
