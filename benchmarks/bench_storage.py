"""Columnar storage benchmarks: build, scan, memory vs the dict layout.

Budgets:

1. **Column-scan speedup** — the vectorized scan hooks of
   :class:`~repro.storage.ColumnarFailureDatabase` (packed arrays +
   interned pools) must beat the record-object scans of the dict
   backend by >= 2x, aggregated across the hook suite.  Every timed
   pair is also asserted equal, so the speedup can never be bought
   with drift.
2. **Resident memory** — decoding the binary columnar artifact must
   allocate less than materializing the record-object lists from the
   canonical JSON (tracemalloc peak), and the on-disk blob must be
   smaller than the JSON.

Run as a script (``python benchmarks/bench_storage.py``); ``--out``
writes the measurements as JSON (``BENCH_storage.json`` is a committed
snapshot of that report).
"""

from __future__ import annotations

import argparse
import json
import time
import tracemalloc
from pathlib import Path

from repro.pipeline import PipelineConfig, process_corpus
from repro.pipeline.store import FailureDatabase
from repro.storage import (
    ColumnarFailureDatabase,
    decode_columnar,
    encode_columnar,
)
from repro.synth import generate_corpus

SEED = 2018
SUBSET = ["Nissan", "Volkswagen", "Delphi", "Tesla"]

#: Aggregate columnar-scan speedup across the hook suite.
SCAN_SPEEDUP_BUDGET = 2.0


def _build(corpus) -> FailureDatabase:
    return process_corpus(
        corpus, PipelineConfig(seed=SEED, manufacturers=SUBSET)).database


def _scan_ops(db: FailureDatabase, manufacturers: list[str]):
    """The hook suite, as (name, thunk) pairs over one database."""
    return [
        ("total_miles", lambda: db.total_miles),
        ("miles_by_manufacturer", db.miles_by_manufacturer),
        ("monthly_miles", lambda: [db.monthly_miles(m)
                                   for m in manufacturers]),
        ("monthly_disengagements",
         lambda: [db.monthly_disengagements(m)
                  for m in manufacturers]),
        ("vehicle_miles", lambda: [db.vehicle_miles(m)
                                   for m in manufacturers]),
        ("vehicle_disengagements",
         lambda: [db.vehicle_disengagements(m)
                  for m in manufacturers]),
        ("reaction_times", lambda: [db.reaction_times(m)
                                    for m in manufacturers]),
        ("vehicle_year_miles", lambda: [db.vehicle_year_miles(m)
                                        for m in manufacturers]),
        ("vehicle_year_disengagements",
         lambda: [db.vehicle_year_disengagements(m)
                  for m in manufacturers]),
        ("tag_values", lambda: [db.tag_values(m)
                                for m in manufacturers]),
        ("modality_values", lambda: [db.modality_values(m)
                                     for m in manufacturers]),
    ]


def _best_of(thunk, rounds: int, repeats: int) -> float:
    """Best per-call seconds over ``rounds`` of ``repeats`` calls."""
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(repeats):
            thunk()
        elapsed = (time.perf_counter() - start) / repeats
        best = elapsed if best is None else min(best, elapsed)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="also write the measurements as JSON")
    parser.add_argument("--rounds", type=int, default=5,
                        help="timing rounds per op (best-of; "
                             "default: %(default)s)")
    parser.add_argument("--repeats", type=int, default=20,
                        help="calls per timing round "
                             "(default: %(default)s)")
    args = parser.parse_args(argv)
    report: dict = {"seed": SEED, "manufacturers": SUBSET}
    failures: list[str] = []

    print(f"synthesizing seed-{SEED} corpus "
          f"({', '.join(SUBSET)})...")
    corpus = generate_corpus(SEED, SUBSET)
    base = _build(corpus)
    manufacturers = base.manufacturers()
    report["records"] = {
        "disengagements": len(base.disengagements),
        "accidents": len(base.accidents),
        "mileage_cells": len(base.mileage),
    }

    # -- build + serialize ---------------------------------------------
    started = time.perf_counter()
    columnar = ColumnarFailureDatabase.from_database(base)
    build_s = time.perf_counter() - started
    json_text = base.to_json()
    assert columnar.to_json() == json_text, "columnar to_json drifted"
    assert columnar.fingerprint() == base.fingerprint(), \
        "columnar fingerprint drifted"
    started = time.perf_counter()
    blob = encode_columnar(columnar)
    encode_s = time.perf_counter() - started
    report["build"] = {
        "from_database_s": round(build_s, 4),
        "encode_s": round(encode_s, 4),
        "json_bytes": len(json_text.encode("utf-8")),
        "columnar_bytes": len(blob),
        "size_ratio": round(
            len(blob) / len(json_text.encode("utf-8")), 4),
    }
    print(f"\nbuild: columnar conversion {build_s * 1e3:.1f} ms, "
          f"binary encode {encode_s * 1e3:.1f} ms")
    print(f"size:  JSON {len(json_text):,} B -> "
          f"columnar {len(blob):,} B "
          f"({len(blob) / len(json_text):.2f}x)")
    if len(blob) >= len(json_text.encode("utf-8")):
        failures.append("columnar blob is not smaller than the JSON")

    # -- scan suite: dict vs columnar ----------------------------------
    # A fresh columnar instance per suite: materializing records (which
    # the dict side requires by construction) must not help or hinder
    # the column scans.
    scans = {}
    total_dict = total_col = 0.0
    print(f"\nscan suite ({args.rounds} rounds x {args.repeats} "
          "calls, best-of):")
    for (name, dict_op), (_, col_op) in zip(
            _scan_ops(base, manufacturers),
            _scan_ops(columnar, manufacturers)):
        assert dict_op() == col_op(), f"{name} scan drifted"
        dict_s = _best_of(dict_op, args.rounds, args.repeats)
        col_s = _best_of(col_op, args.rounds, args.repeats)
        total_dict += dict_s
        total_col += col_s
        scans[name] = {
            "dict_us": round(dict_s * 1e6, 2),
            "columnar_us": round(col_s * 1e6, 2),
            "speedup": round(dict_s / col_s, 2),
        }
        print(f"  {name:28s} {dict_s * 1e6:9.1f} us -> "
              f"{col_s * 1e6:9.1f} us  ({dict_s / col_s:5.1f}x)")
    suite_speedup = total_dict / total_col
    report["scans"] = scans
    report["scan_suite_speedup"] = round(suite_speedup, 2)
    print(f"  {'suite aggregate':28s} {total_dict * 1e6:9.1f} us -> "
          f"{total_col * 1e6:9.1f} us  ({suite_speedup:5.1f}x, "
          f"budget >={SCAN_SPEEDUP_BUDGET:.0f}x)")
    if suite_speedup < SCAN_SPEEDUP_BUDGET:
        failures.append(
            f"scan suite speedup {suite_speedup:.2f}x under the "
            f"{SCAN_SPEEDUP_BUDGET:.0f}x budget")

    # -- resident memory: JSON record lists vs columnar decode ---------
    tracemalloc.start()
    loaded = FailureDatabase.from_json(json_text)
    len(loaded.disengagements)
    dict_current, dict_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del loaded
    tracemalloc.start()
    decoded = decode_columnar(blob)
    assert len(decoded.tables["disengagements"]) \
        == len(base.disengagements)
    col_current, col_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del decoded
    memory_ratio = col_current / dict_current
    report["memory"] = {
        "dict_resident_bytes": dict_current,
        "dict_peak_bytes": dict_peak,
        "columnar_resident_bytes": col_current,
        "columnar_peak_bytes": col_peak,
        "resident_ratio": round(memory_ratio, 4),
    }
    print(f"\nresident memory (tracemalloc):")
    print(f"  record objects: {dict_current / 1e6:8.2f} MB "
          f"(peak {dict_peak / 1e6:.2f} MB)")
    print(f"  columnar:       {col_current / 1e6:8.2f} MB "
          f"(peak {col_peak / 1e6:.2f} MB)")
    print(f"  ratio:          {memory_ratio:8.2f}x")
    if col_current >= dict_current:
        failures.append(
            "columnar resident memory is not smaller than the "
            "record-object layout")

    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nreport written to {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("\nall budgets met.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
