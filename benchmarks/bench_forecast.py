"""Extension bench: backtesting the Fig. 9 power-law trend model.

Trains ``log DPM ~ log cumulative miles`` on each manufacturer's first
60% of months and predicts the holdout disengagement counts from the
known mileage.
"""

from repro.analysis.forecast import backtest_all

from conftest import write_exhibit


def test_forecast_backtests(benchmark, db, exhibit_dir):
    forecasts = benchmark(backtest_all, db)

    lines = ["Backtest of the log-log DPM trend model "
             "(train 60% of months, predict the rest)", ""]
    lines.append(f"{'manufacturer':15s} {'slope':>7s} {'pred':>6s} "
                 f"{'actual':>6s} {'error':>6s}")
    for name, forecast in sorted(forecasts.items()):
        lines.append(
            f"{name:15s} {forecast.fit.slope:+7.2f} "
            f"{forecast.predicted_total:6.0f} "
            f"{forecast.actual_total:6d} "
            f"{forecast.total_error:6.2f}")
    write_exhibit(exhibit_dir, "forecast", "\n".join(lines))

    assert len(forecasts) >= 6
    # The model is a usable predictor for most reporters...
    useful = [f for f in forecasts.values() if f.total_error < 1.0]
    assert len(useful) >= 4
    # ...the Bosch trend is positive (planned-test escalation), and
    # Waymo's holdout shows it improving faster than its own trend.
    assert forecasts["Bosch"].fit.slope > 0
    assert forecasts["Waymo"].predicted_total > \
        forecasts["Waymo"].actual_total
