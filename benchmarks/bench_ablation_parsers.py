"""Ablation: bespoke per-manufacturer parsers vs. the generic parser.

The paper had to write one normalizer per manufacturer format; this
bench measures what a single generic format assumption would lose.
"""

from repro.parsing.base import ParserRegistry
from repro.parsing.formats import all_parsers
from repro.parsing.formats.generic import GenericParser
from repro.synth import generate_corpus

from conftest import write_exhibit

SEED = 2018


def _parse_with(registry: ParserRegistry, corpus) -> int:
    recovered = 0
    for document in corpus.disengagement_documents:
        try:
            parser = registry.resolve(document.lines)
        except Exception:
            continue
        report = parser.parse(document.lines, document.document_id)
        recovered += len(report.disengagements)
    return recovered


def test_ablation_parsers(benchmark, exhibit_dir):
    corpus = generate_corpus(SEED)
    truth = len(corpus.truth_disengagements())

    bespoke = ParserRegistry()
    for parser in all_parsers():
        bespoke.register(parser)

    generic = ParserRegistry()
    for name in {d.manufacturer for d in
                 corpus.disengagement_documents}:
        generic.register(GenericParser(name))

    bespoke_recovered = _parse_with(bespoke, corpus)
    generic_recovered = _parse_with(generic, corpus)

    report = "\n".join([
        "Ablation: per-manufacturer parsers vs generic parser "
        "(clean text)",
        f"  bespoke parsers: {bespoke_recovered}/{truth} "
        f"({100 * bespoke_recovered / truth:.2f}%)",
        f"  generic parser:  {generic_recovered}/{truth} "
        f"({100 * generic_recovered / truth:.2f}%)",
    ])
    write_exhibit(exhibit_dir, "ablation_parsers", report)

    assert bespoke_recovered == truth  # clean text: lossless
    # The generic format only overlaps the pipe-separated reports
    # (Bosch); the bespoke parsers recover the majority the generic
    # one cannot.
    assert generic_recovered < 0.6 * truth

    benchmark(_parse_with, bespoke, corpus)
