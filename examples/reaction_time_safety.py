"""Driver alertness and the action window (paper Question 4).

Analyzes reaction-time distributions, fits the exponentiated Weibull
of Fig. 11, checks the correlation between alertness and miles driven,
and computes end-to-end action windows against stopping-distance
style scenarios.

Usage::

    python examples/reaction_time_safety.py
"""

from repro import PipelineConfig, run_pipeline
from repro.analysis.alertness import (
    action_window,
    alertness_summary,
    fit_reaction_times,
    human_baseline,
    overall_mean_reaction_time,
    reaction_time_mileage_correlation,
)

#: Illustrative fault-detection latencies (seconds) for the action
#: window discussion in Sec. V-A4.
DETECTION_SCENARIOS = {
    "sensor dropout alarm": 0.2,
    "perception miss discovered via driver scan": 1.5,
    "planner hesitation noticed by driver": 0.8,
}


def main() -> None:
    result = run_pipeline(PipelineConfig(seed=2018))
    db = result.database

    mean = overall_mean_reaction_time(db)
    baseline = human_baseline()
    print(f"Mean AV test-driver reaction time: {mean:.2f} s")
    print(f"Non-AV braking reaction time [35]:  "
          f"{baseline['non_av_braking_s']:.2f} s")
    print(f"Assumed ordinary-driver response:   "
          f"{baseline['assumed_human_s']:.2f} s")
    print("=> AV safety drivers must stay as alert as ordinary "
          "drivers.\n")

    print("Per-manufacturer reaction-time distributions:")
    for name, summary in alertness_summary(db).items():
        box = summary.box
        outliers = (f", {summary.outliers} outlier(s)"
                    if summary.outliers else "")
        print(f"  {name:15s} median {box.median:5.2f} s  "
              f"q3 {box.q3:5.2f} s  max {box.maximum:8.1f} s"
              f"{outliers}")

    print("\nExponentiated-Weibull fits (Fig. 11):")
    for name in ("Mercedes-Benz", "Waymo"):
        fit = fit_reaction_times(db, name)
        print(f"  {name:15s} a={fit.a:.2f} c={fit.c:.2f} "
              f"scale={fit.scale:.2f} s  mean={fit.mean:.2f} s  "
              f"KS={fit.ks_statistic:.3f}")

    print("\nDoes alertness decay as the system improves?")
    for name in ("Waymo", "Mercedes-Benz"):
        correlation = reaction_time_mileage_correlation(db, name)
        verdict = ("significant" if correlation.significant(0.01)
                   else "not significant")
        print(f"  {name:15s} r={correlation.r:+.2f} "
              f"(p={correlation.p_value:.3g}, {verdict})")

    print("\nAction windows (detection + reaction) per scenario:")
    for scenario, detection in DETECTION_SCENARIOS.items():
        window = action_window(detection, mean)
        at_25mph = window * 25 * 1.467  # feet travelled at 25 mph
        print(f"  {scenario:45s} {window:4.2f} s "
              f"(~{at_25mph:.0f} ft at 25 mph)")


if __name__ == "__main__":
    main()
