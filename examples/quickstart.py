"""Quickstart: run the full pipeline and print the headline results.

Usage::

    python examples/quickstart.py [seed]
"""

import sys

from repro import PipelineConfig, run_pipeline
from repro.analysis import pooled_dpm_correlation
from repro.analysis.alertness import overall_mean_reaction_time
from repro.analysis.apm import disengagements_per_accident_overall
from repro.analysis.categories import overall_category_shares
from repro.reporting import run_experiment


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2018
    print(f"Running the end-to-end pipeline (seed={seed})...")
    result = run_pipeline(PipelineConfig(seed=seed))
    db = result.database
    diagnostics = result.diagnostics

    print()
    print(f"Corpus processed: {len(db.disengagements)} disengagements, "
          f"{len(db.accidents)} accidents, "
          f"{db.total_miles:,.0f} autonomous miles")
    print(f"OCR: mean confidence {diagnostics.ocr.mean_confidence:.3f}, "
          f"{diagnostics.ocr.fallback_pages} pages manually transcribed")
    print(f"NLP: {diagnostics.dictionary_entries} dictionary entries, "
          f"tag accuracy {diagnostics.tagging.tag_accuracy:.2%} vs "
          "ground truth")

    print()
    print("Headline findings (paper values in brackets):")
    shares = overall_category_shares(db)
    print(f"  ML/Design share of disengagements: "
          f"{shares['ml_design']:.0%}  [64%]")
    print(f"  ... perception side: {shares['perception']:.0%}  [~44%]")
    print(f"  ... planner side:    {shares['planner']:.0%}  [~20%]")
    correlation = pooled_dpm_correlation(db)
    print(f"  Pearson r, log(DPM) vs log(cum. miles): "
          f"{correlation.r:.2f}  [-0.87]")
    print(f"  Mean driver reaction time: "
          f"{overall_mean_reaction_time(db):.2f} s  [0.85 s]")
    print(f"  Disengagements per accident: "
          f"{disengagements_per_accident_overall(db):.0f}  [~127]")

    print()
    print(run_experiment("table7", db).render())


if __name__ == "__main__":
    main()
