"""A regulator's annual review: what a DMV analyst would run when the
year's disengagement and accident reports arrive.

Combines the reporting census (who reports what), the statistical
reliability ranking, the trend tests, the forecast backtest, and the
full Markdown study report.

Usage::

    python examples/regulator_annual_review.py [output.md]
"""

import sys

from repro import PipelineConfig, run_pipeline
from repro.analysis.cross import reliability_ranking
from repro.analysis.forecast import backtest_all
from repro.analysis.temporal import dpm_trend_test
from repro.analysis.validity import underreporting_sweep
from repro.errors import InsufficientDataError
from repro.reporting import run_experiment
from repro.reporting.summary import render_study_report

ANALYSIS = ["Mercedes-Benz", "Volkswagen", "Waymo", "Delphi", "Nissan",
            "Bosch", "GMCruise", "Tesla"]


def main() -> None:
    print("Processing the year's filings...")
    result = run_pipeline(PipelineConfig(seed=2018))
    db = result.database
    diagnostics = result.diagnostics

    print(f"\nIngest health: {len(db.disengagements)} disengagements, "
          f"{len(db.accidents)} accidents; "
          f"{diagnostics.parse.unparsed_lines} unparsed lines; "
          f"{diagnostics.ocr.fallback_pages} pages needed manual "
          "transcription.")

    print("\nWho reports what (share of records with each field):")
    print(run_experiment("ext-census", db).render())

    print("\nReliability ranking (median DPM; 'beats' = Mann-Whitney "
          "significant at 5%):")
    for name, median, wins in reliability_ranking(db, ANALYSIS):
        trend = "?"
        try:
            trend = dpm_trend_test(db, name).direction
        except InsufficientDataError:
            pass
        print(f"  {name:15s} {median:.3e}/mile  beats {wins}  "
              f"trend: {trend}")

    print("\nTrend-model backtests (train 60% of months):")
    for name, forecast in sorted(backtest_all(db, ANALYSIS).items()):
        print(f"  {name:15s} predicted {forecast.predicted_total:5.0f} "
              f"vs actual {forecast.actual_total:5d} holdout "
              f"disengagements (err {forecast.total_error:.0%})")

    print("\nRobustness to underreporting:")
    for point in underreporting_sweep(db, factors=(1.0, 2.0, 5.0)):
        print(f"  if reports cover 1/{point.factor:.0f} of reality: "
              f"AV-worse-than-human conclusion holds = "
              f"{point.still_worse_than_human}")

    if len(sys.argv) > 1:
        path = sys.argv[1]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(render_study_report(db))
        print(f"\nFull Markdown report written to {path}")


if __name__ == "__main__":
    main()
