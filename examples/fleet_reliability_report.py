"""Fleet reliability deep-dive: the analysis a manufacturer's
reliability team would run on its own DMV filing.

For each manufacturer: DPM distribution, burn-in trend (is DPM falling
with miles?), projected miles to the human accident rate via the
Kalra-Paddock model, and the per-mission comparison.

Usage::

    python examples/fleet_reliability_report.py [manufacturer]
"""

import sys

from repro import PipelineConfig, run_pipeline
from repro.analysis import manufacturer_dpm_summary, mission_comparison
from repro.analysis.apm import apm_summary, first_principles_apm
from repro.analysis.maturity import all_assessments
from repro.analysis.significance import (
    miles_to_demonstrate,
    rate_upper_bound,
)
from repro.calibration.baselines import HUMAN_ACCIDENTS_PER_MILE

ANALYSIS = ["Mercedes-Benz", "Volkswagen", "Waymo", "Delphi", "Nissan",
            "Bosch", "GMCruise", "Tesla"]


def main() -> None:
    wanted = sys.argv[1:] or ANALYSIS
    result = run_pipeline(PipelineConfig(seed=2018))
    db = result.database

    summaries = manufacturer_dpm_summary(db, ANALYSIS)
    assessments = all_assessments(db, ANALYSIS)
    apm = apm_summary(db, ANALYSIS)
    missions = mission_comparison(db, ANALYSIS)
    direct_apm = first_principles_apm(db)

    print("The Kalra-Paddock bar: demonstrating the human accident "
          f"rate ({HUMAN_ACCIDENTS_PER_MILE:g}/mile) at 95% confidence "
          f"takes {miles_to_demonstrate(HUMAN_ACCIDENTS_PER_MILE):,.0f} "
          "failure-free miles.")
    print()

    for name in wanted:
        if name not in summaries:
            print(f"{name}: not in the analysis set")
            continue
        summary = summaries[name]
        print(f"=== {name} ===")
        print(f"  miles driven: "
              f"{db.miles_by_manufacturer().get(name, 0):,.0f}")
        print(f"  DPM per {summary.unit}: median "
              f"{summary.median_dpm:.4g}, aggregate "
              f"{summary.aggregate_dpm:.4g}")
        assessment = assessments.get(name)
        if assessment is not None and assessment.dpm_fit is not None:
            trend = ("improving" if assessment.improving
                     else "NOT improving")
            print(f"  burn-in: log-log DPM slope "
                  f"{assessment.dpm_fit.slope:+.3f} ({trend}; "
                  f"mature={assessment.mature})")
        row = apm.get(name)
        if row is not None and row.apm is not None:
            print(f"  APM (median DPM / DPA): {row.apm:.3g} "
                  f"= {row.relative_to_human:.0f}x the human rate")
        if name in direct_apm:
            miles = db.miles_by_manufacturer()[name]
            accidents = len(
                db.accidents_by_manufacturer().get(name, []))
            upper = rate_upper_bound(miles, accidents)
            print(f"  first-principles APM: {direct_apm[name]:.3g} "
                  f"(95% upper bound {upper:.3g})")
        mission = missions.get(name)
        if mission is not None:
            print(f"  per mission: {mission.vs_airline:.2f}x airlines, "
                  f"{mission.vs_surgical_robot:.3f}x surgical robots")
        print()


if __name__ == "__main__":
    main()
