"""NLP failure tagging: build the failure dictionary, tag logs, and
inspect where the tagger disagrees with ground truth.

Also shows tagging *your own* log lines through the public API.

Usage::

    python examples/failure_tagging_nlp.py
"""

from repro import PipelineConfig, run_pipeline
from repro.nlp import (
    FailureDictionary,
    VotingTagger,
    evaluate_tagger,
)
from repro.nlp.evaluation import per_manufacturer_accuracy

CUSTOM_LOGS = [
    "Software module froze. As a result driver safely disengaged "
    "and resumed manual control.",
    "The AV didn't see the lead vehicle, driver safely disengaged.",
    "Disengage for a recklessly behaving road user",
    "Takeover-Request — watchdog error",
    "LIDAR failed to localize in time near the off-ramp",
    "Planner failed to anticipate the other driver's behavior",
    "Driver took over, no further detail recorded",
]


def main() -> None:
    result = run_pipeline(PipelineConfig(seed=2018))
    db = result.database
    records = [r for r in db.disengagements
               if r.truth_tag is not None]

    print("Building the failure dictionary from the corpus...")
    dictionary = FailureDictionary.build(
        [r.description for r in records])
    seeds = sum(1 for e in dictionary.entries if e.source == "seed")
    learned = len(dictionary) - seeds
    print(f"  {len(dictionary)} entries ({seeds} seed phrases, "
          f"{learned} learned by co-occurrence)")

    tagger = VotingTagger(dictionary)
    report = evaluate_tagger(tagger, records)
    print(f"  tag accuracy {report.tag_accuracy:.2%}, category "
          f"accuracy {report.category_accuracy:.2%} over "
          f"{report.total} records")

    print("\nTop confusions (truth -> predicted):")
    for (truth, predicted), count in report.top_confusions(5):
        print(f"  {truth.display_name:28s} -> "
              f"{predicted.display_name:28s} x{count}")

    print("\nPer-manufacturer accuracy:")
    for name, accuracy in per_manufacturer_accuracy(
            tagger, records).items():
        print(f"  {name:15s} {accuracy:.2%}")

    print("\nTagging custom log lines:")
    for text in CUSTOM_LOGS:
        tagged = tagger.tag(text)
        marker = "" if tagged.confident else "  (low confidence)"
        print(f"  [{tagged.tag.display_name:28s} | "
              f"{tagged.category}] {text[:60]}{marker}")


if __name__ == "__main__":
    main()
