"""Trip-level simulation: validate field statistics generatively and
run the counterfactuals the paper can only argue verbally.

1. Calibrate the simulator to a manufacturer's field data.
2. Check the simulated fleet reproduces the field DPM and DPA.
3. Counterfactual A — driver alertness degrades (reaction times x2,
   x4): how fast do accidents rise?
4. Counterfactual B — the ADS halves its fault-detection latency.
5. Counterfactual C — other drivers learn to anticipate AV behavior
   (anticipation accidents -> 0).

Usage::

    python examples/trip_simulator_counterfactuals.py [manufacturer]
"""

import sys
from dataclasses import replace

from repro import PipelineConfig, run_pipeline
from repro.simulator import calibrate_from_database, simulate_fleet

TRIPS = 30000


def main() -> None:
    manufacturer = sys.argv[1] if len(sys.argv) > 1 else "Delphi"
    print("Running the pipeline to calibrate against field data...")
    db = run_pipeline(PipelineConfig(seed=2018)).database

    config = calibrate_from_database(db, manufacturer)
    field_records = db.disengagements_by_manufacturer()[manufacturer]
    field_miles = db.miles_by_manufacturer()[manufacturer]
    field_accidents = len(
        db.accidents_by_manufacturer().get(manufacturer, []))

    baseline = simulate_fleet(config, trips=TRIPS, seed=2018)
    print(f"\n=== {manufacturer}: baseline validation ===")
    print(f"  DPM   field {len(field_records) / field_miles:.4g}  "
          f"simulated {baseline.dpm:.4g}")
    if field_accidents and baseline.dpa:
        field_dpa = len(field_records) / field_accidents
        print(f"  DPA   field {field_dpa:.0f}  "
              f"simulated {baseline.dpa:.0f}")
    print(f"  manual share simulated {baseline.manual_share:.2f}")
    print(f"  mean response window {baseline.mean_window_s:.2f} s")

    print("\n=== Counterfactual A: driver alertness degrades ===")
    for factor in (2.0, 4.0):
        tired = replace(config, driver=replace(
            config.driver, alertness_factor=factor))
        fleet = simulate_fleet(tired, trips=TRIPS, seed=2018)
        print(f"  reaction x{factor:.0f}: accidents "
              f"{baseline.accidents} -> {fleet.accidents}, "
              f"APM {baseline.apm:.3g} -> {fleet.apm:.3g}")

    print("\n=== Counterfactual B: faster fault detection ===")
    faster = replace(config, traffic=replace(
        config.traffic,
        mean_detection_latency_s=(
            config.traffic.mean_detection_latency_s / 2)))
    fleet = simulate_fleet(faster, trips=TRIPS, seed=2018)
    print(f"  detection latency halved: reaction accidents "
          f"{baseline.reaction_accidents} -> "
          f"{fleet.reaction_accidents}")

    print("\n=== Counterfactual C: other drivers anticipate AVs ===")
    anticipating = replace(config, traffic=replace(
        config.traffic, anticipation_accident_rate_per_mile=0.0))
    fleet = simulate_fleet(anticipating, trips=TRIPS, seed=2018)
    print(f"  anticipation failures eliminated: accidents "
          f"{baseline.accidents} -> {fleet.accidents}")
    print("\nThe asymmetry matches the paper: a large share of AV "
          "accidents are caused\nby other road users misreading the "
          "AV, so ADS-side fixes alone cannot\nremove them.")


if __name__ == "__main__":
    main()
