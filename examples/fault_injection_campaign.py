"""Stochastic fault injection over the Fig. 3 control structure.

The paper's conclusion calls for assessing the ML subsystems "under
fault conditions via stochastic modeling and fault injection"; this
example runs that campaign and cross-checks the hazard ranking against
the observed field-data overlay, then explores how better ML
self-detection would change the hazard rates.

Usage::

    python examples/fault_injection_campaign.py [injections]
"""

import sys

from repro import PipelineConfig, run_pipeline
from repro.stpa import overlay_failures
from repro.stpa.fault_injection import DEFAULT_DETECTION, FaultInjector


def main() -> None:
    injections = int(sys.argv[1]) if len(sys.argv) > 1 else 1000

    print(f"Baseline campaign ({injections} injections per "
          "component)...")
    injector = FaultInjector()
    campaign = injector.run_campaign(
        injections_per_component=injections, seed=2018)

    result = run_pipeline(PipelineConfig(seed=2018))
    overlay = overlay_failures(result.database.disengagements)
    localized = overlay.total - overlay.unlocalized

    print(f"\n{'origin':20s} {'hazard':>8s} {'detected':>9s} "
          f"{'field share':>12s}")
    for origin, rate in campaign.hazard_ranking():
        observed = overlay.by_component.get(origin, 0) / localized
        print(f"{origin:20s} {rate:8.2%} "
              f"{campaign.detection_rate(origin):9.2%} "
              f"{observed:12.2%}")

    print("\nWhat if perception could detect its own faults like the "
          "watchdogged substrate?")
    improved_detection = dict(DEFAULT_DETECTION)
    improved_detection["recognition"] = 0.8
    improved_detection["planner_controller"] = 0.8
    improved = FaultInjector(detection=improved_detection).run_campaign(
        injections_per_component=injections, seed=2018)
    for origin in ("recognition", "planner_controller"):
        before = campaign.hazard_rate(origin)
        after = improved.hazard_rate(origin)
        print(f"  {origin:20s} hazard {before:.2%} -> {after:.2%} "
              f"({(1 - after / max(before, 1e-9)):.0%} reduction)")

    print("\nTakeaway: raising ML fault self-detection to substrate "
          "levels cuts the\nhazard rate of perception/planning faults "
          "— the design direction the\npaper's conclusions argue for.")


if __name__ == "__main__":
    main()
