"""STPA hazard analysis: overlay the tagged failure data onto the
Fig. 3 hierarchical control structure.

Walks the control structure, localizes every disengagement to a
component and an unsafe-control-action kind, and reports which control
loop absorbs the failures — the analysis behind the paper's case
studies.

Usage::

    python examples/stpa_hazard_analysis.py
"""

from repro import PipelineConfig, run_pipeline
from repro.stpa import (
    CONTROL_LOOPS,
    build_control_structure,
    causal_factor_for_tag,
    overlay_failures,
)
from repro.taxonomy import FaultTag


def main() -> None:
    structure = build_control_structure()
    print("Control structure components:")
    for component in structure.components():
        print(f"  {component.name:20s} [{component.kind}] "
              f"{component.description[:55]}")

    print("\nControl loops (Fig. 3):")
    for loop in CONTROL_LOOPS.values():
        print(f"  {loop.name}: {' -> '.join(loop.nodes)}")
        print(f"      {loop.description}")

    print("\nTag localization (Table III -> Fig. 3):")
    for tag in FaultTag:
        factor = causal_factor_for_tag(tag)
        if factor is None:
            continue
        print(f"  {tag.display_name:28s} -> {factor.component:18s} "
              f"({factor.uca})")

    print("\nRunning the pipeline and overlaying failures...")
    result = run_pipeline(PipelineConfig(seed=2018))
    overlay = overlay_failures(result.database.disengagements)

    print(f"\n{overlay.total} disengagements overlaid "
          f"({overlay.unlocalized} unlocalized / Unknown-T):")
    localized = overlay.total - overlay.unlocalized
    for component, count in overlay.by_component.most_common():
        print(f"  {component:20s} {count:5d}  "
              f"({count / localized:.1%})")

    print("\nBy unsafe-control-action kind:")
    for uca, count in overlay.by_uca.most_common():
        print(f"  {str(uca):55s} {count:5d}")

    print("\nFailures per control loop:")
    for name, count in overlay.loop_counts().items():
        print(f"  {name}: {count}")

    dominant = overlay.dominant_component()
    print(f"\nDominant failure site: {dominant} — consistent with the "
          "paper's finding that perception faults drive "
          "disengagements.")


if __name__ == "__main__":
    main()
