"""Tests for the Section II case studies and temporal trend tools."""

import numpy as np
import pytest

from repro.analysis.temporal import (
    dpm_trend_test,
    mann_kendall,
    theil_sen_slope,
    yearly_evolution,
)
from repro.casestudies import (
    CASE_STUDIES,
    CASE_STUDY_1,
    CASE_STUDY_2,
    shared_lessons,
    validate_case_studies,
)
from repro.errors import InsufficientDataError
from repro.stpa.control_loops import CONTROL_LOOPS
from repro.taxonomy import FaultTag


class TestCaseStudies:
    def test_both_validate_against_structure(self):
        validate_case_studies()

    def test_case1_is_prediction_failure(self):
        assert FaultTag.INCORRECT_BEHAVIOR_PREDICTION in \
            CASE_STUDY_1.tags
        assert "recklessly behaving road user" in \
            CASE_STUDY_1.reported_causes[0]

    def test_case2_is_anticipation_failure(self):
        assert CASE_STUDY_2.tags == (FaultTag.ENVIRONMENT,)
        assert "non_av_driver" in CASE_STUDY_2.actors()

    def test_both_rear_end_collisions(self):
        for case in CASE_STUDIES:
            assert case.collision_type == "rear-end"
            assert case.at_fault_legally == "non-AV driver"

    def test_both_implicate_cl1(self):
        for case in CASE_STUDIES:
            assert case.control_loop in CONTROL_LOOPS
            loop = CONTROL_LOOPS[case.control_loop]
            assert "non_av_driver" in loop.nodes

    def test_events_are_time_ordered(self):
        for case in CASE_STUDIES:
            times = [event.at_seconds for event in case.events]
            assert times == sorted(times)

    def test_case1_action_window_is_small(self):
        # The driver had ~1 s between takeover and collision.
        window = CASE_STUDY_1.action_window_seconds
        assert 0 < window <= 2.0

    def test_case2_has_no_driver_action(self):
        # The driver never took over in Case II.
        assert "driver" not in CASE_STUDY_2.actors()
        assert CASE_STUDY_2.action_window_seconds == 0.0

    def test_three_shared_lessons(self):
        assert len(shared_lessons()) == 3


class TestMannKendall:
    def test_decreasing_series(self):
        result = mann_kendall([10, 9, 8, 7, 6, 5, 4, 3, 2, 1])
        assert result.direction == "decreasing"
        assert result.significant(0.05)

    def test_increasing_series(self):
        result = mann_kendall(list(range(12)))
        assert result.direction == "increasing"
        assert result.significant(0.05)

    def test_flat_series_not_significant(self):
        result = mann_kendall([5.0] * 10)
        assert not result.significant(0.05)

    def test_random_series_usually_not_significant(self):
        rng = np.random.default_rng(0)
        result = mann_kendall(rng.normal(size=40))
        assert result.p_value > 0.01

    def test_too_short_raises(self):
        with pytest.raises(InsufficientDataError):
            mann_kendall([1, 2, 3])

    def test_theil_sen(self):
        assert theil_sen_slope([0, 2, 4, 6]) == pytest.approx(2.0)
        noisy = [0, 2.1, 3.9, 6.2, 100.0]  # one outlier
        assert theil_sen_slope(noisy) == pytest.approx(2.0, abs=0.5)

    def test_theil_sen_too_short(self):
        with pytest.raises(InsufficientDataError):
            theil_sen_slope([1.0])


class TestDbTrends:
    def test_waymo_dpm_decreasing(self, db):
        result = dpm_trend_test(db, "Waymo")
        assert result.direction == "decreasing"
        assert result.significant(0.05)

    def test_bosch_dpm_increasing(self, db):
        result = dpm_trend_test(db, "Bosch")
        assert result.direction == "increasing"

    def test_waymo_yearly_evolution(self, db):
        evolution = yearly_evolution(db, "Waymo")
        assert evolution.median_improving
        assert 3 <= evolution.improvement_factor <= 30  # paper: ~8x

    def test_unknown_manufacturer_raises(self, db):
        with pytest.raises(InsufficientDataError):
            yearly_evolution(db, "Nonexistent Motors")
