"""Tests for cross-manufacturer comparisons, the Fig. 2/3 exhibits,
and docstring-coverage meta checks."""

import importlib
import inspect
import pkgutil

import pytest

from repro.analysis.cross import (
    cliffs_delta,
    compare_pair,
    dominance_matrix,
    reliability_ranking,
)
from repro.errors import InsufficientDataError

ANALYSIS = ["Mercedes-Benz", "Volkswagen", "Waymo", "Delphi", "Nissan",
            "Bosch", "GMCruise", "Tesla"]


class TestCliffsDelta:
    def test_complete_dominance(self):
        assert cliffs_delta([1, 2, 3], [10, 20, 30]) == -1.0
        assert cliffs_delta([10, 20], [1, 2]) == 1.0

    def test_identical_samples(self):
        assert cliffs_delta([5, 5], [5, 5]) == 0.0

    def test_empty_raises(self):
        with pytest.raises(InsufficientDataError):
            cliffs_delta([], [1.0])


class TestPairwise:
    def test_waymo_vs_benz_significant(self, db):
        comparison = compare_pair(db, "Waymo", "Mercedes-Benz")
        assert comparison.significant(0.01)
        assert comparison.cliffs_delta < -0.9   # Waymo dominates
        assert comparison.median_ratio < 0.01   # ~100x+ better
        assert comparison.effect == "large"

    def test_dominance_matrix_covers_pairs(self, db):
        matrix = dominance_matrix(db, ["Waymo", "Mercedes-Benz",
                                       "Bosch"])
        assert len(matrix) == 3

    def test_reliability_ranking_puts_waymo_first(self, db):
        ranking = reliability_ranking(db, ANALYSIS)
        assert ranking[0][0] == "Waymo"
        # Waymo significantly beats most of the field.
        assert ranking[0][2] >= 5
        medians = [median for _, median, _ in ranking]
        assert medians == sorted(medians)


class TestFigure2And3:
    def test_figure2_lists_both_cases(self, db):
        from repro.reporting import run_experiment

        figure = run_experiment("figure2", db)
        text = figure.render()
        assert "Case Study I" in text
        assert "Case Study II" in text
        assert "recklessly" not in text  # events, not report quotes

    def test_figure3_outline_and_dot(self, db):
        from repro.reporting import run_experiment

        figure = run_experiment("figure3", db)
        text = figure.render(max_points=3)
        assert "digraph control_structure" in text
        assert "recognition" in text
        # Observed failures annotate the structure.
        assert any("observed failures" in a for a in figure.annotations)


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(member) or inspect.isfunction(member):
            if getattr(member, "__module__", None) == module.__name__:
                yield name, member


class TestDocstringCoverage:
    def test_every_public_member_documented(self):
        import repro

        missing = []
        for info in pkgutil.walk_packages(repro.__path__,
                                          prefix="repro."):
            module = importlib.import_module(info.name)
            if not module.__doc__:
                missing.append(info.name)
            for name, member in _public_members(module):
                if not inspect.getdoc(member):
                    missing.append(f"{info.name}.{name}")
        assert not missing, f"undocumented: {missing[:10]}"

    def test_every_public_method_documented(self):
        import repro

        missing = []
        for info in pkgutil.walk_packages(repro.__path__,
                                          prefix="repro."):
            module = importlib.import_module(info.name)
            for class_name, cls in _public_members(module):
                if not inspect.isclass(cls):
                    continue
                for name, method in vars(cls).items():
                    if name.startswith("_"):
                        continue
                    if callable(method) and not inspect.getdoc(method):
                        missing.append(
                            f"{info.name}.{class_name}.{name}")
        assert not missing, f"undocumented: {missing[:10]}"
