"""Tests for incremental ingestion.

The headline contract: an incrementally built database is
**byte-identical** to a full from-scratch rebuild of the same combined
corpus — across document additions, changes, removals, OCR on or off,
both dictionary modes, lost state files, and chaos kill points at
every declared swap stage.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.pipeline import (
    PipelineConfig,
    SWAP_POINTS,
    ingest_corpus,
    process_corpus,
)
from repro.pipeline.chaos import ServingChaos, SimulatedCrash
from repro.pipeline.ingest import INGEST_STATE, document_digest
from repro.query import Query, SnapshotManager
from repro.synth.dataset import SyntheticCorpus

SEED = 7


def _subset(corpus, count):
    return SyntheticCorpus(seed=corpus.seed,
                           documents=corpus.documents[:count])


def _config(tmp_path, **overrides):
    defaults = dict(seed=SEED, ocr_enabled=False,
                    dictionary_mode="seed",
                    checkpoint_dir=tmp_path / "ckpt")
    defaults.update(overrides)
    return PipelineConfig(**defaults)


def _scratch_fingerprint(corpus, config):
    """Fingerprint of a full from-scratch rebuild (no checkpointing)."""
    clean = replace(config, checkpoint_dir=None, resume=False)
    return process_corpus(corpus, clean).database.fingerprint()


class TestDocumentDigest:
    def test_stable(self, small_corpus):
        doc = small_corpus.documents[0]
        assert document_digest(doc) == document_digest(doc)

    def test_line_change_changes_digest(self, small_corpus):
        doc = small_corpus.documents[0]
        altered = replace(doc, lines=doc.lines + ["EXTRA LINE"])
        assert document_digest(altered) != document_digest(doc)

    def test_truth_only_change_changes_digest(self, small_corpus):
        # attach_truth copies truth tags into parsed records, so a
        # truth-only edit must invalidate the journal entry even
        # though the rendered lines are identical.
        doc = next(d for d in small_corpus.documents
                   if d.truth_disengagements)
        record = doc.truth_disengagements[0]
        altered = replace(doc, truth_disengagements=(
            [replace(record,
                     description=record.description + " (amended)")]
            + list(doc.truth_disengagements[1:])))
        assert altered.lines == doc.lines
        assert document_digest(altered) != document_digest(doc)


class TestIngestRequirements:
    def test_requires_checkpoint_dir(self, small_corpus):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            ingest_corpus(small_corpus, PipelineConfig(seed=SEED))


class TestIngestParity:
    def test_first_ingest_is_full_rebuild(self, small_corpus,
                                          tmp_path):
        config = _config(tmp_path)
        base = _subset(small_corpus, 2)
        outcome = ingest_corpus(base, config)
        assert outcome.report.full_rebuild is True
        assert "first ingest" in outcome.report.reason
        assert outcome.report.new_documents == 2
        assert (outcome.database.fingerprint()
                == _scratch_fingerprint(base, config))

    def test_delta_ingest_matches_full_rebuild(self, small_corpus,
                                               tmp_path):
        config = _config(tmp_path)
        base = _subset(small_corpus, 2)
        ingest_corpus(base, config)
        outcome = ingest_corpus(small_corpus, config)
        report = outcome.report
        assert report.full_rebuild is False
        assert report.new_documents == len(small_corpus.documents) - 2
        assert report.reused_documents == 2
        assert report.changed_documents == 0
        assert report.tags_reused is True
        assert (outcome.database.fingerprint()
                == _scratch_fingerprint(small_corpus, config))

    def test_byte_identical_on_disk(self, small_corpus, tmp_path):
        config = _config(tmp_path)
        ingest_corpus(_subset(small_corpus, 2), config)
        outcome = ingest_corpus(small_corpus, config)
        incremental = tmp_path / "incremental.json"
        scratch = tmp_path / "scratch.json"
        outcome.database.save(incremental)
        clean = replace(config, checkpoint_dir=None)
        process_corpus(small_corpus, clean).database.save(scratch)
        assert (incremental.read_text(encoding="utf-8")
                == scratch.read_text(encoding="utf-8"))

    def test_changed_document_recomputed(self, small_corpus,
                                         tmp_path):
        config = _config(tmp_path)
        ingest_corpus(small_corpus, config)
        documents = list(small_corpus.documents)
        documents[0] = replace(
            documents[0],
            lines=documents[0].lines + ["TRAILING NOTE"])
        mutated = SyntheticCorpus(seed=SEED, documents=documents)
        outcome = ingest_corpus(mutated, config)
        report = outcome.report
        assert report.changed_documents == 1
        assert report.reused_documents == len(documents) - 1
        assert (outcome.database.fingerprint()
                == _scratch_fingerprint(mutated, config))

    def test_removed_document_dropped(self, small_corpus, tmp_path):
        config = _config(tmp_path)
        ingest_corpus(small_corpus, config)
        base = _subset(small_corpus, 2)
        outcome = ingest_corpus(base, config)
        assert outcome.report.removed_documents > 0
        assert (outcome.database.fingerprint()
                == _scratch_fingerprint(base, config))

    def test_parity_with_ocr_enabled(self, small_corpus, tmp_path):
        config = _config(tmp_path, ocr_enabled=True)
        ingest_corpus(_subset(small_corpus, 2), config)
        outcome = ingest_corpus(small_corpus, config)
        assert outcome.report.full_rebuild is False
        assert (outcome.database.fingerprint()
                == _scratch_fingerprint(small_corpus, config))

    def test_parity_with_expanded_dictionary(self, small_corpus,
                                             tmp_path):
        config = _config(tmp_path, dictionary_mode="expanded")
        ingest_corpus(_subset(small_corpus, 2), config)
        outcome = ingest_corpus(small_corpus, config)
        report = outcome.report
        assert report.tags_reused is False
        assert any("expanded" in note for note in report.notes)
        assert (outcome.database.fingerprint()
                == _scratch_fingerprint(small_corpus, config))

    def test_noop_reingest_reuses_everything(self, small_corpus,
                                             tmp_path):
        config = _config(tmp_path)
        first = ingest_corpus(small_corpus, config)
        again = ingest_corpus(small_corpus, config)
        report = again.report
        assert report.full_rebuild is False
        assert report.new_documents == 0
        assert report.changed_documents == 0
        assert report.reused_documents == len(small_corpus.documents)
        assert (again.database.fingerprint()
                == first.database.fingerprint())


class TestIngestResilience:
    def test_config_change_forces_full_rebuild(self, small_corpus,
                                               tmp_path):
        ingest_corpus(_subset(small_corpus, 2), _config(tmp_path))
        changed = _config(tmp_path, dictionary_mode="expanded")
        outcome = ingest_corpus(small_corpus, changed)
        assert outcome.report.full_rebuild is True
        assert (outcome.database.fingerprint()
                == _scratch_fingerprint(small_corpus, changed))

    def test_lost_state_file_still_correct(self, small_corpus,
                                           tmp_path):
        config = _config(tmp_path)
        ingest_corpus(_subset(small_corpus, 2), config)
        (tmp_path / "ckpt" / INGEST_STATE).unlink()
        outcome = ingest_corpus(small_corpus, config)
        # Every document counts as new (no digests to compare), but
        # the journals are still trusted by id — exactly --resume
        # semantics — and parity holds.
        assert outcome.report.full_rebuild is False
        assert (outcome.report.new_documents
                == len(small_corpus.documents))
        assert (outcome.database.fingerprint()
                == _scratch_fingerprint(small_corpus, config))

    def test_corrupt_state_file_still_correct(self, small_corpus,
                                              tmp_path):
        config = _config(tmp_path)
        ingest_corpus(_subset(small_corpus, 2), config)
        state = tmp_path / "ckpt" / INGEST_STATE
        state.write_text("{broken", encoding="utf-8")
        outcome = ingest_corpus(small_corpus, config)
        assert (outcome.database.fingerprint()
                == _scratch_fingerprint(small_corpus, config))


class TestIngestUnderSwapChaos:
    """Acceptance: parity holds under chaos kill points at every
    declared swap stage — the crash hits the *publish* of the newly
    ingested database, never its construction, so a retry serves
    exactly the parity-guaranteed result."""

    @pytest.mark.parametrize("point", SWAP_POINTS)
    def test_crash_then_retry_serves_parity_result(
            self, small_corpus, tmp_path, point):
        config = _config(tmp_path)
        base = ingest_corpus(_subset(small_corpus, 2), config)
        outcome = ingest_corpus(small_corpus, config)
        candidate = tmp_path / "candidate.json"
        outcome.database.save(candidate)

        # Serve the base generation; the grown corpus is the candidate.
        chaos = ServingChaos(crash_at=point)
        manager = SnapshotManager(base.database, chaos=chaos)
        with pytest.raises(SimulatedCrash):
            manager.load(candidate)
        assert manager.generation == 1  # old snapshot untouched
        manager.engine.execute(Query(metric="count"))

        chaos.crash_at = None
        assert manager.load(candidate) is True
        scratch = _scratch_fingerprint(small_corpus, config)
        assert outcome.database.fingerprint() == scratch
        assert manager.fingerprint == scratch
