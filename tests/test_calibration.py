"""Tests for the calibration registry: the paper's published numbers."""

import pytest

from repro.calibration import (
    ACCIDENT_PROFILES,
    FAULT_MIXTURES,
    MANUFACTURERS,
    MODALITY_MIXTURES,
    PAPER_MEDIAN_DPM,
    ReportPeriod,
    SPEED_MODEL,
    fault_mixture,
    get_manufacturer,
    modality_mixture,
    total_accidents,
    total_disengagements,
    total_miles,
)
from repro.calibration.fault_model import TABLE4_MANUFACTURERS
from repro.calibration.manufacturers import (
    ANALYSIS_MANUFACTURERS,
    EXCLUDED_MANUFACTURERS,
)
from repro.calibration.roads import ROAD_TYPE_SHARES
from repro.calibration.trends import DPM_TRENDS, dpm_trend
from repro.errors import CalibrationError
from repro.taxonomy import FailureCategory, MlSubcategory


class TestTable1Totals:
    """The abstract's headline dataset numbers."""

    def test_total_miles(self):
        assert total_miles() == pytest.approx(1116605.0, abs=1.0)

    def test_total_disengagements(self):
        assert total_disengagements() == 5328

    def test_total_accidents(self):
        assert total_accidents() == 42

    def test_period_subtotals(self):
        dis = {p: 0 for p in ReportPeriod}
        for manufacturer in MANUFACTURERS.values():
            for period in ReportPeriod:
                dis[period] += (
                    manufacturer.stats(period).disengagements or 0)
        assert dis[ReportPeriod.P2015_2016] == 2896
        assert dis[ReportPeriod.P2016_2017] == 2432

    def test_analysis_set_has_5324_disengagements(self):
        # "we use the 5,324 disengagements (across eight manufacturers)"
        total = sum(MANUFACTURERS[n].total_disengagements
                    for n in ANALYSIS_MANUFACTURERS)
        assert total == 5324

    def test_twelve_manufacturers(self):
        assert len(MANUFACTURERS) == 12

    def test_eight_analyzed_manufacturers(self):
        assert len(ANALYSIS_MANUFACTURERS) == 8
        assert set(EXCLUDED_MANUFACTURERS) == {
            "Uber ATC", "Honda", "Ford", "BMW"}

    def test_waymo_dominates_mileage(self):
        waymo = get_manufacturer("Waymo")
        assert waymo.total_miles > 0.9 * total_miles()

    def test_unknown_manufacturer_raises(self):
        with pytest.raises(CalibrationError):
            get_manufacturer("Cruithne Motors")


class TestFaultMixtures:
    def test_all_mixtures_sum_to_one(self):
        for mixture in FAULT_MIXTURES.values():
            assert sum(mixture.weights.values()) == pytest.approx(1.0)

    @pytest.mark.parametrize("name,planner,perception,system,unknown", [
        ("Delphi", 37.59, 50.17, 12.24, 0.0),
        ("Nissan", 36.30, 49.63, 14.07, 0.0),
        ("Tesla", 0.0, 0.0, 1.65, 98.35),
        ("Waymo", 10.13, 53.45, 36.42, 0.0),
    ])
    def test_table4_category_sums(self, name, planner, perception,
                                  system, unknown):
        mixture = fault_mixture(name)
        assert 100 * mixture.subcategory_share(
            MlSubcategory.PLANNER) == pytest.approx(planner, abs=0.01)
        assert 100 * mixture.subcategory_share(
            MlSubcategory.PERCEPTION) == pytest.approx(
                perception, abs=0.01)
        assert 100 * mixture.category_share(
            FailureCategory.SYSTEM) == pytest.approx(system, abs=0.01)
        assert 100 * mixture.category_share(
            FailureCategory.UNKNOWN) == pytest.approx(unknown, abs=0.01)

    def test_volkswagen_is_system_dominated(self):
        mixture = fault_mixture("Volkswagen")
        assert 100 * mixture.category_share(
            FailureCategory.SYSTEM) == pytest.approx(83.08, abs=0.01)

    def test_table4_manufacturer_set(self):
        assert set(TABLE4_MANUFACTURERS) == {
            "Delphi", "Nissan", "Tesla", "Volkswagen", "Waymo"}

    def test_unknown_manufacturer_gets_default_mixture(self):
        mixture = fault_mixture("Ford")
        assert sum(mixture.weights.values()) == pytest.approx(1.0)

    def test_tags_sorted_by_weight(self):
        mixture = fault_mixture("Waymo")
        tags = mixture.tags()
        weights = [mixture.weights[t] for t in tags]
        assert weights == sorted(weights, reverse=True)


class TestModalityMixtures:
    @pytest.mark.parametrize("name", ["Bosch", "GMCruise"])
    def test_planned_only_manufacturers(self, name):
        assert modality_mixture(name).all_planned

    def test_volkswagen_all_automatic(self):
        from repro.taxonomy import Modality
        assert modality_mixture("Volkswagen").share(
            Modality.AUTOMATIC) == pytest.approx(1.0)

    def test_all_mixtures_sum_to_one(self):
        for mixture in MODALITY_MIXTURES.values():
            assert sum(mixture.weights.values()) == pytest.approx(1.0)


class TestAccidentsAndSpeeds:
    def test_accident_counts_sum_to_42(self):
        assert sum(p.accidents
                   for p in ACCIDENT_PROFILES.values()) == 42

    def test_waymo_majority_of_accidents(self):
        assert ACCIDENT_PROFILES["Waymo"].accidents == 25

    def test_uber_has_no_dpa(self):
        assert ACCIDENT_PROFILES["Uber ATC"].dpa is None

    def test_speed_model_matches_below_10mph_claim(self):
        # ">80% of accidents below 10 mph relative speed"
        assert SPEED_MODEL.fraction_relative_below_10mph > 0.80


class TestTrendsAndRoads:
    def test_every_manufacturer_has_a_trend(self):
        for name in MANUFACTURERS:
            assert dpm_trend(name).manufacturer == name

    def test_bosch_is_the_worsening_exception(self):
        positive = [name for name, trend in DPM_TRENDS.items()
                    if trend.slope > 0]
        assert positive == ["Bosch"]

    def test_waymo_improves_fastest_among_big_reporters(self):
        assert DPM_TRENDS["Waymo"].slope < DPM_TRENDS["Delphi"].slope

    def test_road_shares_sum_to_one(self):
        assert sum(ROAD_TYPE_SHARES.values()) == pytest.approx(1.0)

    def test_city_streets_largest_share(self):
        from repro.calibration.roads import RoadType
        assert max(ROAD_TYPE_SHARES, key=ROAD_TYPE_SHARES.get) is \
            RoadType.CITY_STREET

    def test_paper_median_dpm_has_all_analysis_manufacturers(self):
        assert set(PAPER_MEDIAN_DPM) == set(ANALYSIS_MANUFACTURERS)
