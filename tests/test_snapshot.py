"""Tests for the atomic snapshot lifecycle.

The contract under test: readers always see exactly one complete
generation — across hot swaps, corrupt candidates, and simulated hard
crashes at every declared swap kill point — and the last-good snapshot
keeps serving whenever a candidate fails.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import CorruptDatabaseError
from repro.obs import MetricsRegistry
from repro.pipeline import PipelineConfig, process_corpus
from repro.pipeline.chaos import SWAP_POINTS, ServingChaos, SimulatedCrash
from repro.pipeline.checkpoint import canonical_json
from repro.query import (
    DirectoryWatcher,
    Query,
    QueryEngine,
    SnapshotManager,
)
from repro.synth.dataset import SyntheticCorpus

THREADS = 8


@pytest.fixture(scope="module")
def other_db(small_corpus):
    """A second, different database (subset corpus → new fingerprint)."""
    subset = SyntheticCorpus(seed=small_corpus.seed,
                             documents=small_corpus.documents[:2])
    config = PipelineConfig(seed=small_corpus.seed, ocr_enabled=False,
                            dictionary_mode="seed")
    return process_corpus(subset, config).database


class TestSnapshotManager:
    def test_boot_snapshot(self, small_db):
        manager = SnapshotManager(small_db, source="boot")
        snapshot = manager.current()
        assert snapshot.generation == 1
        assert snapshot.fingerprint == small_db.fingerprint()
        assert snapshot.source == "boot"
        assert manager.degraded is False
        assert manager.last_error is None

    def test_accepts_prebuilt_engine(self, small_db):
        engine = QueryEngine(small_db)
        manager = SnapshotManager(engine)
        assert manager.engine is engine

    def test_swap_database_bumps_generation(self, small_db, other_db):
        manager = SnapshotManager(small_db)
        assert manager.swap_database(other_db, source="delta") is True
        snapshot = manager.current()
        assert snapshot.generation == 2
        assert snapshot.fingerprint == other_db.fingerprint()
        assert snapshot.source == "delta"
        # The new engine answers from the new database.
        assert (manager.engine.execute(Query(metric="count")).value
                == QueryEngine(other_db).execute(
                    Query(metric="count")).value)

    def test_same_fingerprint_is_noop(self, small_db):
        manager = SnapshotManager(small_db)
        engine_before = manager.engine
        assert manager.swap_database(small_db) is False
        assert manager.generation == 1
        assert manager.engine is engine_before

    def test_noop_swap_clears_degraded(self, small_db, tmp_path):
        manager = SnapshotManager(small_db)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert manager.load(bad) is False
        assert manager.degraded is True
        # The offered content equals what we serve: healthy again.
        assert manager.swap_database(small_db) is False
        assert manager.degraded is False

    def test_load_good_file(self, small_db, other_db, tmp_path):
        path = tmp_path / "next.json"
        other_db.save(path)
        manager = SnapshotManager(small_db)
        assert manager.load(path) is True
        assert manager.generation == 2
        assert manager.fingerprint == other_db.fingerprint()
        assert manager.current().source == str(path)

    def test_corrupt_json_quarantined(self, small_db, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("\x00garbage", encoding="utf-8")
        manager = SnapshotManager(small_db)
        assert manager.load(bad) is False
        assert manager.generation == 1
        assert manager.degraded is True
        assert manager.stats()["quarantined"] == 1
        # The last-good snapshot still answers.
        manager.engine.execute(Query(metric="dpm"))

    def test_checksum_mismatch_quarantined(self, small_db, other_db,
                                           tmp_path):
        path = tmp_path / "torn.json"
        other_db.save(path)
        # Tear the payload after the sidecar was published.
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 2], encoding="utf-8")
        manager = SnapshotManager(small_db)
        assert manager.load(path) is False
        assert manager.degraded is True
        assert "sha256" in manager.last_error

    def test_wrong_structure_quarantined(self, small_db, tmp_path):
        path = tmp_path / "shape.json"
        path.write_text('{"format": 999}', encoding="utf-8")
        manager = SnapshotManager(small_db)
        assert manager.load(path) is False
        assert manager.degraded is True

    def test_missing_file_propagates(self, small_db, tmp_path):
        manager = SnapshotManager(small_db)
        with pytest.raises(OSError):
            manager.load(tmp_path / "vanished.json")

    def test_successful_swap_clears_quarantine_flag(
            self, small_db, other_db, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{", encoding="utf-8")
        good = tmp_path / "good.json"
        other_db.save(good)
        manager = SnapshotManager(small_db)
        manager.load(bad)
        assert manager.degraded is True
        assert manager.load(good) is True
        assert manager.degraded is False
        assert manager.stats()["quarantined"] == 1  # history survives

    def test_chaos_corrupt_candidate_quarantined(
            self, small_db, other_db, tmp_path):
        path = tmp_path / "next.json"
        other_db.save(path)
        chaos = ServingChaos(corrupt_candidate=True)
        manager = SnapshotManager(small_db, chaos=chaos)
        assert manager.load(path) is False
        assert chaos.injected_corruptions == 1
        assert manager.generation == 1
        assert manager.degraded is True

    @pytest.mark.parametrize("point", SWAP_POINTS)
    def test_crash_at_every_swap_point_preserves_old(
            self, small_db, other_db, tmp_path, point):
        path = tmp_path / "next.json"
        other_db.save(path)
        chaos = ServingChaos(crash_at=point)
        manager = SnapshotManager(small_db, chaos=chaos)
        before = manager.current()
        baseline = canonical_json(
            manager.engine.execute(Query(metric="dpm")).value)
        with pytest.raises(SimulatedCrash):
            manager.load(path)
        # The pointer never moved: same object, same answers.
        assert manager.current() is before
        assert canonical_json(
            manager.engine.execute(Query(metric="dpm")).value
        ) == baseline
        # Recovery: clear the kill point and retry the same swap.
        chaos.crash_at = None
        assert manager.load(path) is True
        assert manager.fingerprint == other_db.fingerprint()

    def test_swap_engine_publishes_prebuilt(self, small_db, other_db):
        manager = SnapshotManager(small_db)
        prebuilt = QueryEngine(other_db)
        assert manager.swap_engine(prebuilt, source="prebuilt") is True
        assert manager.generation == 2
        assert manager.engine is prebuilt
        assert manager.current().source == "prebuilt"
        # Same fingerprint again: a noop that clears degraded state.
        assert manager.swap_engine(QueryEngine(other_db)) is False
        assert manager.generation == 2

    def test_swap_engine_crash_at_publish(self, small_db, other_db):
        chaos = ServingChaos(crash_at="swap-publish")
        manager = SnapshotManager(small_db, chaos=chaos)
        with pytest.raises(SimulatedCrash):
            manager.swap_engine(QueryEngine(other_db))
        assert manager.generation == 1
        assert manager.fingerprint == small_db.fingerprint()

    @pytest.mark.parametrize("point", ("swap-build", "swap-publish"))
    def test_crash_during_database_swap(self, small_db, other_db,
                                        point):
        chaos = ServingChaos(crash_at=point)
        manager = SnapshotManager(small_db, chaos=chaos)
        with pytest.raises(SimulatedCrash):
            manager.swap_database(other_db)
        assert manager.generation == 1
        assert manager.fingerprint == small_db.fingerprint()

    def test_metrics_record_every_outcome(self, small_db, other_db,
                                          tmp_path):
        registry = MetricsRegistry()
        manager = SnapshotManager(small_db, registry=registry)
        manager.swap_database(small_db)            # noop
        manager.swap_database(other_db)            # ok
        bad = tmp_path / "bad.json"
        bad.write_text("nope", encoding="utf-8")
        manager.load(bad)                          # quarantined
        text = registry.render_prometheus()
        assert 'repro_snapshot_swaps_total{outcome="noop"} 1' in text
        assert 'repro_snapshot_swaps_total{outcome="ok"} 1' in text
        assert ('repro_snapshot_swaps_total{outcome="quarantined"} 1'
                in text)
        assert "repro_snapshot_generation 2" in text
        assert "repro_snapshot_quarantined_total 1" in text


class TestDirectoryWatcher:
    def test_missing_directory_is_empty(self, tmp_path):
        watcher = DirectoryWatcher(tmp_path / "nope")
        assert watcher.poll() == []

    def test_reports_new_then_quiesces(self, tmp_path):
        watcher = DirectoryWatcher(tmp_path)
        assert watcher.poll() == []
        (tmp_path / "b.json").write_text("{}", encoding="utf-8")
        (tmp_path / "a.json").write_text("{}", encoding="utf-8")
        assert watcher.poll() == [tmp_path / "a.json",
                                  tmp_path / "b.json"]
        assert watcher.poll() == []

    def test_reports_changed_content(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text("{}", encoding="utf-8")
        watcher = DirectoryWatcher(tmp_path)
        watcher.poll()
        path.write_text('{"v": 22}', encoding="utf-8")
        assert watcher.poll() == [path]

    def test_sidecars_are_not_candidates(self, tmp_path):
        (tmp_path / "db.json").write_text("{}", encoding="utf-8")
        (tmp_path / "db.json.sha256").write_text("x", encoding="utf-8")
        watcher = DirectoryWatcher(tmp_path)
        assert watcher.poll() == [tmp_path / "db.json"]


class TestSwapUnderLoad:
    """Satellite: ≥8 reader threads while snapshots swap underneath.

    Every response must be internally consistent — the result must
    match the serial answer for *the fingerprint the response claims*,
    i.e. all rows from exactly one generation, never a blend.
    """

    QUERIES = [
        Query(metric="dpm"),
        Query(metric="count", group_by="manufacturer"),
        Query(metric="miles", group_by="month"),
        Query(metric="tags"),
    ]

    def test_engine_reads_never_blend_generations(
            self, small_db, other_db):
        expected = {}
        for db in (small_db, other_db):
            serial = QueryEngine(db)
            expected[db.fingerprint()] = {
                q.canonical(): canonical_json(serial.execute(q).value)
                for q in self.QUERIES}
        manager = SnapshotManager(small_db)
        failures: list[str] = []
        stop = threading.Event()
        barrier = threading.Barrier(THREADS + 1)

        def reader(offset: int) -> None:
            barrier.wait()
            rounds = 0
            while not stop.is_set() or rounds < 20:
                rounds += 1
                q = self.QUERIES[(offset + rounds) % len(self.QUERIES)]
                snapshot = manager.current()
                result = snapshot.engine.execute(q)
                known = expected.get(result.fingerprint)
                if known is None:
                    failures.append(
                        f"unknown fingerprint {result.fingerprint}")
                elif (canonical_json(result.value)
                      != known[q.canonical()]):
                    failures.append(
                        f"{q.metric}: blended generations "
                        f"(fingerprint {result.fingerprint[:8]})")
                if rounds >= 400:
                    break

        def swapper() -> None:
            barrier.wait()
            for i in range(30):
                manager.swap_database(
                    other_db if i % 2 == 0 else small_db)
            stop.set()

        threads = [threading.Thread(target=reader, args=(n,))
                   for n in range(THREADS)]
        threads.append(threading.Thread(target=swapper))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        assert manager.generation == 1 + 30  # every swap published
