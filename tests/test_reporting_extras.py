"""Tests for the extension exhibits and time-of-day breakdown."""

import pytest

from repro.analysis.conditions import time_of_day_breakdown
from repro.errors import InsufficientDataError
from repro.reporting.extras import (
    census_table,
    conditions_table,
    fault_injection_table,
    simulator_table,
)


class TestTimeOfDay:
    def test_counts_by_hour(self, db):
        hours = time_of_day_breakdown(db)
        assert set(hours) <= set(range(24))
        assert sum(hours.values()) > 1000

    def test_testing_is_diurnal(self, db):
        hours = time_of_day_breakdown(db)
        total = sum(hours.values())
        daytime = sum(hours.get(h, 0) for h in range(8, 19))
        assert daytime / total > 0.7

    def test_manufacturer_without_timestamps(self, db):
        with pytest.raises(InsufficientDataError):
            time_of_day_breakdown(db, "Waymo")  # month-only reports


class TestExtensionTables:
    def test_census_table(self, db):
        table = census_table(db)
        waymo = table.row_for("Waymo")
        assert waymo is not None
        # Waymo reports no per-event dates (month granularity).
        date_index = table.columns.index("event date")
        assert waymo[date_index] == 0.0

    def test_conditions_table(self, db):
        table = conditions_table(db)
        kinds = set(table.column("Condition"))
        assert {"road type", "weather", "hour of day"} <= kinds

    def test_fault_injection_table(self, db):
        table = fault_injection_table(db, injections=100)
        assert len(table.rows) >= 5
        for row in table.rows:
            assert 0.0 <= row[1] <= 1.0

    def test_simulator_table(self, db):
        table = simulator_table(db, trips=4000)
        names = [row[0] for row in table.rows]
        assert "Delphi" in names
        delphi = table.row_for("Delphi")
        # Simulated DPM tracks field DPM.
        assert delphi[2] == pytest.approx(delphi[1], rel=0.3)

    def test_year_over_year_table(self, db):
        from repro.reporting.extras import year_over_year_table

        table = year_over_year_table(db)
        waymo = table.row_for("Waymo")
        assert waymo is not None
        assert waymo[4] == "down"       # DPM fell
        assert waymo[5] is True         # improving
        bosch = table.row_for("Bosch")
        assert bosch[4] == "up"

    def test_extension_experiments_run(self, db):
        from repro.reporting import run_experiment

        for experiment_id in ("ext-census", "ext-conditions",
                              "ext-yoy"):
            exhibit = run_experiment(experiment_id, db)
            assert exhibit.render().strip()
