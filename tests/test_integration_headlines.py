"""Integration tests: the paper's headline claims, end to end.

Each test reproduces one quantitative claim from the paper over the
full pipeline output (synthetic corpus -> OCR -> parse -> NLP -> Stage
IV analysis).  Tolerances are loose enough for channel noise but tight
enough that a broken stage fails them.
"""

import pytest

from repro.analysis import (
    apm_summary,
    mission_comparison,
    pooled_dpm_correlation,
)
from repro.analysis.alertness import (
    overall_mean_reaction_time,
    reaction_time_mileage_correlation,
)
from repro.analysis.apm import (
    collision_speed_distributions,
    disengagements_per_accident_overall,
    miles_per_disengagement,
)
from repro.analysis.categories import (
    automatic_share,
    overall_category_shares,
)
from repro.calibration.reaction_times import (
    NON_AV_BRAKING_REACTION_TIME_S,
)

ANALYSIS = ["Mercedes-Benz", "Volkswagen", "Waymo", "Delphi", "Nissan",
            "Bosch", "GMCruise", "Tesla"]


class TestAbstractClaims:
    """Claims from the abstract and introduction."""

    def test_dataset_scale(self, db):
        # "144 AVs ... 1,116,605 autonomous miles ... 5,328
        # disengagements and 42 accidents"
        assert db.total_miles == pytest.approx(1116605, rel=0.03)
        assert len(db.disengagements) == pytest.approx(5328, abs=20)
        assert len(db.accidents) == 42

    def test_claim_15_to_4000x_worse_than_humans(self, db):
        ratios = [s.relative_to_human
                  for s in apm_summary(db, ANALYSIS).values()
                  if s.relative_to_human is not None]
        assert min(ratios) >= 5 and min(ratios) <= 50
        assert max(ratios) >= 1000 and max(ratios) <= 10000

    def test_claim_64_percent_ml_design(self, db):
        shares = overall_category_shares(db)
        assert shares["ml_design"] == pytest.approx(0.64, abs=0.05)

    def test_claim_drivers_as_alert_as_non_av(self, db):
        mean = overall_mean_reaction_time(db)
        # Paper: 0.85 s AV vs 0.82 s non-AV braking.
        assert abs(mean - NON_AV_BRAKING_REACTION_TIME_S) < 0.25

    def test_claim_4x_worse_than_airplanes(self, db):
        waymo = mission_comparison(db, ANALYSIS)["Waymo"]
        # Paper: 4.22x worse than airlines; accept 1-10x.
        assert 1.0 <= waymo.vs_airline <= 10.0

    def test_claim_2_5x_better_than_surgical_robots(self, db):
        waymo = mission_comparison(db, ANALYSIS)["Waymo"]
        # Paper: 0.0398 (25x better); direction must hold.
        assert waymo.vs_surgical_robot < 0.5


class TestSectionVClaims:
    """Claims from the statistical-analysis section."""

    def test_262_miles_per_disengagement(self, db):
        assert miles_per_disengagement(db) == pytest.approx(262,
                                                            rel=0.6)

    def test_one_accident_per_127_disengagements(self, db):
        assert disengagements_per_accident_overall(db) == \
            pytest.approx(127, abs=5)

    def test_pooled_correlation_minus_087(self, db):
        result = pooled_dpm_correlation(db, ANALYSIS)
        assert result.r == pytest.approx(-0.87, abs=0.08)
        assert result.p_value < 1e-30

    def test_48_percent_automatic(self, db):
        assert automatic_share(db) == pytest.approx(0.48, abs=0.07)

    def test_waymo_reaction_time_correlation(self, db):
        result = reaction_time_mileage_correlation(db, "Waymo")
        # Paper: r = 0.19 at p = 0.01.
        assert 0.05 <= result.r <= 0.4
        assert result.p_value < 0.01

    def test_benz_reaction_time_correlation(self, db):
        result = reaction_time_mileage_correlation(db, "Mercedes-Benz")
        # Paper: r = 0.11 at p = 0.007.
        assert result.r > 0.0
        assert result.p_value < 0.05

    def test_80_percent_accidents_below_10mph(self, db):
        distributions = collision_speed_distributions(db)
        assert distributions.fraction_relative_below(10.0) > 0.8

    def test_waymo_100x_better_dpm(self, db):
        from repro.analysis import manufacturer_dpm_summary
        summaries = manufacturer_dpm_summary(db, ANALYSIS)
        waymo = summaries["Waymo"].median_dpm
        others = [s.median_dpm for n, s in summaries.items()
                  if n != "Waymo"]
        # "Waymo does ~100x better than its competitors" (median of
        # medians; allow 20x-1000x).
        import numpy as np
        ratio = float(np.median(others)) / waymo
        assert 20 <= ratio <= 1000
