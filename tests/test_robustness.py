"""Robustness tests: hostile inputs through the pipeline, dictionary
persistence, and the upper-quartile perception claim."""

import pytest

from repro.nlp import FailureDictionary
from repro.pipeline import PipelineConfig, process_corpus
from repro.synth import generate_corpus
from repro.synth.reports import RawDocument
from repro.taxonomy import FailureCategory, FaultTag, category_of


class TestHostileDocuments:
    def test_garbage_disengagement_document_is_skipped(self):
        corpus = generate_corpus(seed=5, manufacturers=["Nissan"])
        corpus.documents.append(RawDocument(
            document_id="garbage-1", manufacturer="???",
            kind="disengagement",
            lines=["completely", "unparseable", "noise", "@@@@"]))
        result = process_corpus(corpus, PipelineConfig(
            seed=5, ocr_enabled=False, dictionary_mode="seed"))
        # The good document still parses fully.
        assert len(result.database.disengagements) == 135

    def test_garbage_accident_document_is_skipped(self):
        corpus = generate_corpus(seed=5, manufacturers=["Nissan"])
        corpus.documents.append(RawDocument(
            document_id="garbage-2", manufacturer="???",
            kind="accident", lines=["not", "an", "OL316"]))
        result = process_corpus(corpus, PipelineConfig(
            seed=5, ocr_enabled=False, dictionary_mode="seed"))
        assert len(result.database.accidents) == 1  # Nissan's real one

    def test_empty_document_is_harmless(self):
        corpus = generate_corpus(seed=5, manufacturers=["Nissan"])
        corpus.documents.append(RawDocument(
            document_id="empty", manufacturer="Nissan",
            kind="disengagement", lines=[]))
        result = process_corpus(corpus, PipelineConfig(
            seed=5, ocr_enabled=False, dictionary_mode="seed"))
        assert len(result.database.disengagements) == 135

    def test_empty_corpus(self):
        from repro.synth.dataset import SyntheticCorpus

        result = process_corpus(SyntheticCorpus(seed=0),
                                PipelineConfig(seed=0))
        assert result.database.disengagements == []
        assert result.database.accidents == []


class TestDictionaryPersistence:
    def test_json_roundtrip(self):
        original = FailureDictionary.from_seeds()
        clone = FailureDictionary.from_json(original.to_json())
        assert len(clone) == len(original)
        originals = {(e.phrase, e.tag, e.source)
                     for e in original.entries}
        clones = {(e.phrase, e.tag, e.source) for e in clone.entries}
        assert originals == clones

    def test_roundtrip_preserves_matching(self, db):
        texts = [r.description for r in db.disengagements][:500]
        built = FailureDictionary.build(texts)
        clone = FailureDictionary.from_json(built.to_json())
        from repro.nlp import VotingTagger

        a = VotingTagger(built)
        b = VotingTagger(clone)
        for text in texts[:50]:
            assert a.tag(text).tag == b.tag(text).tag


class TestUpperQuartileClaim:
    def test_perception_drives_upper_dpm_quartiles(self, db):
        """Paper: "the perception-based machine learning faults are
        responsible for DPM measurements in the upper three
        quartiles"."""
        from repro.analysis.dpm import dpm_quantile_tags
        from repro.taxonomy import MlSubcategory, ml_subcategory_of

        def perception_share(tags: list[FaultTag]) -> float:
            if not tags:
                return 0.0
            perception = sum(
                1 for tag in tags
                if ml_subcategory_of(tag) is MlSubcategory.PERCEPTION)
            return perception / len(tags)

        bands = dpm_quantile_tags(db, "Waymo")
        upper = perception_share(bands["upper"])
        assert upper > 0.4  # perception dominates the high-DPM months

    def test_unknown_category_is_small_outside_tesla(self, db):
        unknown = sum(
            1 for r in db.disengagements
            if r.manufacturer != "Tesla" and r.tag is not None
            and category_of(r.tag) is FailureCategory.UNKNOWN)
        total = sum(1 for r in db.disengagements
                    if r.manufacturer != "Tesla")
        assert unknown / total < 0.05
