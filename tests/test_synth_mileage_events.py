"""Tests for mileage plans and disengagement-event synthesis."""

import numpy as np
import pytest

from repro.calibration.manufacturers import (
    MANUFACTURERS,
    PERIODS,
    ReportPeriod,
)
from repro.synth.events import synthesize_disengagements
from repro.synth.fleet import build_roster
from repro.synth.mileage import build_monthly_plan
from repro.taxonomy import FaultTag, Modality
from repro.units import months_between


@pytest.fixture(scope="module")
def nissan_plan():
    rng = np.random.default_rng(1)
    roster = build_roster("Nissan", rng)
    return build_monthly_plan("Nissan", roster, rng)


@pytest.fixture(scope="module")
def nissan_events(nissan_plan):
    return synthesize_disengagements(
        "Nissan", nissan_plan, np.random.default_rng(2))


class TestMileagePlan:
    def test_total_miles_match_table1(self, nissan_plan):
        expected = MANUFACTURERS["Nissan"].total_miles
        assert nissan_plan.total_miles == pytest.approx(expected,
                                                        rel=1e-9)

    def test_months_inside_reporting_periods(self, nissan_plan):
        valid = set()
        for period in ReportPeriod:
            valid.update(months_between(*PERIODS[period]))
        assert set(nissan_plan.months()) <= valid

    def test_every_cell_positive(self, nissan_plan):
        assert all(cell.miles > 0 for cell in nissan_plan.cells)

    def test_cumulative_is_monotone(self, nissan_plan):
        cumulative = list(nissan_plan.cumulative_miles().values())
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == pytest.approx(nissan_plan.total_miles)

    def test_per_vehicle_totals_cover_fleet(self, nissan_plan):
        by_vehicle = nissan_plan.miles_by_vehicle()
        assert len(by_vehicle) == 4  # period-1 fleet size
        assert sum(by_vehicle.values()) == pytest.approx(
            nissan_plan.total_miles)

    def test_untested_manufacturer_has_empty_plan(self):
        rng = np.random.default_rng(3)
        roster = build_roster("Honda", rng)
        plan = build_monthly_plan("Honda", roster, rng)
        assert plan.cells == []


class TestEventSynthesis:
    def test_event_totals_match_table1_exactly(self, nissan_events):
        per_period = {p: 0 for p in ReportPeriod}
        for record in nissan_events:
            for period, (start, end) in PERIODS.items():
                if record.month in months_between(start, end):
                    per_period[period] += 1
        assert per_period[ReportPeriod.P2015_2016] == 106
        assert per_period[ReportPeriod.P2016_2017] == 29

    def test_events_carry_ground_truth_tags(self, nissan_events):
        assert all(r.truth_tag is not None for r in nissan_events)
        assert all(isinstance(r.truth_tag, FaultTag)
                   for r in nissan_events)

    def test_events_have_narratives(self, nissan_events):
        assert all(r.description for r in nissan_events)

    def test_events_have_dates_and_vehicles(self, nissan_events):
        assert all(r.event_date is not None for r in nissan_events)
        assert all(r.vehicle_id for r in nissan_events)

    def test_event_dates_fall_in_their_month(self, nissan_events):
        for record in nissan_events:
            assert record.event_date.strftime("%Y-%m") == record.month

    def test_nissan_reports_reaction_times(self, nissan_events):
        assert all(r.reaction_time_s is not None for r in nissan_events)
        assert all(r.reaction_time_s > 0 for r in nissan_events)

    def test_nissan_modalities_are_auto_or_manual(self, nissan_events):
        assert set(r.modality for r in nissan_events) <= {
            Modality.AUTOMATIC, Modality.MANUAL}

    def test_events_sorted_by_month(self, nissan_events):
        months = [r.month for r in nissan_events]
        assert months == sorted(months)

    def test_bosch_events_all_planned(self):
        rng = np.random.default_rng(4)
        roster = build_roster("Bosch", rng)
        plan = build_monthly_plan("Bosch", roster, rng)
        events = synthesize_disengagements("Bosch", plan, rng)
        assert len(events) == 625 + 1442
        assert all(r.modality is Modality.PLANNED for r in events)

    def test_waymo_events_have_month_granularity_only(self):
        rng = np.random.default_rng(5)
        roster = build_roster("Waymo", rng)
        plan = build_monthly_plan("Waymo", roster, rng)
        events = synthesize_disengagements("Waymo", plan, rng)
        assert all(r.event_date is None for r in events)
        assert all(r.month for r in events)

    def test_volkswagen_carries_the_reaction_outlier(self):
        rng = np.random.default_rng(6)
        roster = build_roster("Volkswagen", rng)
        plan = build_monthly_plan("Volkswagen", roster, rng)
        events = synthesize_disengagements("Volkswagen", plan, rng)
        longest = max(r.reaction_time_s for r in events)
        assert longest == pytest.approx(14280.0)  # the ~4 h record

    def test_synthesis_is_deterministic(self, nissan_plan):
        a = synthesize_disengagements(
            "Nissan", nissan_plan, np.random.default_rng(9))
        b = synthesize_disengagements(
            "Nissan", nissan_plan, np.random.default_rng(9))
        assert [r.description for r in a] == [r.description for r in b]
        assert [r.truth_tag for r in a] == [r.truth_tag for r in b]
