"""Tests for the database linter and database diffing."""

from datetime import date

import pytest

from repro.analysis.compare import (
    MetricDelta,
    diff_databases,
    split_by_period,
)
from repro.errors import InsufficientDataError
from repro.pipeline import FailureDatabase
from repro.pipeline.lint import Severity, errors, lint_database
from repro.parsing.records import (
    AccidentRecord,
    DisengagementRecord,
    MonthlyMileage,
)
from repro.taxonomy import FailureCategory, FaultTag


class TestLint:
    def test_clean_pipeline_output_has_no_errors(self, db):
        findings = lint_database(db)
        assert errors(findings) == [], [str(f) for f in errors(
            findings)][:5]

    def test_vw_outlier_is_flagged_as_warning(self, db):
        findings = lint_database(db)
        warnings = [f for f in findings
                    if f.check == "implausible-reaction-time"]
        assert warnings  # the ~4 h Volkswagen record

    def test_month_outside_window(self):
        db = FailureDatabase(disengagements=[DisengagementRecord(
            manufacturer="X", month="2020-01", description="d")])
        findings = lint_database(db)
        assert any(f.check == "month-coverage"
                   for f in errors(findings))

    def test_date_month_mismatch(self):
        db = FailureDatabase(disengagements=[DisengagementRecord(
            manufacturer="X", month="2015-01",
            event_date=date(2015, 2, 3), description="d")])
        assert any(f.check == "date-month-mismatch"
                   for f in errors(lint_database(db)))

    def test_tag_category_mismatch(self):
        db = FailureDatabase(disengagements=[DisengagementRecord(
            manufacturer="X", month="2015-01", description="d",
            tag=FaultTag.SOFTWARE,
            category=FailureCategory.ML_DESIGN)])
        assert any(f.check == "tag-category-mismatch"
                   for f in errors(lint_database(db)))

    def test_events_without_miles(self):
        db = FailureDatabase(disengagements=[DisengagementRecord(
            manufacturer="X", month="2015-01", description="d")])
        assert any(f.check == "events-without-miles"
                   for f in errors(lint_database(db)))

    def test_redaction_leak(self):
        db = FailureDatabase(accidents=[AccidentRecord(
            manufacturer="X", month="2015-01", redacted=True,
            vehicle_id="LEAKED")])
        assert any(f.check == "redaction-leak"
                   for f in errors(lint_database(db)))

    def test_untagged_warning(self):
        db = FailureDatabase(
            disengagements=[DisengagementRecord(
                manufacturer="X", month="2015-01", description="d")],
            mileage=[MonthlyMileage("X", "2015-01", 10.0)])
        findings = lint_database(db)
        assert any(f.check == "untagged-records"
                   and f.severity is Severity.WARNING
                   for f in findings)


class TestMetricDelta:
    def test_directions(self):
        assert MetricDelta("m", 1.0, 2.0).direction == "up"
        assert MetricDelta("m", 2.0, 1.0).direction == "down"
        assert MetricDelta("m", 1.0, 1.0).direction == "flat"
        assert MetricDelta("m", None, 1.0).direction == "n/a"

    def test_relative(self):
        assert MetricDelta("m", 2.0, 3.0).relative == pytest.approx(
            0.5)
        assert MetricDelta("m", 0.0, 3.0).relative is None


class TestDiff:
    def test_period_split_partitions(self, db):
        first, second = split_by_period(db)
        assert (len(first.disengagements) + len(second.disengagements)
                == len(db.disengagements))
        assert (len(first.accidents) + len(second.accidents)
                == len(db.accidents))
        assert first.total_miles + second.total_miles == \
            pytest.approx(db.total_miles)

    def test_year_over_year_waymo_improves(self, db):
        first, second = split_by_period(db)
        diffs = diff_databases(first, second)
        waymo = diffs["Waymo"]
        assert waymo.improving is True
        assert waymo.delta("miles").direction == "up"

    def test_bosch_worsens(self, db):
        first, second = split_by_period(db)
        assert diff_databases(first, second)["Bosch"].improving \
            is False

    def test_unknown_metric_raises(self, db):
        first, second = split_by_period(db)
        with pytest.raises(InsufficientDataError):
            diff_databases(first, second)["Waymo"].delta("nonexistent")

    def test_manufacturer_union(self):
        a = FailureDatabase(mileage=[MonthlyMileage("A", "2015-01",
                                                    5.0)])
        b = FailureDatabase(mileage=[MonthlyMileage("B", "2015-01",
                                                    5.0)])
        diffs = diff_databases(a, b)
        assert set(diffs) == {"A", "B"}
        assert diffs["A"].delta("miles").direction == "n/a"
