"""Tests for the generic statistics: boxplots, regression,
correlation, and distribution fits."""

import numpy as np
import pytest

from repro.analysis import (
    boxplot_stats,
    describe,
    fit_exponential,
    fit_exponweibull,
    fit_linear,
    fit_loglog,
    pearson,
)
from repro.analysis.correlation import log_pearson
from repro.analysis.fitting import histogram_density
from repro.analysis.stats import geometric_mean
from repro.errors import InsufficientDataError


class TestBoxplotStats:
    def test_five_numbers(self):
        box = boxplot_stats([1, 2, 3, 4, 5])
        assert box.minimum == 1
        assert box.median == 3
        assert box.maximum == 5
        assert box.mean == 3
        assert box.n == 5

    def test_quartiles(self):
        box = boxplot_stats(list(range(101)))
        assert box.q1 == 25
        assert box.q3 == 75
        assert box.iqr == 50

    def test_single_value(self):
        box = boxplot_stats([7.0])
        assert box.median == 7.0
        assert box.iqr == 0.0

    def test_empty_raises(self):
        with pytest.raises(InsufficientDataError):
            boxplot_stats([])

    def test_describe_extends_box(self):
        summary = describe([1.0, 2.0, 3.0, 100.0])
        assert summary["p99"] >= summary["p95"] >= summary["median"]
        assert summary["std"] > 0

    def test_geometric_mean(self):
        assert geometric_mean([1, 10, 100]) == pytest.approx(10.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(InsufficientDataError):
            geometric_mean([1.0, 0.0])


class TestLinearFit:
    def test_exact_line(self):
        fit = fit_linear([0, 1, 2, 3], [1, 3, 5, 7])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_line(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 10, 200)
        y = 3 * x - 2 + rng.normal(0, 0.5, 200)
        fit = fit_linear(x, y)
        assert fit.slope == pytest.approx(3.0, abs=0.1)
        assert fit.intercept == pytest.approx(-2.0, abs=0.3)
        assert fit.r_squared > 0.95
        assert fit.slope_stderr > 0

    def test_predict(self):
        fit = fit_linear([0, 1], [0, 2])
        assert fit.predict(3.0) == pytest.approx(6.0)

    def test_too_few_points(self):
        with pytest.raises(InsufficientDataError):
            fit_linear([1], [1])

    def test_constant_x(self):
        with pytest.raises(InsufficientDataError):
            fit_linear([2, 2, 2], [1, 2, 3])

    def test_length_mismatch(self):
        with pytest.raises(InsufficientDataError):
            fit_linear([1, 2], [1])


class TestLogLogFit:
    def test_power_law_recovered(self):
        x = np.array([1e2, 1e3, 1e4, 1e5])
        y = 5.0 * x ** -0.5
        fit = fit_loglog(x, y)
        assert fit.slope == pytest.approx(-0.5, abs=1e-9)

    def test_nonpositive_points_excluded(self):
        fit = fit_loglog([1, 10, 100, -5], [1, 10, 100, 3])
        assert fit.n == 3

    def test_all_nonpositive_raises(self):
        with pytest.raises(InsufficientDataError):
            fit_loglog([-1, -2], [1, 2])


class TestPearson:
    def test_perfect_correlation(self):
        result = pearson([1, 2, 3, 4], [2, 4, 6, 8])
        assert result.r == pytest.approx(1.0)
        assert result.p_value < 0.01

    def test_anticorrelation(self):
        result = pearson([1, 2, 3, 4], [8, 6, 4, 2])
        assert result.r == pytest.approx(-1.0)

    def test_significance_helper(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=500)
        y = x + rng.normal(scale=0.3, size=500)
        result = pearson(x, y)
        assert result.significant(0.01)

    def test_independent_data_not_significant(self):
        rng = np.random.default_rng(2)
        result = pearson(rng.normal(size=50), rng.normal(size=50))
        assert abs(result.r) < 0.4

    def test_constant_input_raises(self):
        with pytest.raises(InsufficientDataError):
            pearson([1, 1, 1], [1, 2, 3])

    def test_log_pearson_filters_nonpositive(self):
        result = log_pearson([1, 10, 100, -1], [2, 20, 200, 5])
        assert result.n == 3
        assert result.r == pytest.approx(1.0)


class TestFits:
    def test_exponential_fit_recovers_scale(self):
        rng = np.random.default_rng(3)
        data = rng.exponential(5.0, size=3000)
        fit = fit_exponential(data)
        assert fit.scale == pytest.approx(5.0, rel=0.1)
        assert fit.ks_statistic < 0.05
        assert fit.cdf(10.0) == pytest.approx(
            1 - np.exp(-10 / fit.scale), rel=1e-6)

    def test_exponential_pdf_integrates_to_one(self):
        fit = fit_exponential([1.0, 2.0, 3.0])
        x = np.linspace(0, 100, 20000)
        integral = np.trapezoid(fit.pdf(x), x)
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_exponweibull_fit(self):
        from scipy import stats as sstats
        rng = np.random.default_rng(4)
        data = sstats.exponweib.rvs(1.3, 1.5, scale=0.8, size=2000,
                                    random_state=rng)
        fit = fit_exponweibull(data)
        assert fit.mean == pytest.approx(float(np.mean(data)), rel=0.1)
        assert fit.ks_statistic < 0.05

    def test_exponweibull_trims_outliers(self):
        data = [0.5] * 20 + [14280.0]
        fit = fit_exponweibull(data, trim_above=600.0)
        assert fit.n == 20

    def test_exponweibull_too_few_values(self):
        with pytest.raises(InsufficientDataError):
            fit_exponweibull([1.0, 2.0])

    def test_histogram_density(self):
        centers, densities = histogram_density([1, 2, 3, 4, 5], bins=5)
        assert len(centers) == len(densities) == 5
        widths = centers[1] - centers[0]
        assert np.sum(densities) * widths == pytest.approx(1.0)
