"""Tests for unit and quantity coercions."""

from datetime import date

import pytest

from repro.errors import FieldCoercionError
from repro import units


class TestParseNumber:
    def test_plain(self):
        assert units.parse_number("42") == 42.0

    def test_decimal(self):
        assert units.parse_number("3.14") == pytest.approx(3.14)

    def test_thousands_separators(self):
        assert units.parse_number("1,116,605 miles") == 1116605.0

    def test_scientific(self):
        assert units.parse_number("2e-6") == pytest.approx(2e-6)

    def test_embedded_in_text(self):
        assert units.parse_number("drove 123.4 miles") == pytest.approx(
            123.4)

    def test_no_number_raises(self):
        with pytest.raises(FieldCoercionError):
            units.parse_number("no digits here")


class TestParseMiles:
    def test_miles_passthrough(self):
        assert units.parse_miles("100 miles") == 100.0

    def test_km_converted(self):
        assert units.parse_miles("100 km") == pytest.approx(62.1371)

    def test_kilometres_spelled_out(self):
        assert units.parse_miles("10 kilometres") == pytest.approx(
            6.21371)


class TestParseMph:
    def test_mph(self):
        assert units.parse_mph("25 MPH") == 25.0

    def test_kph_converted(self):
        assert units.parse_mph("40 km/h") == pytest.approx(
            40 * 0.621371)


class TestParseDuration:
    def test_seconds(self):
        assert units.parse_duration_seconds("0.8 sec") == pytest.approx(
            0.8)

    def test_bare_s(self):
        assert units.parse_duration_seconds("1.2 s") == pytest.approx(1.2)

    def test_minutes(self):
        assert units.parse_duration_seconds("2 min") == 120.0

    def test_hours(self):
        assert units.parse_duration_seconds("4 hr") == 14400.0

    def test_milliseconds(self):
        assert units.parse_duration_seconds("500 ms") == pytest.approx(
            0.5)

    def test_range_takes_upper_bound(self):
        # Paper convention: ranges resolve to their upper bound.
        assert units.parse_duration_seconds("0.5-1.0 s") == pytest.approx(
            1.0)

    def test_less_than_phrase(self):
        assert units.parse_duration_seconds(
            "less than 1 second") == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(FieldCoercionError):
            units.parse_duration_seconds("   ")

    def test_no_number_raises(self):
        with pytest.raises(FieldCoercionError):
            units.parse_duration_seconds("soon")


class TestParseDate:
    @pytest.mark.parametrize("text,expected", [
        ("1/4/16", date(2016, 1, 4)),
        ("11/12/14", date(2014, 11, 12)),
        ("03/14/2015", date(2015, 3, 14)),
        ("2016-08-14", date(2016, 8, 14)),
        ("May-16", date(2016, 5, 1)),
    ])
    def test_formats(self, text, expected):
        assert units.parse_date(text) == expected

    def test_unknown_format_raises(self):
        with pytest.raises(FieldCoercionError):
            units.parse_date("14th of March")


class TestParseTimeOfDay:
    @pytest.mark.parametrize("text,expected", [
        ("1:25 PM", (13, 25, 0)),
        ("18:24:03", (18, 24, 3)),
        ("09:16", (9, 16, 0)),
        ("12:00 AM", (0, 0, 0)),
    ])
    def test_formats(self, text, expected):
        assert units.parse_time_of_day(text) == expected

    def test_bad_time_raises(self):
        with pytest.raises(FieldCoercionError):
            units.parse_time_of_day("around noon")


class TestMonths:
    def test_month_key(self):
        assert units.month_key(date(2016, 5, 7)) == "2016-05"

    def test_months_between_inclusive(self):
        keys = units.months_between(date(2014, 11, 1), date(2015, 2, 28))
        assert keys == ["2014-11", "2014-12", "2015-01", "2015-02"]

    def test_months_between_single_month(self):
        assert units.months_between(
            date(2015, 6, 1), date(2015, 6, 30)) == ["2015-06"]

    def test_months_between_reversed_raises(self):
        with pytest.raises(FieldCoercionError):
            units.months_between(date(2016, 1, 1), date(2015, 1, 1))
