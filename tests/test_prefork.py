"""Tests for the pre-fork multi-process front end.

Covers the generation-file swap channel, worker metrics aggregation,
and the :class:`~repro.serving.PreforkServer` acceptance contracts:
byte-identical responses to the single-process monolithic server,
swap-under-load with every response from exactly one generation,
``/metrics`` aggregating all workers, crash-respawn, and graceful
shutdown.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import load_database
from repro.obs import MetricsRegistry
from repro.obs.metrics import SERVING_WORKER_UP
from repro.pipeline.checkpoint import canonical_json
from repro.query import Query, QueryEngine, QueryServer
from repro.serving import (
    GenerationFile,
    GenerationWatcher,
    PreforkServer,
    aggregate_metrics,
)
from repro.serving.worker import flush_metrics

PROCESSES = 2
FAST = dict(poll_interval_s=0.05, flush_interval_s=0.1,
            drain_timeout_s=3.0)


@pytest.fixture(scope="module")
def db_file(small_db, tmp_path_factory):
    path = tmp_path_factory.mktemp("serving") / "db.json"
    small_db.save(path)
    return path


@pytest.fixture(scope="module")
def other_db_file(db, tmp_path_factory):
    path = tmp_path_factory.mktemp("serving") / "other.json"
    db.save(path)
    return path


@pytest.fixture(scope="module")
def prefork(db_file):
    with PreforkServer(db_file, port=0, processes=PROCESSES,
                       index_backend="sharded", shards=3,
                       **FAST) as server:
        assert server.wait_ready(60)
        yield server


def _get(url, path):
    with urllib.request.urlopen(url + path, timeout=10) as res:
        return res.status, json.loads(res.read())


class TestGenerationFile:
    def test_publish_and_read(self, tmp_path):
        file = GenerationFile(tmp_path / "generation.json")
        assert file.read() is None
        first = file.publish("/data/db-1.json")
        assert first.generation == 1
        second = file.publish("/data/db-2.json")
        assert second.generation == 2
        current = file.read()
        assert current.generation == 2
        assert current.path == "/data/db-2.json"

    def test_malformed_reads_none(self, tmp_path):
        target = tmp_path / "generation.json"
        target.write_text("{torn", encoding="utf-8")
        assert GenerationFile(target).read() is None

    def test_watcher_fires_once_per_generation(self, tmp_path):
        file = GenerationFile(tmp_path / "generation.json")
        file.publish("/data/db-1.json")
        seen = []
        watcher = GenerationWatcher(file, seen.append,
                                    start_generation=1)
        assert watcher.poll_once() is False  # already at gen 1
        file.publish("/data/db-2.json")
        assert watcher.poll_once() is True
        assert watcher.poll_once() is False  # no re-fire
        assert [g.generation for g in seen] == [2]

    def test_watcher_survives_callback_errors(self, tmp_path):
        file = GenerationFile(tmp_path / "generation.json")
        file.publish("/data/db-1.json")

        def explode(generation):
            raise RuntimeError("swap failed")

        watcher = GenerationWatcher(file, explode)
        assert watcher.poll_once() is True
        assert "swap failed" in watcher.last_error
        file.publish("/data/db-2.json")
        assert watcher.poll_once() is True  # still alive


class TestMetricsAggregation:
    def test_sibling_dumps_merge_additively(self, tmp_path):
        for worker_id, count in ((0, 3), (1, 4)):
            registry = MetricsRegistry()
            counter = registry.counter("repro_test_hits_total",
                                       "test", ("route",))
            counter.labels("/v1/query").inc(count)
            registry.gauge(SERVING_WORKER_UP, "up", ("worker",)
                           ).labels(str(worker_id)).set(1)
            flush_metrics(registry, tmp_path, worker_id)
        live = MetricsRegistry()
        live.counter("repro_test_hits_total", "test",
                     ("route",)).labels("/v1/query").inc(5)
        live.gauge(SERVING_WORKER_UP, "up", ("worker",)
                   ).labels("2").set(1)
        text = aggregate_metrics(live, tmp_path, own_worker_id=2)
        assert 'repro_test_hits_total{route="/v1/query"} 12' in text
        for worker in ("0", "1", "2"):
            assert (f'repro_serving_worker_up{{worker="{worker}"}} 1'
                    in text)

    def test_own_stale_dump_not_double_counted(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("repro_test_hits_total", "t").inc(7)
        flush_metrics(registry, tmp_path, 0)  # stale self dump
        registry.get("repro_test_hits_total").inc(1)  # now 8 live
        text = aggregate_metrics(registry, tmp_path, own_worker_id=0)
        assert "repro_test_hits_total 8" in text

    def test_torn_dump_skipped(self, tmp_path):
        (tmp_path / "worker-9.pkl").write_bytes(b"\x80garbage")
        live = MetricsRegistry()
        live.counter("repro_test_hits_total", "t").inc(2)
        text = aggregate_metrics(live, tmp_path, own_worker_id=0)
        assert "repro_test_hits_total 2" in text


class TestPreforkServing:
    def test_all_workers_up_and_ready(self, prefork):
        pids = prefork.worker_pids()
        assert len(pids) == PROCESSES
        assert all(pid is not None for pid in pids)
        status, body = _get(prefork.url, "/v1/healthz")
        assert status == 200 and body["status"] == "ok"

    def test_byte_identical_to_single_process(self, prefork,
                                              small_db):
        """Acceptance: sharded + pre-fork responses byte-identical
        to the single-process monolithic server for every route."""
        routes = [
            "/v1/healthz",
            "/v1/manufacturers",
            "/v1/manufacturers?limit=2",
            "/v1/query?metric=dpm&group_by=manufacturer",
            "/v1/query?metric=count&group_by=month",
            "/v1/query?metric=miles",
            "/v1/metrics/dpm",
            "/v1/metrics/apm",
            "/v1/metrics/dpa",
            "/query?metric=dpm",  # legacy alias
        ]
        with QueryServer(small_db, port=0,
                         registry=MetricsRegistry()) as single:
            for path in routes:
                _, expected = _get(single.url, path)
                for _ in range(PROCESSES + 1):  # hit every worker
                    _, actual = _get(prefork.url, path)
                    for volatile in ("elapsed_ms", "cached"):
                        expected.pop(volatile, None)
                        actual.pop(volatile, None)
                    assert (canonical_json(actual)
                            == canonical_json(expected)), path

    def test_metrics_aggregates_all_workers(self, prefork):
        # Spread some traffic, then give flushers one interval.
        for _ in range(20):
            _get(prefork.url, "/v1/query?metric=count")
        time.sleep(0.4)
        text = prefork.scrape_metrics()
        for worker in range(PROCESSES):
            assert (f'repro_serving_worker_up{{worker="{worker}"}} 1'
                    in text), text[:500]
        assert "repro_http_requests_total" in text

    def test_error_envelope_through_prefork(self, prefork):
        try:
            _get(prefork.url, "/v1/query?metric=frobnicate")
            raise AssertionError("unexpectedly succeeded")
        except urllib.error.HTTPError as exc:
            body = json.loads(exc.read())
            assert exc.code == 400
            assert body["error"]["code"] == "invalid_query"


class TestSwapUnderLoad:
    """Acceptance: hot swap across the worker fleet while clients
    hammer it — every response from exactly one known generation."""

    QUERIES = [
        Query(metric="dpm"),
        Query(metric="count", group_by="manufacturer"),
        Query(metric="miles", group_by="month"),
    ]

    def test_multiprocess_swap_under_load(self, small_db, db,
                                          db_file, other_db_file):
        expected = {}
        for database in (small_db, db):
            serial = QueryEngine(database)
            expected[database.fingerprint()] = {
                q.canonical(): canonical_json(serial.execute(q).value)
                for q in self.QUERIES}
        failures: list[str] = []
        stop = threading.Event()

        with PreforkServer(db_file, port=0, processes=PROCESSES,
                           **FAST) as server:
            assert server.wait_ready(60)

            def client(offset: int) -> None:
                rounds = 0
                while not stop.is_set() and rounds < 150:
                    rounds += 1
                    query = self.QUERIES[(offset + rounds)
                                         % len(self.QUERIES)]
                    request = urllib.request.Request(
                        server.url + "/v1/query",
                        data=json.dumps(
                            query.to_dict()).encode("utf-8"),
                        headers={"Content-Type":
                                 "application/json"},
                        method="POST")
                    try:
                        with urllib.request.urlopen(
                                request, timeout=10) as res:
                            body = json.loads(res.read())
                    except Exception as exc:
                        failures.append(f"client {offset}: {exc!r}")
                        continue
                    known = expected.get(body["fingerprint"])
                    if known is None:
                        failures.append("unknown fingerprint")
                    elif (canonical_json(body["result"])
                          != known[query.canonical()]):
                        failures.append(
                            f"{query.metric}: blended generations")

            threads = [threading.Thread(target=client, args=(n,))
                       for n in range(4)]
            for thread in threads:
                thread.start()
            for flip in range(6):
                server.publish(other_db_file if flip % 2 == 0
                               else db_file)
                time.sleep(0.15)
            stop.set()
            for thread in threads:
                thread.join()
        assert not failures, failures[:5]

    def test_workers_converge_after_swap(self, prefork, db,
                                         other_db_file, db_file):
        generation = prefork.publish(other_db_file)
        assert generation >= 2
        target = db.fingerprint()
        deadline = time.monotonic() + 15.0
        converged = False
        while time.monotonic() < deadline and not converged:
            fingerprints = {
                _get(prefork.url,
                     "/v1/query?metric=count")[1]["fingerprint"]
                for _ in range(PROCESSES * 3)}
            converged = fingerprints == {target}
            time.sleep(0.05)
        assert converged
        # Swap back so sibling tests see the original database.
        prefork.publish(db_file)
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            fingerprints = {
                _get(prefork.url,
                     "/v1/query?metric=count")[1]["fingerprint"]
                for _ in range(PROCESSES * 3)}
            if fingerprints != {target}:
                break
            time.sleep(0.05)


class TestSupervision:
    def test_crash_respawn(self, db_file):
        with PreforkServer(db_file, port=0, processes=PROCESSES,
                           **FAST) as server:
            assert server.wait_ready(60)
            victim = server.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 20.0
            respawned = False
            while time.monotonic() < deadline and not respawned:
                pids = server.worker_pids()
                respawned = (all(pid is not None for pid in pids)
                             and pids[0] != victim)
                time.sleep(0.05)
            assert respawned
            assert server.restarts >= 1
            assert server.wait_ready(20)
            status, _ = _get(server.url, "/v1/query?metric=count")
            assert status == 200

    def test_graceful_shutdown_leaves_no_workers(self, db_file):
        server = PreforkServer(db_file, port=0, processes=PROCESSES,
                               **FAST)
        server.start()
        assert server.wait_ready(60)
        pids = [pid for pid in server.worker_pids()
                if pid is not None]
        server.shutdown()
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
        # The port is free again: a fresh server can claim it.
        with QueryServer(load_database(db_file), host=server.host,
                         port=server.port) as reclaimed:
            assert _get(reclaimed.url, "/v1/healthz")[0] == 200
