"""Tests for corpus disk I/O."""

import pytest

from repro.errors import SynthesisError
from repro.synth import generate_corpus
from repro.synth.io import read_corpus, write_corpus


@pytest.fixture(scope="module")
def small_disk_corpus(tmp_path_factory):
    corpus = generate_corpus(seed=3, manufacturers=["Nissan", "Tesla"])
    root = tmp_path_factory.mktemp("corpus")
    write_corpus(corpus, root)
    return corpus, root


def test_roundtrip_preserves_documents(small_disk_corpus):
    corpus, root = small_disk_corpus
    loaded = read_corpus(root)
    assert len(loaded.documents) == len(corpus.documents)
    for original, restored in zip(corpus.documents, loaded.documents):
        assert restored.document_id == original.document_id
        assert restored.manufacturer == original.manufacturer
        assert restored.kind == original.kind
        assert restored.lines == original.lines


def test_roundtrip_preserves_truth(small_disk_corpus):
    corpus, root = small_disk_corpus
    loaded = read_corpus(root)
    assert len(loaded.truth_disengagements()) == \
        len(corpus.truth_disengagements())
    original = corpus.truth_disengagements()[0]
    restored = loaded.truth_disengagements()[0]
    assert restored.truth_tag == original.truth_tag
    assert restored.description == original.description
    assert len(loaded.truth_accidents()) == \
        len(corpus.truth_accidents())
    assert sum(m.miles for m in loaded.truth_mileage()) == \
        pytest.approx(sum(m.miles for m in corpus.truth_mileage()))


def test_read_without_truth(small_disk_corpus):
    _, root = small_disk_corpus
    loaded = read_corpus(root, with_truth=False)
    assert loaded.truth_disengagements() == []
    assert loaded.documents  # text still available


def test_processing_a_disk_corpus(small_disk_corpus):
    from repro.pipeline import PipelineConfig, process_corpus

    corpus, root = small_disk_corpus
    loaded = read_corpus(root)
    result = process_corpus(loaded, PipelineConfig(
        seed=3, ocr_enabled=False))
    assert len(result.database.disengagements) == \
        len(corpus.truth_disengagements())


def test_missing_manifest_raises(tmp_path):
    with pytest.raises(SynthesisError):
        read_corpus(tmp_path)


def test_write_creates_directories(tmp_path):
    corpus = generate_corpus(seed=4, manufacturers=["Ford"])
    root = write_corpus(corpus, tmp_path / "deep" / "nested")
    assert (root / "manifest.json").exists()
    assert (root / "documents").is_dir()
