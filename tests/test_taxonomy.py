"""Tests for the fault taxonomy (Table III)."""

import pytest

from repro.taxonomy import (
    ML_SUBCATEGORY,
    TAG_CATEGORY,
    TAG_DEFINITIONS,
    FailureCategory,
    FaultTag,
    MlSubcategory,
    category_of,
    ml_subcategory_of,
    tags_in_category,
)


def test_every_tag_has_a_category():
    for tag in FaultTag:
        assert tag in TAG_CATEGORY


def test_every_tag_has_a_definition():
    for tag in FaultTag:
        assert TAG_DEFINITIONS[tag]


def test_unknown_tag_maps_to_unknown_category():
    assert category_of(FaultTag.UNKNOWN) is FailureCategory.UNKNOWN


def test_av_controller_splits_by_situation():
    # Table III: "System" when unresponsive, "ML/Design" on wrong
    # decisions.
    assert category_of(
        FaultTag.AV_CONTROLLER_UNRESPONSIVE) is FailureCategory.SYSTEM
    assert category_of(
        FaultTag.AV_CONTROLLER_DECISION) is FailureCategory.ML_DESIGN


def test_av_controller_tags_share_display_name():
    assert (FaultTag.AV_CONTROLLER_UNRESPONSIVE.display_name
            == FaultTag.AV_CONTROLLER_DECISION.display_name
            == "AV Controller")


def test_environment_is_perception_side():
    # Footnote 5: external fault sources count as perception-related.
    assert category_of(FaultTag.ENVIRONMENT) is FailureCategory.ML_DESIGN
    assert ml_subcategory_of(
        FaultTag.ENVIRONMENT) is MlSubcategory.PERCEPTION


def test_ml_subcategories_only_cover_ml_tags():
    for tag in ML_SUBCATEGORY:
        assert TAG_CATEGORY[tag] is FailureCategory.ML_DESIGN


def test_every_ml_tag_has_a_subcategory():
    for tag in tags_in_category(FailureCategory.ML_DESIGN):
        assert ml_subcategory_of(tag) is not None


def test_non_ml_tags_have_no_subcategory():
    assert ml_subcategory_of(FaultTag.SOFTWARE) is None
    assert ml_subcategory_of(FaultTag.UNKNOWN) is None


@pytest.mark.parametrize("tag,category", [
    (FaultTag.SOFTWARE, FailureCategory.SYSTEM),
    (FaultTag.HANG_CRASH, FailureCategory.SYSTEM),
    (FaultTag.SENSOR, FailureCategory.SYSTEM),
    (FaultTag.NETWORK, FailureCategory.SYSTEM),
    (FaultTag.COMPUTER_SYSTEM, FailureCategory.SYSTEM),
    (FaultTag.PLANNER, FailureCategory.ML_DESIGN),
    (FaultTag.RECOGNITION_SYSTEM, FailureCategory.ML_DESIGN),
    (FaultTag.DESIGN_BUG, FailureCategory.ML_DESIGN),
    (FaultTag.INCORRECT_BEHAVIOR_PREDICTION, FailureCategory.ML_DESIGN),
])
def test_table3_category_assignments(tag, category):
    assert category_of(tag) is category


def test_tags_in_category_partitions_tag_set():
    union = set()
    for category in FailureCategory:
        tags = set(tags_in_category(category))
        assert not union & tags
        union |= tags
    assert union == set(FaultTag)


def test_display_name_matches_value_for_plain_tags():
    assert FaultTag.SOFTWARE.display_name == "Software"
    assert FaultTag.UNKNOWN.display_name == "Unknown-T"
