"""Focused edge-case tests across modules.

Covers the error paths and boundary conditions the main suites don't
reach: renderer field requirements, OCR result accessors, quantile
banding, record helpers, and chart/axis boundaries.
"""

from datetime import date

import pytest

from repro.errors import (
    AnalysisError,
    InsufficientDataError,
    SynthesisError,
)
from repro.parsing.records import (
    AccidentRecord,
    DisengagementRecord,
    MonthlyMileage,
    ParsedReport,
)
from repro.taxonomy import Modality


class TestRecordHelpers:
    def test_disengagement_year(self):
        record = DisengagementRecord(
            manufacturer="X", month="2015-11", description="d")
        assert record.year == 2015

    def test_accident_year_from_date_or_month(self):
        with_date = AccidentRecord(
            manufacturer="X", event_date=date(2016, 3, 4))
        assert with_date.year == 2016
        with_month = AccidentRecord(manufacturer="X", month="2015-07")
        assert with_month.year == 2015
        neither = AccidentRecord(manufacturer="X")
        assert neither.year is None

    def test_relative_speed_requires_both(self):
        record = AccidentRecord(manufacturer="X", av_speed_mph=5.0)
        assert record.relative_speed_mph is None

    def test_parsed_report_total_miles(self):
        report = ParsedReport(manufacturer="X", document_id="d")
        report.mileage.append(MonthlyMileage("X", "2015-01", 10.0))
        report.mileage.append(MonthlyMileage("X", "2015-02", 5.5))
        assert report.total_miles == pytest.approx(15.5)

    def test_mileage_year(self):
        assert MonthlyMileage("X", "2016-02", 1.0).year == 2016


class TestRendererRequirements:
    def test_missing_required_field_raises(self):
        from repro.synth.reports import _render_nissan

        record = DisengagementRecord(
            manufacturer="Nissan", month="2015-01", description="d",
            modality=Modality.MANUAL)  # no event_date/time/vehicle
        with pytest.raises(SynthesisError):
            _render_nissan(record)

    def test_generic_renderer_accepts_minimal_record(self):
        from repro.synth.reports import _render_generic

        record = DisengagementRecord(
            manufacturer="Ford", month="2016-05", description="d")
        line = _render_generic(record)
        assert "2016-05" in line and "d" in line


class TestOcrResultAccessors:
    def test_page_confidence_of_empty_page(self):
        from repro.ocr.document import OcrResult

        result = OcrResult(document_id="d")
        assert result.page_confidence(0) == 1.0
        assert result.mean_confidence == 1.0

    def test_texts_order_preserved(self):
        from repro.ocr.document import OcrLine, OcrResult

        result = OcrResult(document_id="d", lines=[
            OcrLine("a", 0.9, 0), OcrLine("b", 0.8, 0)])
        assert result.texts() == ["a", "b"]


class TestQuantileBands:
    def test_quantile_tags_split(self, db):
        from repro.analysis.dpm import dpm_quantile_tags

        bands = dpm_quantile_tags(db, "Mercedes-Benz")
        assert set(bands) == {"lower", "upper"}
        assert len(bands["upper"]) > 0

    def test_quantile_tags_needs_months(self, small_db):
        from repro.analysis.dpm import dpm_quantile_tags

        # Volkswagen in the small corpus has months, Nissan too; a
        # fabricated manufacturer has none.
        with pytest.raises(InsufficientDataError):
            dpm_quantile_tags(small_db, "Nonexistent Motors")


class TestChartBoundaries:
    def test_box_strip_rejects_inverted_axis(self):
        from repro.analysis.stats import boxplot_stats
        from repro.reporting.ascii_charts import box_strip

        box = boxplot_stats([1.0, 2.0])
        with pytest.raises(AnalysisError):
            box_strip("m", box, 5.0, 1.0)

    def test_scatter_flat_data(self):
        from repro.reporting.ascii_charts import scatter

        plot = scatter([1, 2, 3], [5, 5, 5])
        assert "n=3" in plot

    def test_bar_chart_value_format(self):
        from repro.reporting.ascii_charts import bar_chart

        chart = bar_chart({"a": 0.5}, value_format="{:.0%}")
        assert "50%" in chart


class TestFigureRenderLimits:
    def test_series_head_truncation(self):
        from repro.reporting.figures import FigureData, Series

        figure = FigureData(
            "F", "t", series=[Series("s", list(range(20)),
                                     list(range(20)))])
        text = figure.render(max_points=3)
        assert "..." in text

    def test_empty_series_renders(self):
        from repro.reporting.figures import FigureData, Series

        figure = FigureData("F", "t", series=[Series("s", [], [])])
        assert "[series]" in figure.render()


class TestUnitsBoundaries:
    def test_parse_time_of_day_compact_am_pm(self):
        from repro.units import parse_time_of_day

        assert parse_time_of_day("9AM") == (9, 0, 0)
        assert parse_time_of_day("12PM") == (12, 0, 0)

    def test_duration_minutes_word(self):
        from repro.units import parse_duration_seconds

        assert parse_duration_seconds("3 minutes") == 180.0

    def test_month_key_boundaries(self):
        from repro.units import month_key

        assert month_key(date(2014, 1, 31)) == "2014-01"
        assert month_key(date(2016, 12, 1)) == "2016-12"


class TestFallbackQueueAccounting:
    def test_threshold_edge(self):
        from repro.ocr.document import OcrLine, OcrResult
        from repro.ocr.fallback import ManualTranscriptionQueue

        queue = ManualTranscriptionQueue(threshold=0.75)
        result = OcrResult(document_id="d", lines=[
            OcrLine("x", 0.75, 0)])
        # Exactly at threshold: no fallback (strict less-than).
        assert not queue.needs_fallback(result, 0)


class TestStoreEdgeCases:
    def test_empty_database(self):
        from repro.pipeline import FailureDatabase

        db = FailureDatabase()
        assert db.manufacturers() == []
        assert db.total_miles == 0.0
        assert db.reaction_times() == []
        assert db.monthly_miles("X") == {}

    def test_vehicleless_records_excluded_from_vehicle_views(self):
        from repro.pipeline import FailureDatabase

        db = FailureDatabase(disengagements=[DisengagementRecord(
            manufacturer="X", month="2015-01", description="d")])
        assert db.vehicle_disengagements("X") == {}
