"""Tests for ASCII charts, the study report, and NLP refinement."""

import pytest

from repro.analysis.stats import boxplot_stats
from repro.errors import AnalysisError
from repro.nlp import FailureDictionary, VotingTagger, evaluate_tagger
from repro.nlp.refinement import refine_dictionary, truth_oracle
from repro.reporting.ascii_charts import (
    bar_chart,
    box_panel,
    box_strip,
    scatter,
    sparkline,
)
from repro.reporting.summary import render_study_report


class TestBarChart:
    def test_basic_render(self):
        chart = bar_chart({"a": 1.0, "bb": 2.0})
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("█") > lines[0].count("█")

    def test_zero_values(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "█" not in chart

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            bar_chart({})

    def test_narrow_width_rejected(self):
        with pytest.raises(AnalysisError):
            bar_chart({"a": 1.0}, width=2)


class TestBoxPanel:
    def test_strip_markers(self):
        box = boxplot_stats([1, 2, 3, 4, 5])
        strip = box_strip("m", box, 0.0, 6.0)
        assert "[" in strip and "]" in strip and "|" in strip

    def test_panel_renders_all_rows(self):
        boxes = {"a": boxplot_stats([1, 2, 3]),
                 "b": boxplot_stats([10, 20, 30])}
        panel = box_panel(boxes)
        assert len(panel.splitlines()) == 3  # 2 rows + axis

    def test_log_panel(self):
        boxes = {"x": boxplot_stats([0.001, 0.01, 0.1]),
                 "y": boxplot_stats([1.0, 10.0, 100.0])}
        panel = box_panel(boxes, log=True)
        assert "x" in panel and "y" in panel

    def test_log_rejects_nonpositive(self):
        with pytest.raises(AnalysisError):
            box_strip("m", boxplot_stats([0.0, 1.0]), 0.0, 1.0,
                      log=True)

    def test_empty_panel_raises(self):
        with pytest.raises(AnalysisError):
            box_panel({})


class TestScatter:
    def test_frame_and_points(self):
        plot = scatter([1, 2, 3], [3, 2, 1], width=20, height=6)
        lines = plot.splitlines()
        assert lines[0].startswith("+")
        assert any("•" in line for line in lines)
        assert "n=3" in lines[-1]

    def test_loglog_filters_nonpositive(self):
        plot = scatter([1, 10, -5], [1, 100, 7], loglog=True)
        assert "n=2" in plot

    def test_too_few_points(self):
        with pytest.raises(AnalysisError):
            scatter([1], [1])

    def test_mismatched_lengths(self):
        with pytest.raises(AnalysisError):
            scatter([1, 2], [1])


class TestSparkline:
    def test_monotone(self):
        line = sparkline([1, 2, 3, 4])
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            sparkline([])


class TestStudyReport:
    def test_full_report_renders(self, db):
        report = render_study_report(db)
        for token in ("# AV Failure Study Report", "## Headlines",
                      "Table VI", "disengagements per mile",
                      "## Burn-in", "## Driver alertness"):
            assert token.lower() in report.lower(), token

    def test_report_without_charts(self, db):
        report = render_study_report(db, include_charts=False)
        assert "•" not in report

    def test_report_over_partial_database(self, small_db):
        report = render_study_report(small_db)
        assert "Nissan" in report


class TestRefinement:
    def test_refinement_improves_seed_dictionary(self, db):
        records = [r for r in db.disengagements
                   if r.truth_tag is not None][:1500]
        dictionary = FailureDictionary.from_seeds()
        before = evaluate_tagger(
            VotingTagger(dictionary), records).tag_accuracy
        result = refine_dictionary(
            dictionary, records, oracle=truth_oracle,
            rounds=3, budget_per_round=60)
        after = evaluate_tagger(
            VotingTagger(result.dictionary), records).tag_accuracy
        assert after >= before
        assert result.total_labeled > 0
        assert any(r.phrases_added > 0 for r in result.rounds)

    def test_refinement_stops_when_nothing_to_add(self, db):
        records = [r for r in db.disengagements
                   if r.truth_tag is not None][:200]
        dictionary = FailureDictionary.build(
            [r.description for r in records])
        result = refine_dictionary(dictionary, records, rounds=5,
                                   budget_per_round=10)
        # Converges (stops early or adds nothing in later rounds).
        assert len(result.rounds) <= 5

    def test_oracle_declining_labels(self, db):
        records = [r for r in db.disengagements][:100]
        result = refine_dictionary(
            FailureDictionary.from_seeds(), records,
            oracle=lambda record: None, rounds=2)
        assert result.total_labeled == 0
