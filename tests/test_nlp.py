"""Tests for the NLP engine: tokenizer, dictionary, and taggers."""

import pytest

from repro.nlp import (
    FailureDictionary,
    FirstMatchTagger,
    Ontology,
    STOPWORDS,
    VotingTagger,
    evaluate_tagger,
    ngrams,
    normalize_tokens,
    phrase_candidates,
    sentences,
    tokenize,
)
from repro.nlp.dictionary import SEED_PHRASES, DictionaryEntry
from repro.parsing.records import DisengagementRecord
from repro.taxonomy import FailureCategory, FaultTag


class TestTokenize:
    def test_basic(self):
        assert tokenize("The AV didn't see the lead vehicle.") == [
            "the", "av", "didn't", "see", "the", "lead", "vehicle"]

    def test_numbers_kept(self):
        assert "316" in tokenize("form OL 316")

    def test_sentences(self):
        text = "Module froze. Driver disengaged! All safe."
        assert sentences(text) == [
            "Module froze", "Driver disengaged", "All safe"]


class TestNormalize:
    def test_stopwords_dropped(self):
        tokens = normalize_tokens(tokenize(
            "the driver safely disengaged and resumed manual control"))
        assert tokens == []

    def test_stemming_unifies_inflections(self):
        a = normalize_tokens(["disengagements"], drop_stopwords=False)
        b = normalize_tokens(["disengagement"], drop_stopwords=False)
        assert a == b

    def test_short_words_not_destroyed(self):
        assert normalize_tokens(["bus"], drop_stopwords=False) == ["bus"]

    def test_boilerplate_is_stopworded(self):
        for word in ("driver", "vehicle", "manual", "control"):
            assert word in STOPWORDS


class TestNgrams:
    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)

    def test_phrase_candidates_thresholds(self):
        documents = [["watchdog", "error"]] * 3 + [["other"]]
        counts = phrase_candidates(documents, min_count=3)
        assert counts[("watchdog", "error")] == 3
        assert ("other",) not in counts


class TestDictionary:
    def test_seed_dictionary_covers_all_taggable_tags(self):
        dictionary = FailureDictionary.from_seeds()
        tagged = {entry.tag for entry in dictionary.entries}
        expected = set(FaultTag) - {FaultTag.UNKNOWN}
        assert tagged == expected

    def test_match_finds_phrases(self):
        dictionary = FailureDictionary.from_seeds()
        tokens = normalize_tokens(tokenize(
            "Takeover-Request — watchdog error"))
        matches = dictionary.match(tokens)
        assert any(m.tag is FaultTag.HANG_CRASH for m in matches)

    def test_add_is_idempotent(self):
        dictionary = FailureDictionary.from_seeds()
        before = len(dictionary)
        entry = dictionary.entries[0]
        dictionary.add(DictionaryEntry(
            phrase=entry.phrase, tag=entry.tag, weight=1.0,
            source="seed"))
        assert len(dictionary) == before

    def test_build_learns_new_phrases(self, corpus):
        texts = [r.description
                 for r in corpus.truth_disengagements()][:2000]
        built = FailureDictionary.build(texts)
        seeds = FailureDictionary.from_seeds()
        assert len(built) > len(seeds)
        assert any(e.source == "learned" for e in built.entries)

    def test_boilerplate_not_learned(self, corpus):
        texts = [r.description for r in corpus.truth_disengagements()]
        built = FailureDictionary.build(texts)
        for entry in built.entries:
            # The universal tail must never become a tag phrase.
            assert "resumed" not in entry.phrase


class TestVotingTagger:
    @pytest.fixture(scope="class")
    def tagger(self):
        return VotingTagger(FailureDictionary.from_seeds())

    @pytest.mark.parametrize("text,tag", [
        ("Software module froze. Driver safely disengaged.",
         FaultTag.SOFTWARE),
        ("The AV didn't see the lead vehicle", FaultTag.RECOGNITION_SYSTEM),
        ("Disengage for a recklessly behaving road user",
         FaultTag.ENVIRONMENT),
        ("Takeover-Request — watchdog error", FaultTag.HANG_CRASH),
        ("LIDAR failed to localize in time", FaultTag.SENSOR),
        ("Data rate too high to be handled by the network",
         FaultTag.NETWORK),
        ("Processor overload on the compute platform",
         FaultTag.COMPUTER_SYSTEM),
        ("AV was not designed to handle an unprotected left turn",
         FaultTag.DESIGN_BUG),
        ("Incorrect behavior prediction of an adjacent vehicle",
         FaultTag.INCORRECT_BEHAVIOR_PREDICTION),
        ("Planner failed to anticipate the other driver's behavior",
         FaultTag.PLANNER),
    ])
    def test_table2_style_examples(self, tagger, text, tag):
        assert tagger.tag(text).tag is tag

    def test_unmatched_text_is_unknown(self, tagger):
        result = tagger.tag("Driver disengaged")
        assert result.tag is FaultTag.UNKNOWN
        assert result.category is FailureCategory.UNKNOWN
        assert not result.confident

    def test_result_carries_scores_and_matches(self, tagger):
        result = tagger.tag("Software module froze")
        assert result.scores[FaultTag.SOFTWARE] > 0
        assert result.matches

    def test_tie_break_is_deterministic(self, tagger):
        text = ("Software module froze — watchdog error — LIDAR "
                "failed to localize in time")
        results = {tagger.tag(text).tag for _ in range(5)}
        assert len(results) == 1


class TestFirstMatchTagger:
    def test_takes_first_phrase(self):
        tagger = FirstMatchTagger(FailureDictionary.from_seeds())
        # "watchdog" appears first; software phrase later.
        result = tagger.tag("watchdog error then software crash")
        assert result.tag is FaultTag.HANG_CRASH

    def test_unknown_on_no_match(self):
        tagger = FirstMatchTagger(FailureDictionary.from_seeds())
        assert tagger.tag("nothing here").tag is FaultTag.UNKNOWN


class TestEvaluation:
    def _records(self):
        return [
            DisengagementRecord(
                manufacturer="X", month="2015-01",
                description="Software module froze",
                truth_tag=FaultTag.SOFTWARE),
            DisengagementRecord(
                manufacturer="X", month="2015-01",
                description="watchdog error",
                truth_tag=FaultTag.HANG_CRASH),
            DisengagementRecord(
                manufacturer="X", month="2015-01",
                description="mysterious event",
                truth_tag=FaultTag.SOFTWARE),
        ]

    def test_report_counts(self):
        tagger = VotingTagger(FailureDictionary.from_seeds())
        report = evaluate_tagger(tagger, self._records())
        assert report.total == 3
        assert report.correct_tag == 2
        assert report.tag_accuracy == pytest.approx(2 / 3)

    def test_category_accuracy_at_least_tag_accuracy(self):
        tagger = VotingTagger(FailureDictionary.from_seeds())
        report = evaluate_tagger(tagger, self._records())
        assert report.category_accuracy >= report.tag_accuracy

    def test_precision_recall(self):
        tagger = VotingTagger(FailureDictionary.from_seeds())
        report = evaluate_tagger(tagger, self._records())
        assert report.recall(FaultTag.SOFTWARE) == pytest.approx(0.5)
        assert report.precision(FaultTag.SOFTWARE) == pytest.approx(1.0)
        assert 0 < report.f1(FaultTag.SOFTWARE) < 1

    def test_confusions_reported(self):
        tagger = VotingTagger(FailureDictionary.from_seeds())
        report = evaluate_tagger(tagger, self._records())
        confusions = dict(report.top_confusions())
        assert confusions[(FaultTag.SOFTWARE, FaultTag.UNKNOWN)] == 1

    def test_records_without_truth_skipped(self):
        tagger = VotingTagger(FailureDictionary.from_seeds())
        records = [DisengagementRecord(
            manufacturer="X", month="2015-01", description="abc")]
        assert evaluate_tagger(tagger, records).total == 0


class TestOntology:
    def test_validate_passes(self):
        Ontology().validate()

    def test_category_lookup(self):
        ontology = Ontology()
        assert ontology.category(
            FaultTag.SOFTWARE) is FailureCategory.SYSTEM

    def test_definitions_nonempty(self):
        ontology = Ontology()
        for tag in ontology.tags():
            assert ontology.definition(tag)

    def test_tags_in_category(self):
        ontology = Ontology()
        system_tags = ontology.tags_in(FailureCategory.SYSTEM)
        assert FaultTag.SOFTWARE in system_tags
        assert FaultTag.PLANNER not in system_tags


# ----------------------------------------------------------------------
# Batch-native tagging: tag_batch is provably the per-unit loop.
# ----------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.nlp.textcache import (  # noqa: E402
    TokenCache,
    cached_tokens,
    cached_tokens_batch,
)

#: Every word that appears in a seed phrase, plus filler — so random
#: narratives exercise matches, multi-phrase votes, ties, and misses.
_VOCAB = sorted({word
                 for phrases in SEED_PHRASES.values()
                 for phrase in phrases
                 for word in phrase.split()}
                | {"the", "a", "vehicle", "unexpectedly", "zzz"})

narratives = st.lists(
    st.lists(st.sampled_from(_VOCAB), min_size=0, max_size=12)
    .map(" ".join),
    min_size=0, max_size=20)


class TestBatchTagging:
    @pytest.fixture(scope="class")
    def dictionary(self):
        return FailureDictionary.from_seeds()

    @settings(max_examples=60, deadline=None)
    @given(texts=narratives)
    def test_voting_tag_batch_equals_per_unit_loop(self, dictionary,
                                                   texts):
        tagger = VotingTagger(dictionary)
        assert tagger.tag_batch(texts) == [tagger.tag(t)
                                           for t in texts]

    @settings(max_examples=60, deadline=None)
    @given(texts=narratives)
    def test_first_match_tag_batch_equals_per_unit_loop(
            self, dictionary, texts):
        tagger = FirstMatchTagger(dictionary)
        assert tagger.tag_batch(texts) == [tagger.tag(t)
                                           for t in texts]

    def test_empty_batch(self, dictionary):
        assert VotingTagger(dictionary).tag_batch([]) == []
        assert FirstMatchTagger(dictionary).tag_batch([]) == []

    def test_duplicates_share_results(self, dictionary):
        # Duplicate narratives resolve to the same cached token list,
        # so the batch memo hands back the very same TagResult.
        tagger = VotingTagger(dictionary)
        text = "sun glare blinded the forward camera"
        results = tagger.tag_batch([text, "debris on road", text])
        assert results[0] is results[2]
        assert results[0] == tagger.tag(text)

    def test_evaluation_uses_batch_path(self, dictionary):
        # evaluate_tagger prefers tag_batch when present; parity with
        # the per-unit loop keeps the report identical either way.
        records = [
            DisengagementRecord(
                manufacturer="X", month="2018-01", description=text,
                truth_tag=FaultTag.ENVIRONMENT)
            for text in ("sun glare ahead", "debris in lane",
                         "heavy rain on sensors")]
        tagger = VotingTagger(dictionary)
        report = evaluate_tagger(tagger, records)
        assert report.total == 3
        assert report.correct_tag == 3


class TestTokensBatch:
    @settings(max_examples=60, deadline=None)
    @given(texts=narratives)
    def test_batch_equals_per_text_calls(self, texts):
        assert cached_tokens_batch(texts) == [cached_tokens(t)
                                              for t in texts]

    def test_duplicates_return_same_list_object(self):
        cache = TokenCache(capacity=8)
        text = "lidar returns degraded by sun glare"
        first, second = cache.tokens_batch([text, text])
        assert first is second

    def test_hit_miss_accounting_matches_sequential(self):
        # First occurrence of an uncached text is a miss; later
        # duplicates in the same batch are hits — exactly as N
        # sequential tokens() calls would count.
        batch = ["alpha beta", "gamma delta", "alpha beta"]
        batched = TokenCache(capacity=8)
        batched.tokens_batch(batch)
        sequential = TokenCache(capacity=8)
        for text in batch:
            sequential.tokens(text)
        assert batched.stats() == sequential.stats()

    def test_empty_batch(self):
        assert TokenCache(capacity=4).tokens_batch([]) == []
