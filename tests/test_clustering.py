"""Tests for unsupervised narrative clustering."""

import pytest

from repro.errors import NlpError
from repro.nlp.clustering import (
    cluster_narratives,
    cluster_purity,
)


class TestClustering:
    def test_distinct_topics_separate(self):
        texts = (
            ["Software module froze on the logging daemon"] * 5
            + ["LIDAR failed to localize near the ramp"] * 5
        )
        result = cluster_narratives(texts, threshold=0.3)
        software_cluster = result.assignments[0]
        lidar_cluster = result.assignments[5]
        assert software_cluster != lidar_cluster
        # Each topic lands together.
        assert all(result.assignments[i] == software_cluster
                   for i in range(5))
        assert all(result.assignments[i] == lidar_cluster
                   for i in range(5, 10))

    def test_every_narrative_assigned(self):
        texts = ["alpha beta", "gamma delta", "alpha beta gamma"]
        result = cluster_narratives(texts)
        assert set(result.assignments) == {0, 1, 2}
        assert sum(c.size for c in result.clusters) == 3

    def test_empty_input_rejected(self):
        with pytest.raises(NlpError):
            cluster_narratives([])

    def test_bad_threshold_rejected(self):
        with pytest.raises(NlpError):
            cluster_narratives(["x"], threshold=0.0)

    def test_characteristic_phrases(self):
        texts = (["watchdog timer expired again today"] * 6
                 + ["pedestrian crossing missed by perception"] * 6)
        result = cluster_narratives(texts, threshold=0.3)
        cluster = result.cluster_of(0)
        phrases = result.characteristic_phrases(cluster)
        flattened = {token for phrase in phrases for token in phrase}
        assert "watchdog" in flattened

    def test_top_clusters_ordering(self):
        texts = ["same narrative text"] * 8 + ["a different one"] * 2
        result = cluster_narratives(texts, threshold=0.5)
        top = result.top_clusters(2)
        assert top[0].size >= top[1].size


class TestPurityOnCorpus:
    def test_clusters_align_with_truth_tags(self, db):
        records = [r for r in db.disengagements
                   if r.truth_tag is not None][:800]
        texts = [r.description for r in records]
        labels = [r.truth_tag for r in records]
        result = cluster_narratives(texts, threshold=0.35)
        purity = cluster_purity(result, labels)
        # Clusters found without labels largely agree with the
        # ground-truth tag structure.
        assert purity > 0.75

    def test_purity_validates_lengths(self):
        result = cluster_narratives(["a b c"])
        with pytest.raises(NlpError):
            cluster_purity(result, [])
