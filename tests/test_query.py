"""Tests for the query layer: index, cache, typed queries, engine.

The golden parity class is the acceptance contract of the subsystem:
every served result must be byte-identical (as canonical JSON) to the
corresponding direct :mod:`repro.analysis` computation on the same
database.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis.kernels import KERNELS
from repro.errors import QueryError
from repro.pipeline.checkpoint import canonical_json
from repro.pipeline.store import (
    FailureDatabase,
    group_by_manufacturer,
    manufacturer_names,
)
from repro.query import (
    DatabaseIndex,
    LruCache,
    Query,
    QueryEngine,
    accident_id,
    disengagement_id,
    to_jsonable,
)
from repro.taxonomy import FailureCategory, FaultTag, category_of


# ----------------------------------------------------------------------
# Shared grouping helpers / fingerprint (store.py satellites).
# ----------------------------------------------------------------------


class TestStoreHelpers:
    def test_manufacturer_names_spans_collections(self, small_db):
        names = manufacturer_names(
            small_db.disengagements, small_db.accidents,
            small_db.mileage)
        assert names == set(small_db.manufacturers())

    def test_group_by_manufacturer_matches_methods(self, small_db):
        assert (group_by_manufacturer(small_db.disengagements)
                == small_db.disengagements_by_manufacturer())
        assert (group_by_manufacturer(small_db.accidents)
                == small_db.accidents_by_manufacturer())

    def test_fingerprint_stable(self, small_db):
        assert small_db.fingerprint() == small_db.fingerprint()
        assert len(small_db.fingerprint()) == 64

    def test_fingerprint_roundtrip_invariant(self, small_db, tmp_path):
        path = tmp_path / "db.json"
        small_db.save(path)
        assert (FailureDatabase.load(path).fingerprint()
                == small_db.fingerprint())

    def test_fingerprint_tracks_content(self, small_db):
        before = small_db.fingerprint()
        record = small_db.disengagements.pop()
        try:
            assert small_db.fingerprint() != before
        finally:
            small_db.disengagements.append(record)
        assert small_db.fingerprint() == before


# ----------------------------------------------------------------------
# Index.
# ----------------------------------------------------------------------


class TestDatabaseIndex:
    @pytest.fixture(scope="class")
    def index(self, small_db):
        return DatabaseIndex.build(small_db)

    def test_by_manufacturer_partitions(self, index, small_db):
        total = sum(len(index.disengagements_for(name))
                    for name in index.manufacturers)
        assert total == len(small_db.disengagements)
        for name in index.manufacturers:
            assert all(r.manufacturer == name
                       for r in index.disengagements_for(name))

    def test_matches_database_scans(self, index, small_db):
        for name in small_db.manufacturers():
            assert (list(index.disengagements_for(name))
                    == small_db.disengagements_by_manufacturer()
                    .get(name, []))
            assert index.miles_for(name) == pytest.approx(
                small_db.miles_by_manufacturer().get(name, 0.0))
            assert dict(index.monthly_miles(name)) == pytest.approx(
                small_db.monthly_miles(name))
            assert (dict(index.monthly_disengagements(name))
                    == small_db.monthly_disengagements(name))

    def test_by_month_partitions(self, index, small_db):
        seen = sum(len(index.disengagements_in_month(month))
                   for month in index.months)
        assert seen == len(small_db.disengagements)

    def test_by_tag_and_category_consistent(self, index, small_db):
        tagged = [r for r in small_db.disengagements
                  if r.tag is not None]
        assert sum(len(index.disengagements_with_tag(tag))
                   for tag in index.tags) == len(tagged)
        for category in index.categories:
            records = index.disengagements_in_category(category)
            assert all(category_of(r.tag) is category
                       for r in records)

    def test_by_id_lookup(self, index, small_db):
        record = small_db.disengagements[0]
        assert index.disengagement(
            disengagement_id(record)) is record
        assert index.disengagement("record:nope") is None
        if small_db.accidents:
            accident = small_db.accidents[0]
            assert index.accident(accident_id(accident)) is accident

    def test_immutable(self, index):
        with pytest.raises(TypeError):
            index._miles_by_manufacturer["X"] = 1.0  # type: ignore
        assert isinstance(
            index.disengagements_for(index.manufacturers[0]), tuple)

    def test_summary_counts(self, index, small_db):
        summary = index.summary()
        assert summary["disengagements"] == len(
            small_db.disengagements)
        assert summary["fingerprint"] == index.fingerprint


# ----------------------------------------------------------------------
# Cache.
# ----------------------------------------------------------------------


class TestLruCache:
    def test_hit_miss_counters(self):
        cache = LruCache(maxsize=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_eviction_is_lru(self):
        cache = LruCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a; b is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.stats().evictions == 1

    def test_cached_none_is_a_hit(self):
        cache = LruCache()
        cache.put("k", None)
        sentinel = object()
        assert cache.get("k", sentinel) is None
        assert cache.stats().hits == 1

    def test_zero_capacity_disables(self):
        cache = LruCache(maxsize=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_clear_keeps_counters(self):
        cache = LruCache()
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_concurrent_hammer(self):
        cache = LruCache(maxsize=64)
        errors: list[Exception] = []

        def worker(offset: int) -> None:
            try:
                for i in range(500):
                    key = (offset + i) % 100
                    cache.put(key, key * 2)
                    value = cache.get(key)
                    assert value in (None, key * 2)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64


# ----------------------------------------------------------------------
# Typed queries.
# ----------------------------------------------------------------------


class TestQueryValidation:
    def test_unknown_metric(self):
        with pytest.raises(QueryError, match="unknown metric"):
            Query(metric="frobnicate")

    def test_default_group_by(self):
        assert Query(metric="dpm").group_by == "manufacturer"
        assert Query(metric="count").group_by is None

    def test_unsupported_group_by(self):
        with pytest.raises(QueryError, match="cannot group by"):
            Query(metric="apm", group_by="month")

    def test_bad_month(self):
        with pytest.raises(QueryError, match="YYYY-MM"):
            Query(metric="count", month_from="2016")

    def test_inverted_range(self):
        with pytest.raises(QueryError, match="empty month range"):
            Query(metric="count", month_from="2016-05",
                  month_to="2016-01")

    def test_unknown_tag_and_category(self):
        with pytest.raises(QueryError, match="unknown fault tag"):
            Query(metric="count", tag="Gremlins")
        with pytest.raises(QueryError, match="unknown failure"):
            Query(metric="count", category="Gremlins")

    def test_string_manufacturers_rejected(self):
        with pytest.raises(QueryError, match="sequence of names"):
            Query(metric="count", manufacturers="Waymo")

    def test_manufacturers_normalized(self):
        query = Query(metric="count",
                      manufacturers=("B", "A", "B"))
        assert query.manufacturers == ("A", "B")

    def test_canonical_is_order_insensitive(self):
        a = Query(metric="count", manufacturers=("X", "Y"))
        b = Query(metric="count", manufacturers=("Y", "X"))
        assert a.canonical() == b.canonical()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(QueryError, match="unknown query field"):
            Query.from_dict({"metric": "count", "frob": 1})
        with pytest.raises(QueryError, match="missing the 'metric'"):
            Query.from_dict({})

    def test_from_dict_roundtrip(self):
        query = Query(metric="dpm", manufacturers=("Waymo",),
                      month_from="2015-01")
        assert Query.from_dict(query.to_dict()) == query

    def test_from_dict_accepts_single_name(self):
        query = Query.from_dict(
            {"metric": "count", "manufacturers": "Waymo"})
        assert query.manufacturers == ("Waymo",)


class TestToJsonable:
    def test_enum_and_numpy(self):
        import numpy as np

        value = to_jsonable({
            FaultTag.SOFTWARE: np.float64(1.5),
            2016: np.int32(3),
            "flag": np.bool_(True),
            "inf": float("inf"),
        })
        assert value == {"Software": 1.5, "2016": 3,
                         "flag": True, "inf": None}

    def test_dataclass(self):
        from repro.analysis.stats import boxplot_stats

        box = to_jsonable(boxplot_stats([1.0, 2.0, 3.0]))
        assert box["median"] == 2.0 and box["n"] == 3


# ----------------------------------------------------------------------
# Engine.
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def engine(db):
    return QueryEngine(db)


class TestQueryEngine:
    def test_cache_roundtrip(self, engine):
        query = Query(metric="dpm")
        first = engine.execute(query)
        second = engine.execute(query)
        assert not first.cached
        assert second.cached
        assert first.value == second.value
        assert first.fingerprint == engine.fingerprint

    def test_dict_queries_accepted(self, engine):
        result = engine.execute({"metric": "count"})
        assert result.value["disengagements"] == len(
            engine.db.disengagements)

    def test_count_groupings_consistent(self, engine, db):
        by_manufacturer = engine.execute(
            Query(metric="count", group_by="manufacturer")).value
        assert by_manufacturer == {
            name: len(records) for name, records in
            db.disengagements_by_manufacturer().items()}
        by_tag = engine.execute(
            Query(metric="count", group_by="tag")).value
        assert sum(by_tag.values()) == sum(
            1 for r in db.disengagements if r.tag is not None)
        by_month = engine.execute(
            Query(metric="count", group_by="month")).value
        assert sum(by_month.values()) == len(db.disengagements)

    def test_miles_groupings_consistent(self, engine, db):
        total = engine.execute(Query(metric="miles")).value
        assert total == pytest.approx(db.total_miles)
        by_month = engine.execute(
            Query(metric="miles", group_by="month")).value
        assert sum(by_month.values()) == pytest.approx(db.total_miles)

    def test_filtered_scope_matches_manual_slice(self, engine, db):
        name = db.manufacturers()[0]
        scope = engine.scope(Query(metric="count",
                                   manufacturers=(name,)))
        assert {r.manufacturer for r in scope.disengagements} <= {name}
        assert len(scope.disengagements) == len(
            db.disengagements_by_manufacturer()[name])

    def test_month_range_filter(self, engine, db):
        months = sorted({r.month for r in db.disengagements})
        lo, hi = months[0], months[len(months) // 2]
        value = engine.execute(Query(
            metric="count", month_from=lo, month_to=hi)).value
        expected = sum(1 for r in db.disengagements
                       if lo <= r.month <= hi)
        assert value["disengagements"] == expected

    def test_tag_filter_keeps_denominators(self, engine, db):
        tag = next(r.tag for r in db.disengagements
                   if r.tag is not None)
        scope = engine.scope(Query(metric="count", tag=tag.value))
        assert all(r.tag is tag for r in scope.disengagements)
        # Accidents and mileage are not tag-filtered.
        assert len(scope.mileage) == len(db.mileage)
        assert len(scope.accidents) == len(db.accidents)

    def test_filtered_count_grouping(self, engine, db):
        name = db.manufacturers()[0]
        value = engine.execute(Query(
            metric="count", group_by="category",
            manufacturers=(name,))).value
        expected: dict[str, int] = {}
        for record in db.disengagements:
            if record.manufacturer == name and record.tag is not None:
                key = category_of(record.tag).value
                expected[key] = expected.get(key, 0) + 1
        assert value == expected

    def test_refresh_detects_content_change(self, db):
        engine = QueryEngine(db)
        baseline = engine.execute(Query(metric="count")).value
        assert engine.refresh() is False
        record = db.disengagements.pop()
        try:
            assert engine.refresh() is True
            after = engine.execute(Query(metric="count")).value
            assert (after["disengagements"]
                    == baseline["disengagements"] - 1)
            assert engine.execute(Query(metric="count")).cached
        finally:
            db.disengagements.append(record)
            engine.refresh()

    def test_stats_shape(self, engine):
        stats = engine.stats()
        assert stats["fingerprint"] == engine.fingerprint
        assert set(stats["cache"]) >= {"hits", "misses", "hit_rate"}
        assert stats["index"]["disengagements"] == len(
            engine.db.disengagements)


# ----------------------------------------------------------------------
# Golden parity: served results == direct analysis, byte for byte.
# ----------------------------------------------------------------------


ANALYSIS_QUERIES = [
    Query(metric="dpm"),
    Query(metric="dpm", group_by="month"),
    Query(metric="dpm", group_by="year"),
    Query(metric="apm"),
    Query(metric="dpa"),
    Query(metric="dpa", group_by="manufacturer"),
    Query(metric="tags"),
    Query(metric="categories"),
    Query(metric="modalities"),
    Query(metric="trend"),
]


class TestGoldenParity:
    @pytest.mark.parametrize(
        "query", ANALYSIS_QUERIES,
        ids=lambda q: f"{q.metric}-{q.group_by}")
    def test_unfiltered_parity(self, engine, db, query):
        kernel = KERNELS[(query.metric, query.group_by)]
        direct = canonical_json(to_jsonable(kernel(db)))
        served = canonical_json(engine.execute(query).value)
        assert served == direct
        # And again from the cache: still byte-identical.
        assert canonical_json(engine.execute(query).value) == direct

    @pytest.mark.parametrize("metric", ["dpm", "tags", "categories"])
    def test_filtered_parity(self, engine, db, metric):
        names = tuple(db.manufacturers()[:3])
        query = Query(metric=metric, manufacturers=names)
        kernel = KERNELS[(query.metric, query.group_by)]
        direct = canonical_json(to_jsonable(
            kernel(engine.scope(query))))
        assert canonical_json(engine.execute(query).value) == direct

    def test_scope_preserves_analysis_semantics(self, engine, db):
        # A manufacturer slice must answer exactly like a database
        # built from that manufacturer's records.
        name = db.manufacturers()[0]
        query = Query(metric="dpm", manufacturers=(name,))
        manual = FailureDatabase(
            disengagements=[r for r in db.disengagements
                            if r.manufacturer == name],
            accidents=[r for r in db.accidents
                       if r.manufacturer == name],
            mileage=[c for c in db.mileage
                     if c.manufacturer == name],
        )
        kernel = KERNELS[(query.metric, query.group_by)]
        assert (canonical_json(engine.execute(query).value)
                == canonical_json(to_jsonable(kernel(manual))))


class TestRenderQueryStats:
    def test_renders_counters(self, small_db):
        from repro.reporting.summary import render_query_stats

        engine = QueryEngine(small_db)
        engine.execute(Query(metric="dpm"))
        engine.execute(Query(metric="dpm"))
        text = render_query_stats(engine.stats())
        assert engine.fingerprint[:12] in text
        assert "1 hit(s)" in text
        assert "(50.0%)" in text
