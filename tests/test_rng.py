"""Tests for deterministic RNG utilities."""

import numpy as np
import pytest

from repro import rng


def test_generator_default_seed_is_reproducible():
    a = rng.generator().random(5)
    b = rng.generator().random(5)
    assert np.allclose(a, b)


def test_generator_accepts_explicit_seed():
    a = rng.generator(42).random(5)
    b = rng.generator(42).random(5)
    assert np.allclose(a, b)


def test_generator_passes_through_existing_generator():
    existing = np.random.default_rng(1)
    assert rng.generator(existing) is existing


def test_different_seeds_give_different_streams():
    a = rng.generator(1).random(10)
    b = rng.generator(2).random(10)
    assert not np.allclose(a, b)


def test_child_seed_is_deterministic():
    assert rng.child_seed(5, "x") == rng.child_seed(5, "x")


def test_child_seed_differs_by_name():
    assert rng.child_seed(5, "x") != rng.child_seed(5, "y")


def test_child_seed_differs_by_parent():
    assert rng.child_seed(5, "x") != rng.child_seed(6, "x")


def test_child_seed_fits_in_63_bits():
    for name in ("a", "b", "verylongname" * 10):
        assert 0 <= rng.child_seed(123, name) < 2 ** 63


def test_child_generator_streams_are_independent():
    a = rng.child_generator(9, "alpha").random(8)
    b = rng.child_generator(9, "beta").random(8)
    assert not np.allclose(a, b)


def test_split_returns_named_generators():
    streams = rng.split(3, ["a", "b"])
    assert set(streams) == {"a", "b"}
    assert not np.allclose(streams["a"].random(4), streams["b"].random(4))


@pytest.mark.parametrize("name", ["ocr:doc-1", "manufacturer:Waymo"])
def test_child_generator_matches_child_seed(name):
    direct = np.random.default_rng(rng.child_seed(11, name)).random(3)
    via_helper = rng.child_generator(11, name).random(3)
    assert np.allclose(direct, via_helper)
