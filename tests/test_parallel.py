"""Tests for the deterministic multi-worker fan-out and the tagger
hot path.

The acceptance bar: a run with ``--workers N`` (any N, process or
thread pool) saves a FailureDatabase **byte-identical** to a serial
run — under the quarantine policy, under chaos injection, and through
a crash -> resume cycle.  Plus unit coverage for the worker/merge
plumbing, the inverted dictionary index, and the token memo.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.errors import PipelineError
from repro.nlp.dictionary import DictionaryEntry, FailureDictionary
from repro.nlp.tagger import FirstMatchTagger, VotingTagger
from repro.nlp.textcache import TokenCache, cached_tokens, token_cache
from repro.pipeline import (
    ChaosConfig,
    CrashPoint,
    PipelineConfig,
    ParallelStats,
    SimulatedCrash,
    config_fingerprint,
    process_corpus,
)
from repro.pipeline.parallel import (
    BATCH_AUTO_CHUNKS_PER_WORKER,
    BATCH_SIZE_CLAMP,
    PROCESS_POOL_MIN_WORKERS,
    WORKER_MODES,
    resolve_batch_size,
    worker_config,
)
from repro.synth import generate_corpus
from repro.taxonomy import FaultTag

SEED = 5

SMALL = dict(seed=SEED, manufacturers=["Nissan"], ocr_enabled=False,
             dictionary_mode="seed")


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(seed=SEED, manufacturers=["Nissan"])


@pytest.fixture(scope="module")
def serial_json(corpus):
    result = process_corpus(corpus, PipelineConfig(**SMALL))
    return result.database.to_json()


def run_json(corpus, **overrides):
    params = {**SMALL, **overrides}
    return process_corpus(corpus, PipelineConfig(**params))


# ----------------------------------------------------------------------
# Config resolution.
# ----------------------------------------------------------------------

class TestConfig:
    def test_default_is_serial(self):
        assert PipelineConfig().resolved_parallelism() == (0, "serial")

    def test_auto_uses_threads_below_process_floor(self):
        workers, mode = PipelineConfig(workers=1).resolved_parallelism()
        assert (workers, mode) == (1, "thread")

    def test_auto_uses_processes_at_floor(self):
        workers, mode = PipelineConfig(
            workers=PROCESS_POOL_MIN_WORKERS).resolved_parallelism()
        assert (workers, mode) == (PROCESS_POOL_MIN_WORKERS, "process")

    def test_explicit_mode_wins(self):
        assert PipelineConfig(
            workers=8, worker_mode="thread"
        ).resolved_parallelism() == (8, "thread")

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            PipelineConfig(workers=-1)

    def test_unknown_worker_mode_rejected(self):
        with pytest.raises(ValueError, match="worker_mode"):
            PipelineConfig(worker_mode="gpu")

    def test_worker_modes_constant(self):
        assert WORKER_MODES == ("auto", "thread", "process")

    def test_worker_config_strips_coordinator_concerns(self, tmp_path):
        config = PipelineConfig(
            **SMALL, workers=4, checkpoint_dir=tmp_path,
            crash=CrashPoint(at="tag"))
        stripped = worker_config(config)
        assert stripped.workers == 0
        assert stripped.crash is None
        assert stripped.checkpoint_dir is None
        assert not stripped.resume
        # the knobs that shape output survive
        assert stripped.seed == config.seed
        assert stripped.failure_policy == config.failure_policy

    def test_worker_config_strips_batch_size(self):
        # Chunking is a coordinator decision; the worker payload must
        # be identical at every batch size.
        config = PipelineConfig(**SMALL, workers=4, batch_size=7)
        assert worker_config(config).batch_size is None

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_batch_size_below_one_rejected(self, bad):
        with pytest.raises(ValueError, match="batch_size"):
            PipelineConfig(batch_size=bad)

    def test_batch_size_one_and_auto_accepted(self):
        assert PipelineConfig(batch_size=1).batch_size == 1
        assert PipelineConfig(batch_size=None).batch_size is None

    def test_batch_size_excluded_from_fingerprint(self):
        # Like workers/worker_mode, batch size is an execution
        # strategy with byte-identical output — a resume may change
        # it and still adopt the pre-crash checkpoints.
        plain = config_fingerprint(PipelineConfig(**SMALL))
        batched = config_fingerprint(
            PipelineConfig(**SMALL, workers=2, batch_size=7))
        assert plain == batched


class TestResolveBatchSize:
    def test_explicit_size_wins(self):
        assert resolve_batch_size(7, 1000, workers=4) == 7

    def test_auto_targets_chunks_per_worker(self):
        n, workers = 800, 2
        size = resolve_batch_size(None, n, workers)
        assert size == n // (workers * BATCH_AUTO_CHUNKS_PER_WORKER)

    def test_auto_rounds_up(self):
        # 10 units / (2 workers * 4) -> ceil(1.25) = 2 per chunk.
        assert resolve_batch_size(None, 10, workers=2) == 2

    def test_auto_clamped_to_cap(self):
        assert resolve_batch_size(None, 10 ** 6, workers=1) \
            == BATCH_SIZE_CLAMP

    def test_auto_never_below_one(self):
        assert resolve_batch_size(None, 1, workers=8) == 1
        assert resolve_batch_size(None, 0, workers=8) == 1


# ----------------------------------------------------------------------
# Determinism hammer: parallel output is byte-identical to serial.
# ----------------------------------------------------------------------

class TestDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4, 8])
    def test_clean_run_byte_identical(self, corpus, serial_json,
                                      workers):
        result = run_json(corpus, workers=workers)
        assert result.database.to_json() == serial_json

    def test_thread_mode_byte_identical(self, corpus, serial_json):
        result = run_json(corpus, workers=4, worker_mode="thread")
        assert result.database.to_json() == serial_json

    def test_ocr_enabled_byte_identical(self):
        corpus = generate_corpus(seed=9, manufacturers=["Waymo"])
        config = dict(seed=9)
        serial = process_corpus(corpus, PipelineConfig(**config))
        parallel = process_corpus(
            corpus, PipelineConfig(**config, workers=4))
        assert (parallel.database.to_json()
                == serial.database.to_json())
        # Sidecar OCR stats replay bit-identically too.
        assert vars(parallel.diagnostics.ocr) == vars(
            serial.diagnostics.ocr)

    def test_quarantine_chaos_byte_identical(self, corpus):
        chaos = ChaosConfig(stage="parse", rate=0.3, kind="exception")
        serial = run_json(corpus, chaos=chaos,
                          failure_policy="quarantine")
        parallel = run_json(corpus, chaos=chaos,
                            failure_policy="quarantine", workers=4)
        assert (parallel.database.to_json()
                == serial.database.to_json())
        assert len(serial.database.quarantine) > 0
        # Quarantine entries match field for field (incl. traceback).
        for ours, theirs in zip(parallel.database.quarantine,
                                serial.database.quarantine):
            assert ours == theirs

    def test_transient_chaos_health_parity(self, corpus):
        chaos = ChaosConfig(stage="tag", rate=0.4, kind="transient")
        serial = run_json(corpus, chaos=chaos)
        parallel = run_json(corpus, chaos=chaos, workers=4)
        assert (parallel.database.to_json()
                == serial.database.to_json())
        assert (parallel.diagnostics.health.summary()
                == serial.diagnostics.health.summary())
        assert serial.diagnostics.health.total_retries > 0

    def test_tagging_report_parity(self, corpus):
        serial = run_json(corpus)
        parallel = run_json(corpus, workers=2)
        assert parallel.diagnostics.tagging == serial.diagnostics.tagging


# ----------------------------------------------------------------------
# Chunked dispatch: byte-identical at every (workers, batch_size).
# ----------------------------------------------------------------------

class TestBatchedDispatch:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("batch_size", [1, 3, None, 10_000])
    def test_matrix_byte_identical(self, corpus, serial_json, workers,
                                   batch_size):
        with warnings.catch_warnings():
            # batch_size=10_000 exceeds the unit count by design; the
            # oversize warning has its own test below.
            warnings.simplefilter("ignore")
            result = run_json(corpus, workers=workers,
                              batch_size=batch_size)
        assert result.database.to_json() == serial_json

    def test_oversized_batch_warns_but_completes(self, corpus,
                                                 serial_json):
        with pytest.warns(UserWarning, match="batch_size"):
            result = run_json(corpus, workers=2, batch_size=10_000)
        assert result.database.to_json() == serial_json

    def test_auto_batch_never_warns(self, corpus, serial_json):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = run_json(corpus, workers=2)
        assert result.database.to_json() == serial_json

    def test_quarantine_mid_batch_byte_identical(self):
        # Six document units at rate=0.5 over chunks of 3 put
        # quarantined units at intra-chunk positions; entries must
        # match field for field (incl. traceback).
        corpus = generate_corpus(
            seed=7, manufacturers=["Nissan", "Volkswagen", "Delphi",
                                   "Tesla"])
        config = dict(seed=7, ocr_enabled=False,
                      dictionary_mode="seed",
                      chaos=ChaosConfig(stage="parse", rate=0.5,
                                        kind="exception"),
                      failure_policy="quarantine")
        serial = process_corpus(corpus, PipelineConfig(**config))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # 2 accident docs < 3
            batched = process_corpus(
                corpus, PipelineConfig(**config, workers=2,
                                       batch_size=3))
        assert (batched.database.to_json()
                == serial.database.to_json())
        assert len(serial.database.quarantine) > 1
        for ours, theirs in zip(batched.database.quarantine,
                                serial.database.quarantine):
            assert ours == theirs

    def test_transient_chaos_health_parity(self, corpus):
        chaos = ChaosConfig(stage="tag", rate=0.4, kind="transient")
        serial = run_json(corpus, chaos=chaos)
        batched = run_json(corpus, chaos=chaos, workers=2,
                           batch_size=3)
        assert (batched.database.to_json()
                == serial.database.to_json())
        assert (batched.diagnostics.health.summary()
                == serial.diagnostics.health.summary())

    def test_fail_fast_mid_chunk_same_exception(self, corpus):
        # The failing unit lands mid-chunk; units after it in the
        # chunk must never run, so the raised error matches serial.
        chaos = ChaosConfig(stage="parse", rate=0.3, kind="exception")
        messages = []
        for overrides in ({}, {"workers": 2, "batch_size": 5}):
            with pytest.raises(PipelineError) as excinfo:
                run_json(corpus, chaos=chaos,
                         failure_policy="fail_fast", **overrides)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]

    def test_threshold_abort_mid_batch(self, corpus):
        chaos = ChaosConfig(stage="parse", rate=0.9, kind="exception")
        outcomes = []
        for overrides in ({}, {"workers": 2, "batch_size": 4}):
            try:
                run_json(corpus, chaos=chaos,
                         failure_policy="threshold",
                         max_error_rate=0.05, **overrides)
                outcomes.append("completed")
            except PipelineError as exc:
                outcomes.append(str(exc))
        assert outcomes[0] == outcomes[1]

    @pytest.mark.parametrize("point", ["mid-parse-documents",
                                       "mid-tag"])
    def test_crash_mid_batch_resumes_identically(
            self, corpus, serial_json, tmp_path, point):
        # The kill lands mid-chunk; completed units buffered by the
        # journal batcher must survive the unwind so the resume skips
        # them, exactly as serial per-unit appends would.
        ckpt = tmp_path / point
        with pytest.raises(SimulatedCrash):
            run_json(corpus, workers=2, batch_size=3,
                     checkpoint_dir=ckpt, crash=CrashPoint(at=point))
        resumed = run_json(corpus, checkpoint_dir=ckpt, resume=True,
                           workers=2, batch_size=3)
        assert resumed.database.to_json() == serial_json
        assert resumed.diagnostics.health.checkpoint.restored_units > 0

    def test_batch_stats_populated(self, corpus):
        result = run_json(corpus, workers=2, batch_size=3)
        par = result.diagnostics.parallel
        assert par.batch_tasks > 0
        assert par.batch_size["tag"] == 3
        assert par.batch_size["parse-documents"] == 3
        summary = par.summary()
        assert summary["batch_tasks"] == par.batch_tasks
        assert summary["batch_size"]["tag"] == 3
        json.dumps(summary)  # JSON-friendly

    def test_auto_batch_size_recorded(self, corpus):
        result = run_json(corpus, workers=2)
        sizes = result.diagnostics.parallel.batch_size
        n_tagged = len(result.database.disengagements)
        assert sizes["tag"] == resolve_batch_size(None, n_tagged,
                                                  workers=2)

    def test_chunks_cut_task_count(self, corpus):
        per_unit = run_json(corpus, workers=2, batch_size=1)
        chunked = run_json(corpus, workers=2, batch_size=8)
        assert (chunked.diagnostics.parallel.batch_tasks
                < per_unit.diagnostics.parallel.batch_tasks)
        assert (chunked.diagnostics.parallel.parallel_units
                == per_unit.diagnostics.parallel.parallel_units)


# ----------------------------------------------------------------------
# Failure-policy semantics across the pool boundary.
# ----------------------------------------------------------------------

class TestPolicyParity:
    def test_fail_fast_same_exception(self, corpus):
        chaos = ChaosConfig(stage="parse", rate=0.3, kind="exception")
        messages = []
        for workers in (0, 4):
            with pytest.raises(PipelineError) as excinfo:
                run_json(corpus, chaos=chaos,
                         failure_policy="fail_fast", workers=workers)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]

    def test_threshold_same_abort(self, corpus):
        chaos = ChaosConfig(stage="parse", rate=0.9, kind="exception")
        outcomes = []
        for workers in (0, 4):
            try:
                run_json(corpus, chaos=chaos,
                         failure_policy="threshold",
                         max_error_rate=0.05, workers=workers)
                outcomes.append("completed")
            except PipelineError as exc:
                outcomes.append(str(exc))
        assert outcomes[0] == outcomes[1]


# ----------------------------------------------------------------------
# Checkpointing and crash -> resume under workers.
# ----------------------------------------------------------------------

class TestCrashResume:
    def test_checkpointed_parallel_run(self, corpus, serial_json,
                                       tmp_path):
        result = run_json(corpus, workers=4, checkpoint_dir=tmp_path)
        assert result.database.to_json() == serial_json

    @pytest.mark.parametrize("point", ["mid-parse-documents",
                                       "mid-tag"])
    @pytest.mark.parametrize("resume_workers", [0, 4])
    def test_crash_under_workers_resumes_identically(
            self, corpus, serial_json, tmp_path, point,
            resume_workers):
        ckpt = tmp_path / point / str(resume_workers)
        with pytest.raises(SimulatedCrash):
            run_json(corpus, workers=4, checkpoint_dir=ckpt,
                     crash=CrashPoint(at=point))
        resumed = run_json(corpus, checkpoint_dir=ckpt, resume=True,
                           workers=resume_workers)
        assert resumed.database.to_json() == serial_json
        assert resumed.diagnostics.health.checkpoint.restored_units > 0


# ----------------------------------------------------------------------
# Diagnostics.
# ----------------------------------------------------------------------

class TestParallelStats:
    def test_serial_run_reports_serial(self, corpus):
        result = run_json(corpus)
        par = result.diagnostics.parallel
        assert not par.enabled
        assert par.workers == 0 and par.mode == "serial"
        assert par.parallel_units == 0
        assert par.speedup_estimate is None
        # Stage wall times are recorded for serial runs too.
        assert "parse-documents" in par.stage_wall_s
        assert "tag" in par.stage_wall_s

    def test_parallel_run_populates_stats(self, corpus):
        result = run_json(corpus, workers=2)
        par = result.diagnostics.parallel
        assert par.enabled
        assert par.workers == 2 and par.mode == "process"
        docs = len(result.diagnostics.health.stages)  # sanity anchor
        assert docs > 0
        assert par.parallel_units == (
            result.diagnostics.parse.documents
            + len(result.database.quarantine)
            + len(result.database.accidents)
            + len(result.database.disengagements))
        assert par.unit_compute_s > 0.0
        assert par.parallel_wall_s > 0.0
        assert par.speedup_estimate is not None
        summary = par.summary()
        assert summary["workers"] == 2
        assert summary["mode"] == "process"
        json.dumps(summary)  # JSON-friendly


# ----------------------------------------------------------------------
# Dictionary inverted index.
# ----------------------------------------------------------------------

class TestDictionaryIndex:
    def test_match_equals_linear_reference(self, corpus):
        result = process_corpus(
            corpus, PipelineConfig(seed=SEED, ocr_enabled=False))
        texts = [r.description
                 for r in result.database.disengagements]
        dictionary = FailureDictionary.build(texts)
        for text in texts[:300]:
            tokens = cached_tokens(text)
            assert (dictionary.match(tokens)
                    == dictionary.match_linear(tokens))

    def test_match_per_occurrence(self):
        dictionary = FailureDictionary()
        entry = DictionaryEntry(phrase=("lidar",),
                                tag=FaultTag.SENSOR,
                                weight=1.0, source="seed")
        dictionary.add(entry)
        assert dictionary.match(["lidar", "x", "lidar"]) == [entry,
                                                             entry]

    def test_add_is_idempotent(self):
        dictionary = FailureDictionary()
        entry = DictionaryEntry(phrase=("can", "bus"),
                                tag=FaultTag.NETWORK,
                                weight=1.0, source="seed")
        dictionary.add(entry)
        dictionary.add(DictionaryEntry(phrase=("can", "bus"),
                                       tag=FaultTag.NETWORK,
                                       weight=9.0, source="learned"))
        assert len(dictionary) == 1
        assert dictionary.entries[0].weight == 1.0

    def test_multiword_prefix_no_false_match(self):
        dictionary = FailureDictionary()
        dictionary.add(DictionaryEntry(phrase=("can", "bus"),
                                       tag=FaultTag.NETWORK,
                                       weight=1.0, source="seed"))
        assert dictionary.match(["can"]) == []
        assert dictionary.match(["can", "opener"]) == []
        assert len(dictionary.match(["can", "bus"])) == 1

    def test_match_at_start_positions_only(self):
        dictionary = FailureDictionary()
        entry = DictionaryEntry(phrase=("sun", "glare"),
                                tag=FaultTag.ENVIRONMENT,
                                weight=1.0, source="seed")
        dictionary.add(entry)
        tokens = ["bright", "sun", "glare"]
        assert dictionary.match_at(tokens, 1) == [entry]
        assert dictionary.match_at(tokens, 0) == []

    def test_from_json_roundtrip_preserves_order(self):
        dictionary = FailureDictionary.from_seeds()
        clone = FailureDictionary.from_json(dictionary.to_json())
        assert clone.entries == dictionary.entries
        tokens = cached_tokens("lidar returns degraded by sun glare")
        assert clone.match(tokens) == dictionary.match(tokens)

    def test_first_match_tagger_uses_earliest(self):
        dictionary = FailureDictionary()
        dictionary.add(DictionaryEntry(phrase=("lidar",),
                                       tag=FaultTag.SENSOR,
                                       weight=1.0, source="seed"))
        dictionary.add(DictionaryEntry(phrase=("planner",),
                                       tag=FaultTag.PLANNER,
                                       weight=5.0, source="seed"))
        tagger = FirstMatchTagger(dictionary)
        assert tagger.tag("planner ignored lidar").tag \
            == FaultTag.PLANNER
        assert tagger.tag("lidar confused planner").tag \
            == FaultTag.SENSOR
        assert tagger.tag("nothing matches here").tag \
            == FaultTag.UNKNOWN


# ----------------------------------------------------------------------
# Token memo.
# ----------------------------------------------------------------------

class TestTokenCache:
    def test_hit_returns_same_list(self):
        cache = TokenCache(capacity=4)
        first = cache.tokens("the lidar sensor failed")
        second = cache.tokens("the lidar sensor failed")
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_capacity_is_bounded(self):
        cache = TokenCache(capacity=3)
        for i in range(10):
            cache.tokens(f"narrative number {i}")
        assert len(cache) == 3

    def test_lru_eviction_order(self):
        cache = TokenCache(capacity=2)
        a = cache.tokens("alpha narrative")
        cache.tokens("beta narrative")
        # Touch "alpha" so "beta" is the LRU victim.
        assert cache.tokens("alpha narrative") is a
        cache.tokens("gamma narrative")
        assert cache.tokens("alpha narrative") is a  # still resident
        assert cache.hits == 2

    def test_matches_uncached_normalization(self):
        from repro.nlp.normalize import normalize_tokens
        from repro.nlp.tokenize import tokenize

        text = "The LIDAR unit failed to detect the pedestrians."
        assert cached_tokens(text) == normalize_tokens(tokenize(text))

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            TokenCache(capacity=0)

    def test_shared_cache_counts(self):
        shared = token_cache()
        before = shared.hits
        cached_tokens("a perfectly unique narrative about sun glare")
        cached_tokens("a perfectly unique narrative about sun glare")
        assert shared.hits >= before + 1

    def test_voting_tagger_uses_memo(self):
        dictionary = FailureDictionary.from_seeds()
        tagger = VotingTagger(dictionary)
        shared = token_cache()
        text = "sun glare blinded the forward camera on the ramp"
        tagger.tag(text)
        hits = shared.hits
        tagger.tag(text)
        assert shared.hits == hits + 1


class TestStatsDataclass:
    def test_speedup_estimate_guards_division(self):
        stats = ParallelStats(workers=2, mode="process",
                              unit_compute_s=1.0, parallel_wall_s=0.0)
        assert stats.speedup_estimate is None
        stats.parallel_wall_s = 0.5
        assert stats.speedup_estimate == pytest.approx(2.0)
