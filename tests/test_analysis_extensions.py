"""Tests for the extension analyses: conditions, validity tooling,
and the mission reliability model."""

import math

import pytest

from repro.analysis.conditions import (
    reporting_census,
    road_type_breakdown,
    road_type_enrichment,
    weather_breakdown,
)
from repro.analysis.reliability import (
    MissionModel,
    build_mission_model,
    crossover_trip_length,
    mission_survival_curve,
)
from repro.analysis.validity import (
    bootstrap_ci,
    median_dpm_ci,
    underreporting_sweep,
)
from repro.errors import InsufficientDataError


class TestConditions:
    def test_road_breakdown_shares_sum_to_one(self, db):
        breakdown = road_type_breakdown(db)
        assert sum(breakdown.shares.values()) == pytest.approx(1.0)
        assert breakdown.total > 1000

    def test_city_streets_dominate(self, db):
        breakdown = road_type_breakdown(db)
        top_road, _ = breakdown.top(1)[0]
        assert top_road in ("city street", "highway")

    def test_per_manufacturer_filter(self, db):
        breakdown = road_type_breakdown(db, "Waymo")
        assert breakdown.total <= len(
            db.disengagements_by_manufacturer()["Waymo"])

    def test_manufacturer_without_conditions_raises(self, db):
        # GMCruise reports no road types.
        with pytest.raises(InsufficientDataError):
            road_type_breakdown(db, "GMCruise")

    def test_weather_breakdown(self, db):
        breakdown = weather_breakdown(db)
        assert sum(breakdown.shares.values()) == pytest.approx(1.0)
        assert any("Sunny" in key for key in breakdown.shares)

    def test_enrichment_near_one_by_construction(self, db):
        # The synthesizer samples events against exposure, so no road
        # type should be wildly enriched.
        enrichment = road_type_enrichment(db)
        for road, ratio in enrichment.items():
            assert 0.5 <= ratio <= 2.0, road

    def test_reporting_census(self, db):
        census = reporting_census(db)
        assert census["Waymo"]["reaction_time_s"] > 0.9
        assert census["GMCruise"]["reaction_time_s"] == 0.0
        assert census["Bosch"]["weather"] > 0.9
        for name, fields in census.items():
            for field, share in fields.items():
                assert 0.0 <= share <= 1.0, (name, field)


class TestValidity:
    def test_bootstrap_ci_brackets_statistic(self):
        values = list(range(100))
        result = bootstrap_ci(values, resamples=500)
        assert result.low <= result.statistic <= result.high
        assert result.contains(result.statistic)

    def test_bootstrap_narrows_with_confidence(self):
        values = [float(v) for v in range(200)]
        wide = bootstrap_ci(values, confidence=0.99, resamples=500)
        narrow = bootstrap_ci(values, confidence=0.5, resamples=500)
        assert (narrow.high - narrow.low) <= (wide.high - wide.low)

    def test_bootstrap_requires_data(self):
        with pytest.raises(InsufficientDataError):
            bootstrap_ci([1.0])

    def test_median_dpm_ci(self, db):
        result = median_dpm_ci(db, "Waymo")
        assert result.low <= result.statistic <= result.high
        assert result.statistic == pytest.approx(4e-4, abs=4e-4)

    def test_underreporting_sweep(self, db):
        points = underreporting_sweep(db, factors=(1.0, 2.0, 10.0))
        assert [p.factor for p in points] == [1.0, 2.0, 10.0]
        # The AV-vs-human conclusion survives any disengagement
        # underreporting (APM is accident-based).
        assert all(p.still_worse_than_human for p in points)

    def test_underreporting_rejects_bad_factor(self, db):
        with pytest.raises(InsufficientDataError):
            underreporting_sweep(db, factors=(0.0,))


class TestReliability:
    def test_build_model_from_db(self, db):
        model = build_mission_model(db, "Waymo")
        assert model.dpm == pytest.approx(4.4e-4, rel=0.2)
        assert model.apm == pytest.approx(25 / 1060200, rel=0.1)

    def test_survival_probability_monotone(self, db):
        model = build_mission_model(db, "Waymo")
        p10 = model.p_disengagement_free(10)
        p100 = model.p_disengagement_free(100)
        assert 0 < p100 < p10 < 1

    def test_expected_disengagements_linear(self):
        model = MissionModel("X", dpm=0.01, apm=1e-4)
        assert model.expected_disengagements(100) == pytest.approx(1.0)

    def test_miles_between_events(self):
        model = MissionModel("X", dpm=0.01, apm=1e-4)
        assert model.miles_between_disengagements() == pytest.approx(
            100.0)
        assert model.miles_between_accidents() == pytest.approx(1e4)

    def test_no_accident_data(self, db):
        model = build_mission_model(db, "Tesla")
        assert model.apm is None
        assert model.p_accident_free(10) is None
        assert model.miles_between_accidents() is None
        assert model.trips_to_first_accident() is None

    def test_trips_to_first_accident(self):
        model = MissionModel("X", dpm=0.01, apm=1e-3)
        trips = model.trips_to_first_accident(trip_miles=10.0)
        # P(accident on a 10-mile trip) = 1 - exp(-0.01) ~ 0.00995.
        assert trips == pytest.approx(1 / (1 - math.exp(-0.01)),
                                      rel=1e-6)

    def test_crossover_length(self):
        model = MissionModel("X", dpm=0.01, apm=1e-4)
        crossover = crossover_trip_length(model)
        # Below the crossover, the AV trip beats an airline departure.
        p_accident = 1 - model.p_accident_free(crossover)
        assert p_accident == pytest.approx(9.8e-5, rel=1e-6)

    def test_survival_curve_shape(self, db):
        model = build_mission_model(db, "Waymo")
        curve = mission_survival_curve(model, [1, 10, 100])
        frees = [point[1] for point in curve]
        assert frees == sorted(frees, reverse=True)

    def test_invalid_trip_length(self):
        model = MissionModel("X", dpm=0.01, apm=None)
        with pytest.raises(InsufficientDataError):
            model.p_disengagement_free(0)

    def test_unknown_manufacturer(self, db):
        with pytest.raises(InsufficientDataError):
            build_mission_model(db, "Nonexistent Motors")
