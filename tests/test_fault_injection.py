"""Tests for the stochastic fault-injection campaign."""

import numpy as np
import pytest

from repro.errors import StpaError
from repro.stpa.fault_injection import (
    DEFAULT_DETECTION,
    HAZARD_COMPONENT,
    CampaignResult,
    FaultInjector,
    InjectionOutcome,
)


@pytest.fixture(scope="module")
def campaign():
    return FaultInjector().run_campaign(
        injections_per_component=400, seed=123)


class TestInjection:
    def test_single_injection_reaches_origin(self):
        injector = FaultInjector()
        outcome = injector.inject("sensors", np.random.default_rng(0))
        assert "sensors" in outcome.reached

    def test_unknown_origin_raises(self):
        injector = FaultInjector()
        with pytest.raises(StpaError):
            injector.inject("warp_core", np.random.default_rng(0))

    def test_invalid_mitigation_rejected(self):
        with pytest.raises(StpaError):
            FaultInjector(driver_mitigation=1.5)

    def test_invalid_campaign_size_rejected(self):
        with pytest.raises(StpaError):
            FaultInjector().run_campaign(injections_per_component=0)


class TestCampaign:
    def test_campaign_covers_all_injectable_components(self, campaign):
        origins = {o.origin for o in campaign.outcomes}
        assert HAZARD_COMPONENT not in origins
        assert "driver" not in origins
        assert {"sensors", "recognition", "planner_controller",
                "compute", "network"} <= origins

    def test_hazard_rates_are_probabilities(self, campaign):
        for origin, rate in campaign.hazard_ranking():
            assert 0.0 <= rate <= 1.0, origin

    def test_hazard_ranking_sorted(self, campaign):
        rates = [rate for _, rate in campaign.hazard_ranking()]
        assert rates == sorted(rates, reverse=True)

    def test_ml_faults_poorly_detected(self, campaign):
        # The design choice that mirrors the paper: the ML components
        # detect their own faults far less often than the watchdogged
        # substrate.
        assert campaign.detection_rate("recognition") < \
            campaign.detection_rate("compute") - 0.2

    def test_actuation_proximity_raises_hazard(self, campaign):
        # Faults injected adjacent to the controlled process become
        # hazards more often than deep-pipeline faults.
        assert campaign.hazard_rate("actuators") >= \
            campaign.hazard_rate("recognition")

    def test_detection_sites_counted(self, campaign):
        sites = campaign.detection_sites()
        assert sum(sites.values()) == sum(
            1 for o in campaign.outcomes if o.detected_at is not None)

    def test_campaign_is_seed_deterministic(self):
        a = FaultInjector().run_campaign(
            injections_per_component=50, seed=9)
        b = FaultInjector().run_campaign(
            injections_per_component=50, seed=9)
        assert [o.reached for o in a.outcomes] == \
            [o.reached for o in b.outcomes]

    def test_zero_detection_means_no_mitigation(self):
        injector = FaultInjector(
            detection={name: 0.0 for name in DEFAULT_DETECTION})
        campaign = injector.run_campaign(
            injections_per_component=100, origins=["sensors"], seed=1)
        assert all(o.detected_at is None for o in campaign.outcomes)
        assert all(not o.mitigated for o in campaign.outcomes)

    def test_perfect_detection_and_mitigation_prevents_hazards(self):
        injector = FaultInjector(
            detection={name: 1.0 for name in DEFAULT_DETECTION},
            driver_mitigation=1.0)
        campaign = injector.run_campaign(
            injections_per_component=100, origins=["actuators"],
            seed=2)
        assert all(not o.hazardous for o in campaign.outcomes)


class TestHazardRankingTies:
    def test_equal_rates_break_ties_by_component_name(self):
        # Regression: the ranking sorts origins coming out of a set,
        # so equal hazard rates used to come back in arbitrary order.
        result = CampaignResult(injections_per_component=1)
        for origin in ("zeta", "alpha", "mid", "beta"):
            result.outcomes.append(InjectionOutcome(
                origin=origin, reached=frozenset({origin}),
                detected_at=None, mitigated=False))
        # One hazardous outcome lifts "mid" above the all-tied rest.
        result.outcomes.append(InjectionOutcome(
            origin="mid", reached=frozenset({"mid", HAZARD_COMPONENT}),
            detected_at=None, mitigated=False))
        ranking = result.hazard_ranking()
        assert ranking[0][0] == "mid"
        assert [origin for origin, _ in ranking[1:]] == \
            ["alpha", "beta", "zeta"]

    def test_all_tied_ranking_is_alphabetical(self):
        result = CampaignResult(injections_per_component=1)
        for origin in ("c", "a", "b"):
            result.outcomes.append(InjectionOutcome(
                origin=origin, reached=frozenset({origin}),
                detected_at=None, mitigated=False))
        assert [o for o, _ in result.hazard_ranking()] == \
            ["a", "b", "c"]
