"""Property-based render -> parse round-trips.

For every manufacturer format: generate a random canonical record,
render it with the synth renderer, parse it back with the matching
parser, and check the load-bearing fields survive.  This is the
invariant the whole Stage II depends on.
"""

from datetime import date

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parsing.formats import (
    BenzParser,
    BoschParser,
    DelphiParser,
    GmCruiseParser,
    NissanParser,
    TeslaParser,
    VolkswagenParser,
    WaymoParser,
)
from repro.parsing.records import DisengagementRecord
from repro.synth.reports import _ROW_RENDERERS
from repro.taxonomy import Modality

#: Narrative text: words only — no field-separator characters, which
#: real narratives never start/end with but OCR tests cover elsewhere.
_description = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz",
            min_size=2, max_size=8),
    min_size=2, max_size=8).map(" ".join)

_dates = st.dates(min_value=date(2014, 9, 1),
                  max_value=date(2016, 11, 30))
_times = st.tuples(st.integers(0, 23), st.integers(0, 59),
                   st.integers(0, 59))
_reaction = st.one_of(
    st.none(),
    st.floats(min_value=0.1, max_value=99.0).map(
        lambda v: round(v, 2)))
_road = st.sampled_from(["highway", "city street", "freeway",
                         "interstate", "rural"])
_weather = st.sampled_from(["Sunny/Dry", "Overcast", "Raining/Wet"])
_modality_am = st.sampled_from([Modality.AUTOMATIC, Modality.MANUAL])


def _record(manufacturer, **kwargs):
    defaults = dict(manufacturer=manufacturer, month="2015-06")
    defaults.update(kwargs)
    record = DisengagementRecord(**defaults)
    if record.event_date is not None:
        record.month = (f"{record.event_date.year:04d}-"
                        f"{record.event_date.month:02d}")
    return record


def _roundtrip(parser, record):
    line = _ROW_RENDERERS[record.manufacturer](record)
    parsed = parser.parse_row(line)
    assert parsed is not None, line
    return parsed


class TestNissanRoundtrip:
    @given(event_date=_dates, time_of_day=_times,
           description=_description, road=_road, weather=_weather,
           reaction=_reaction, modality=_modality_am,
           car=st.integers(1, 9))
    @settings(max_examples=60)
    def test_fields_survive(self, event_date, time_of_day, description,
                            road, weather, reaction, modality, car):
        record = _record(
            "Nissan", event_date=event_date, time_of_day=time_of_day,
            vehicle_id=f"Leaf #{car} (Alfa)", modality=modality,
            road_type=road, weather=weather, reaction_time_s=reaction,
            description=description)
        parsed = _roundtrip(NissanParser(), record)
        assert parsed.event_date == event_date
        assert parsed.vehicle_id == record.vehicle_id
        assert parsed.modality == modality
        assert parsed.description == description
        if reaction is not None:
            assert parsed.reaction_time_s == pytest.approx(reaction)


class TestWaymoRoundtrip:
    @given(month=st.tuples(st.integers(2014, 2016),
                           st.integers(1, 12)),
           description=_description, road=_road,
           reaction=_reaction, modality=_modality_am,
           car=st.integers(1, 120))
    @settings(max_examples=60)
    def test_fields_survive(self, month, description, road, reaction,
                            modality, car):
        month_key = f"{month[0]:04d}-{month[1]:02d}"
        record = _record(
            "Waymo", month=month_key, vehicle_id=f"AV-{car:03d}",
            modality=modality, road_type=road,
            reaction_time_s=reaction, description=description)
        parsed = _roundtrip(WaymoParser(), record)
        assert parsed.month == month_key
        assert parsed.vehicle_id == record.vehicle_id
        assert parsed.description == description


class TestVolkswagenRoundtrip:
    @given(event_date=_dates, time_of_day=_times,
           description=_description, reaction=_reaction)
    @settings(max_examples=60)
    def test_fields_survive(self, event_date, time_of_day,
                            description, reaction):
        record = _record(
            "Volkswagen", event_date=event_date,
            time_of_day=time_of_day, modality=Modality.AUTOMATIC,
            reaction_time_s=reaction, description=description)
        parsed = _roundtrip(VolkswagenParser(), record)
        assert parsed.event_date == event_date
        assert parsed.time_of_day == time_of_day
        assert parsed.description == description


class TestBenzRoundtrip:
    @given(event_date=_dates, time_of_day=_times,
           description=_description, road=_road, weather=_weather,
           reaction=_reaction, modality=_modality_am)
    @settings(max_examples=60)
    def test_fields_survive(self, event_date, time_of_day, description,
                            road, weather, reaction, modality):
        record = _record(
            "Mercedes-Benz", event_date=event_date,
            time_of_day=time_of_day, vehicle_id="S500-1",
            modality=modality, road_type=road, weather=weather,
            reaction_time_s=reaction, description=description)
        parsed = _roundtrip(BenzParser(), record)
        assert parsed.event_date == event_date
        assert parsed.description == description
        assert parsed.modality == modality


class TestBoschRoundtrip:
    @given(event_date=_dates, description=_description, road=_road,
           weather=_weather)
    @settings(max_examples=60)
    def test_fields_survive(self, event_date, description, road,
                            weather):
        record = _record(
            "Bosch", event_date=event_date, vehicle_id="...AB123",
            modality=Modality.PLANNED, road_type=road,
            weather=weather, description=description)
        parsed = _roundtrip(BoschParser(), record)
        assert parsed.event_date == event_date
        assert parsed.modality is Modality.PLANNED
        assert parsed.description == description


class TestGmCruiseRoundtrip:
    @given(event_date=_dates, description=_description)
    @settings(max_examples=60)
    def test_fields_survive(self, event_date, description):
        record = _record(
            "GMCruise", event_date=event_date,
            modality=Modality.PLANNED, description=description)
        parsed = _roundtrip(GmCruiseParser(), record)
        assert parsed.event_date == event_date
        assert parsed.description == description


class TestDelphiRoundtrip:
    @given(event_date=_dates, time_of_day=_times,
           description=_description, road=_road, weather=_weather,
           reaction=_reaction, modality=_modality_am)
    @settings(max_examples=60)
    def test_fields_survive(self, event_date, time_of_day, description,
                            road, weather, reaction, modality):
        record = _record(
            "Delphi", event_date=event_date, time_of_day=time_of_day,
            vehicle_id="...XY987", modality=modality, road_type=road,
            weather=weather, reaction_time_s=reaction,
            description=description)
        parsed = _roundtrip(DelphiParser(), record)
        assert parsed.event_date == event_date
        assert parsed.time_of_day == time_of_day
        assert parsed.description == description
        assert parsed.modality == modality


class TestTeslaRoundtrip:
    @given(event_date=_dates, time_of_day=_times,
           description=_description, reaction=_reaction,
           modality=_modality_am)
    @settings(max_examples=60)
    def test_fields_survive(self, event_date, time_of_day,
                            description, reaction, modality):
        record = _record(
            "Tesla", event_date=event_date, time_of_day=time_of_day,
            modality=modality, reaction_time_s=reaction,
            description=description)
        parsed = _roundtrip(TeslaParser(), record)
        assert parsed.event_date == event_date
        assert parsed.description == description
        assert parsed.modality == modality
