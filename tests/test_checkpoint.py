"""Tests for crash-safe checkpointing, atomic persistence, and resume.

Covers the durability primitives (atomic replace, checksummed
journals), the typed :class:`~repro.errors.CorruptDatabaseError`
contract of the store, kill-point injection, the acceptance scenario
(crash at every declared point -> resume -> byte-identical database),
stale-checkpoint invalidation, and checksum-corruption recovery.
"""

import json
from pathlib import Path

import pytest

from repro.errors import CorruptDatabaseError, ReproError
from repro.parsing.records import (
    AccidentRecord,
    DisengagementRecord,
    MonthlyMileage,
)
from repro.pipeline import (
    CRASH_POINTS,
    ChaosConfig,
    CrashController,
    CrashPoint,
    FailureDatabase,
    PipelineConfig,
    SimulatedCrash,
    process_corpus,
)
from repro.pipeline.checkpoint import (
    CheckpointStore,
    atomic_write_text,
    config_fingerprint,
    journal_line,
    read_journal,
    sha256_text,
)
from repro.pipeline.resilience import Quarantine, QuarantineEntry
from repro.pipeline.runner import _record_id
from repro.reporting.summary import render_run_health
from repro.synth import generate_corpus

SEED = 7
SUBSET = ["Nissan"]


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(SEED, SUBSET)


def _config(**kwargs) -> PipelineConfig:
    defaults = dict(seed=SEED, manufacturers=SUBSET, ocr_enabled=False)
    defaults.update(kwargs)
    return PipelineConfig(**defaults)


@pytest.fixture(scope="module")
def clean_json(corpus):
    """The uninterrupted no-checkpoint run every scenario must match."""
    return process_corpus(corpus, _config()).database.to_json()


# ----------------------------------------------------------------------
# Durability primitives.
# ----------------------------------------------------------------------

class TestAtomicWrite:
    def test_publishes_content(self, tmp_path):
        target = tmp_path / "x.json"
        atomic_write_text(target, "one")
        atomic_write_text(target, "two")
        assert target.read_text() == "two"
        assert list(tmp_path.iterdir()) == [target]  # no temp debris

    def test_crash_mid_write_preserves_old_content(self, tmp_path):
        target = tmp_path / "x.json"
        target.write_text("old")

        def die():
            raise SimulatedCrash("mid-write")

        with pytest.raises(SimulatedCrash):
            atomic_write_text(target, "new", crash_hook=die)
        assert target.read_text() == "old"


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with open(path, "w") as handle:
            handle.write(journal_line("a", {"v": 1}) + "\n")
            handle.write(journal_line("b", {"v": 2}) + "\n")
        entries, corrupt = read_journal(path)
        assert entries == {"a": {"v": 1}, "b": {"v": 2}}
        assert corrupt == 0

    def test_missing_file_is_empty(self, tmp_path):
        assert read_journal(tmp_path / "none.jsonl") == ({}, 0)

    def test_torn_tail_line_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with open(path, "w") as handle:
            handle.write(journal_line("a", {"v": 1}) + "\n")
            handle.write(journal_line("b", {"v": 2})[:20])  # torn
        entries, corrupt = read_journal(path)
        assert entries == {"a": {"v": 1}}
        assert corrupt == 1

    def test_checksum_mismatch_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        line = json.loads(journal_line("a", {"v": 1}))
        line["body"]["v"] = 999  # tamper after checksumming
        path.write_text(json.dumps(line) + "\n")
        entries, corrupt = read_journal(path)
        assert entries == {}
        assert corrupt == 1

    def test_rejournaled_unit_latest_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with open(path, "w") as handle:
            handle.write(journal_line("a", {"v": 1}) + "\n")
            handle.write(journal_line("a", {"v": 2}) + "\n")
        entries, _ = read_journal(path)
        assert entries == {"a": {"v": 2}}


class TestCheckpointStore:
    def test_artifact_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp")
        store.open(resume=False)
        store.write_artifact("dictionary", {"k": [1, 2]})
        assert store.load_artifact("dictionary") == {"k": [1, 2]}

    def test_corrupt_artifact_reported_not_trusted(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp")
        store.open(resume=False)
        store.write_artifact("dictionary", {"k": 1})
        raw = json.loads((tmp_path / "dictionary.json").read_text())
        raw["payload"]["k"] = 2
        (tmp_path / "dictionary.json").write_text(json.dumps(raw))
        assert store.load_artifact("dictionary") is None
        assert store.health.corrupt_entries == 1

    def test_fresh_open_discards_previous_state(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp")
        store.open(resume=False)
        store.append("tags", "a", {"v": 1})
        store.close()
        again = CheckpointStore(tmp_path, "fp")
        again.open(resume=False)  # not a resume: start over
        assert again.restored("tags") == {}
        assert not (tmp_path / "tags.jsonl").exists()

    @pytest.mark.parametrize("breakage", [
        lambda d: (d / "manifest.json").unlink(),
        lambda d: (d / "manifest.json").write_text("{torn"),
        lambda d: (d / "manifest.json").write_text(json.dumps(
            {"format": 999, "version": "x", "fingerprint": "fp"})),
    ])
    def test_unusable_manifest_marks_stale(self, tmp_path, breakage):
        store = CheckpointStore(tmp_path, "fp")
        store.open(resume=False)
        store.append("tags", "a", {"v": 1})
        store.close()
        breakage(tmp_path)
        resumed = CheckpointStore(tmp_path, "fp")
        resumed.open(resume=True)
        assert resumed.health.stale
        assert resumed.restored("tags") == {}

    def test_fingerprint_mismatch_marks_stale(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp-a")
        store.open(resume=False)
        store.close()
        resumed = CheckpointStore(tmp_path, "fp-b")
        resumed.open(resume=True)
        assert resumed.health.stale
        assert "fingerprint" in resumed.health.stale_reason


class TestConfigFingerprint:
    def test_stable_for_same_config(self):
        assert (config_fingerprint(_config())
                == config_fingerprint(_config()))

    def test_seed_changes_fingerprint(self):
        assert (config_fingerprint(_config())
                != config_fingerprint(_config(seed=8)))

    def test_crash_point_and_checkpoint_knobs_excluded(self, tmp_path):
        # A resume run drops --crash-at; it must still adopt the
        # pre-crash checkpoints.
        crashed = _config(checkpoint_dir=tmp_path,
                          crash=CrashPoint(at="mid-tag"))
        resumed = _config(checkpoint_dir=tmp_path, resume=True)
        assert (config_fingerprint(crashed)
                == config_fingerprint(resumed))
        assert (config_fingerprint(_config())
                == config_fingerprint(resumed))


# ----------------------------------------------------------------------
# Store persistence: atomicity + the typed corruption contract.
# ----------------------------------------------------------------------

def _sample_database(with_quarantine: bool) -> FailureDatabase:
    quarantine = Quarantine()
    if with_quarantine:
        quarantine.add(QuarantineEntry(
            unit_id="doc-9", stage="parse", error_type="ChaosError",
            message="boom", traceback="Traceback ..."))
    return FailureDatabase(
        disengagements=[DisengagementRecord(
            manufacturer="Nissan", month="2016-03",
            description="planner hesitated", reaction_time_s=0.8,
            source_document="doc-1", source_line=4)],
        accidents=[AccidentRecord(
            manufacturer="Nissan", month="2016-04",
            description="rear-ended at a light", av_speed_mph=0.0,
            other_speed_mph=8.0)],
        mileage=[MonthlyMileage(
            manufacturer="Nissan", month="2016-03", miles=512.5,
            vehicle_id="n1")],
        quarantine=quarantine,
    )


class TestDatabasePersistence:
    @pytest.mark.parametrize("with_quarantine", [False, True])
    def test_save_load_round_trip(self, tmp_path, with_quarantine):
        db = _sample_database(with_quarantine)
        path = tmp_path / "db.json"
        db.save(path)
        assert FailureDatabase.load(path).to_json() == db.to_json()
        sidecar = tmp_path / "db.json.sha256"
        assert sidecar.exists()
        assert sidecar.read_text().split()[0] == sha256_text(
            path.read_text())

    def test_crash_mid_save_never_tears_existing_file(self, tmp_path):
        path = tmp_path / "db.json"
        _sample_database(False).save(path)
        before = path.read_text()
        crash = CrashController(CrashPoint(at="save"))
        with pytest.raises(SimulatedCrash):
            _sample_database(True).save(path, crash=crash)
        assert path.read_text() == before
        assert FailureDatabase.load(path).to_json() == before

    def test_load_without_sidecar_still_works(self, tmp_path):
        db = _sample_database(False)
        path = tmp_path / "db.json"
        path.write_text(db.to_json())  # pre-atomic-save era file
        assert FailureDatabase.load(path).to_json() == db.to_json()

    def test_checksum_mismatch_raises_typed_error(self, tmp_path):
        path = tmp_path / "db.json"
        _sample_database(False).save(path)
        text = path.read_text().replace("Nissan", "Datsun")
        path.write_text(text)
        with pytest.raises(CorruptDatabaseError) as info:
            FailureDatabase.load(path)
        assert info.value.reason == "checksum mismatch"
        assert info.value.path == str(path)

    def test_truncated_json_raises_typed_error(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text(_sample_database(False).to_json()[:40])
        with pytest.raises(CorruptDatabaseError) as info:
            FailureDatabase.load(path)
        assert "invalid JSON" in info.value.reason
        assert info.value.path == str(path)

    def test_missing_section_names_the_key(self):
        with pytest.raises(CorruptDatabaseError) as info:
            FailureDatabase.from_json(
                '{"disengagements": [], "accidents": []}')
        assert "mileage" in str(info.value)

    def test_bad_entry_names_section_and_index(self):
        payload = json.loads(_sample_database(False).to_json())
        del payload["disengagements"][0]["manufacturer"]
        with pytest.raises(CorruptDatabaseError) as info:
            FailureDatabase.from_json(json.dumps(payload))
        assert "disengagements" in str(info.value)
        assert "entry 0" in str(info.value)

    def test_non_list_section_rejected(self):
        with pytest.raises(CorruptDatabaseError):
            FailureDatabase.from_json(
                '{"disengagements": {}, "accidents": [],'
                ' "mileage": []}')

    def test_corrupt_database_error_is_repro_error(self):
        assert issubclass(CorruptDatabaseError, ReproError)
        with pytest.raises(ReproError):
            FailureDatabase.from_json("not json at all")


# ----------------------------------------------------------------------
# Kill points.
# ----------------------------------------------------------------------

class TestCrashPoint:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError):
            CrashPoint(at="lunchtime")

    def test_controller_fires_only_at_its_point(self):
        crash = CrashController(CrashPoint(at="normalize"))
        crash.reached("dictionary")  # no-op
        with pytest.raises(SimulatedCrash):
            crash.reached("normalize")

    def test_disabled_controller_is_noop(self):
        crash = CrashController(None)
        for point in CRASH_POINTS:
            crash.reached(point)

    def test_simulated_crash_evades_exception_handlers(self):
        # The resilience layer catches Exception; a hard crash must
        # not be quarantinable.
        assert not issubclass(SimulatedCrash, Exception)


# ----------------------------------------------------------------------
# The acceptance scenario: crash -> resume -> byte-identical database.
# ----------------------------------------------------------------------

class TestCrashResume:
    @pytest.mark.parametrize(
        "point", [p for p in CRASH_POINTS if p != "save"])
    def test_resume_is_byte_identical_after_crash(
            self, tmp_path, corpus, clean_json, point):
        with pytest.raises(SimulatedCrash):
            process_corpus(corpus, _config(
                checkpoint_dir=tmp_path, crash=CrashPoint(at=point)))
        result = process_corpus(corpus, _config(
            checkpoint_dir=tmp_path, resume=True))
        assert result.database.to_json() == clean_json
        checkpoint = result.diagnostics.health.checkpoint
        assert checkpoint.enabled and checkpoint.resumed
        assert not checkpoint.stale

    def test_resume_after_save_crash(self, tmp_path, corpus,
                                     clean_json):
        out = tmp_path / "db.json"
        result = process_corpus(corpus, _config(
            checkpoint_dir=tmp_path / "ckpt",
            crash=CrashPoint(at="save")))
        with pytest.raises(SimulatedCrash):
            result.database.save(
                out, crash=CrashController(result.config.crash))
        assert not out.exists()  # only temp debris, never a torn file
        resumed = process_corpus(corpus, _config(
            checkpoint_dir=tmp_path / "ckpt", resume=True))
        resumed.database.save(out)
        assert out.read_text() == clean_json

    def test_clean_checkpointed_run_matches_plain_run(
            self, tmp_path, corpus, clean_json):
        result = process_corpus(
            corpus, _config(checkpoint_dir=tmp_path))
        assert result.database.to_json() == clean_json
        checkpoint = result.diagnostics.health.checkpoint
        assert checkpoint.restored_units == 0
        assert checkpoint.recomputed_units > 0

    def test_resume_restores_instead_of_recomputing(
            self, tmp_path, corpus, clean_json):
        process_corpus(corpus, _config(checkpoint_dir=tmp_path))
        result = process_corpus(corpus, _config(
            checkpoint_dir=tmp_path, resume=True))
        assert result.database.to_json() == clean_json
        checkpoint = result.diagnostics.health.checkpoint
        assert checkpoint.recomputed_units == 0
        assert checkpoint.restored_units > 0
        assert checkpoint.artifacts_restored == 2
        assert result.diagnostics.parse.documents_restored > 0

    def test_resume_with_chaos_quarantine_byte_identical(
            self, tmp_path, corpus):
        chaos = ChaosConfig(stage="parse", rate=0.5)
        uninterrupted = process_corpus(
            corpus, _config(chaos=chaos)).database
        assert len(uninterrupted.quarantine)  # scenario is exercised
        with pytest.raises(SimulatedCrash):
            process_corpus(corpus, _config(
                chaos=chaos, checkpoint_dir=tmp_path,
                crash=CrashPoint(at="dictionary")))
        resumed = process_corpus(corpus, _config(
            chaos=chaos, checkpoint_dir=tmp_path, resume=True))
        assert resumed.database.to_json() == uninterrupted.to_json()

    def test_no_checkpoint_switch_disables_journaling(
            self, tmp_path, corpus):
        result = process_corpus(corpus, _config(
            checkpoint_dir=tmp_path, checkpoint_enabled=False))
        assert not result.diagnostics.health.checkpoint.enabled
        assert not (tmp_path / "manifest.json").exists()


class TestStaleAndCorruptCheckpoints:
    def test_config_change_invalidates_checkpoint(self, tmp_path,
                                                  corpus):
        with pytest.raises(SimulatedCrash):
            process_corpus(corpus, _config(
                checkpoint_dir=tmp_path, crash=CrashPoint(at="tag")))
        # Resume under a *different* seed: stale, fully recomputed.
        other = process_corpus(corpus, _config(
            seed=8, checkpoint_dir=tmp_path, resume=True))
        checkpoint = other.diagnostics.health.checkpoint
        assert checkpoint.stale
        assert checkpoint.restored_units == 0
        fresh = process_corpus(corpus, _config(seed=8))
        assert other.database.to_json() == fresh.database.to_json()

    def test_corrupted_journal_entry_recomputed(self, tmp_path,
                                                corpus, clean_json):
        with pytest.raises(SimulatedCrash):
            process_corpus(corpus, _config(
                checkpoint_dir=tmp_path, crash=CrashPoint(at="tag")))
        journal = tmp_path / "tags.jsonl"
        lines = journal.read_text().splitlines()
        lines[0] = lines[0].replace(
            '"tag"', '"gat"', 1)  # breaks the line's checksum
        journal.write_text("\n".join(lines) + "\n")
        result = process_corpus(corpus, _config(
            checkpoint_dir=tmp_path, resume=True))
        assert result.database.to_json() == clean_json
        checkpoint = result.diagnostics.health.checkpoint
        assert checkpoint.corrupt_entries >= 1
        assert checkpoint.recomputed_units >= 1

    def test_corrupted_artifact_recomputed(self, tmp_path, corpus,
                                           clean_json):
        with pytest.raises(SimulatedCrash):
            process_corpus(corpus, _config(
                checkpoint_dir=tmp_path, crash=CrashPoint(at="tag")))
        artifact = tmp_path / "dictionary.json"
        artifact.write_text(artifact.read_text()[:-30])  # torn
        result = process_corpus(corpus, _config(
            checkpoint_dir=tmp_path, resume=True))
        assert result.database.to_json() == clean_json
        checkpoint = result.diagnostics.health.checkpoint
        assert checkpoint.corrupt_entries >= 1
        assert checkpoint.artifacts_restored == 1  # normalized only


# ----------------------------------------------------------------------
# Unit ids, validation, and reporting satellites.
# ----------------------------------------------------------------------

class TestRecordId:
    def test_provenance_id_unchanged(self):
        record = DisengagementRecord(
            manufacturer="Nissan", month="2016-01",
            source_document="doc-3", source_line=12)
        assert _record_id(record) == "doc-3:12"

    def test_fallback_id_is_content_based_not_positional(self):
        records = [
            DisengagementRecord(manufacturer="Nissan",
                                month="2016-01", description=text)
            for text in ("lidar dropout", "planner hesitated")
        ]
        before = [_record_id(r) for r in records]
        # An earlier record being filtered/quarantined away must not
        # re-key the survivors.
        assert _record_id(records[1]) == before[1]
        assert before[0] != before[1]
        assert all(rid.startswith("record:") for rid in before)


class TestKnobValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_error_rate": -0.1},
        {"max_error_rate": 1.5},
        {"max_retries": -1},
        {"fallback_threshold": 1.5},
        {"resume": True},  # without a checkpoint_dir
    ])
    def test_pipeline_config_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            PipelineConfig(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"rate": -0.2},
        {"rate": 1.2},
        {"latency_s": -1.0},
        {"kind": "gremlins"},
    ])
    def test_chaos_config_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            ChaosConfig(stage="parse", **kwargs)

    @pytest.mark.parametrize("argv", [
        ["run", "--max-retries", "-1"],
        ["run", "--max-error-rate", "1.5"],
        ["run", "--chaos-stage", "parse", "--chaos-rate", "-0.5"],
        ["run", "--resume"],
    ])
    def test_cli_rejects_bad_flags_with_message(self, argv, capsys):
        from repro.cli import main

        assert main(argv) == 2
        assert "error" in capsys.readouterr().err


class TestHealthReporting:
    def test_summary_carries_checkpoint_section(self, tmp_path,
                                                corpus):
        process_corpus(corpus, _config(checkpoint_dir=tmp_path))
        result = process_corpus(corpus, _config(
            checkpoint_dir=tmp_path, resume=True))
        summary = result.diagnostics.health.summary()
        assert summary["checkpoint"]["enabled"]
        assert summary["checkpoint"]["restored_units"] > 0

    def test_render_run_health_shows_checkpoint_line(self, tmp_path,
                                                     corpus):
        process_corpus(corpus, _config(checkpoint_dir=tmp_path))
        result = process_corpus(corpus, _config(
            checkpoint_dir=tmp_path, resume=True))
        text = render_run_health(result.diagnostics.health,
                                 result.database.quarantine)
        assert "checkpoint:" in text
        assert "restored" in text

    def test_render_run_health_silent_when_disabled(self, corpus):
        result = process_corpus(corpus, _config())
        text = render_run_health(result.diagnostics.health,
                                 result.database.quarantine)
        assert "checkpoint:" not in text


class TestCliCrashResume:
    def test_cli_crash_then_resume_matches_clean_run(self, tmp_path):
        from repro.cli import main

        base = ["run", "--seed", str(SEED), "--manufacturers",
                "Nissan", "--no-ocr"]
        clean_out = tmp_path / "clean.json"
        assert main(base + ["--out", str(clean_out)]) == 0
        ckpt = tmp_path / "ckpt"
        with pytest.raises(SimulatedCrash):
            main(base + ["--checkpoint-dir", str(ckpt),
                         "--crash-at", "mid-tag",
                         "--out", str(tmp_path / "crashed.json")])
        assert not (tmp_path / "crashed.json").exists()
        resumed_out = tmp_path / "resumed.json"
        assert main(base + ["--checkpoint-dir", str(ckpt), "--resume",
                            "--out", str(resumed_out)]) == 0
        assert resumed_out.read_text() == clean_out.read_text()
