"""Tests for the action-window risk model."""

import pytest

from repro.analysis.actionwindow import (
    DetectionModel,
    action_window_risk,
    manufacturer_risk,
    risk_curve,
    time_budget_from_gap,
)
from repro.analysis.fitting import ExponWeibullFit
from repro.errors import AnalysisError, InsufficientDataError

FIT = ExponWeibullFit(a=1.4, c=1.6, scale=0.55, ks_statistic=0.02,
                      n=100)


class TestTimeBudget:
    def test_budget_scales_inversely_with_speed(self):
        slow = time_budget_from_gap(100.0, 10.0)
        fast = time_budget_from_gap(100.0, 40.0)
        assert slow == pytest.approx(4 * fast)

    def test_known_value(self):
        # 44 ft at 30 mph = 1 second.
        assert time_budget_from_gap(44.0, 30.0) == pytest.approx(
            1.0, rel=1e-3)

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            time_budget_from_gap(0.0, 10.0)
        with pytest.raises(AnalysisError):
            time_budget_from_gap(10.0, 0.0)


class TestDetectionModel:
    def test_zero_latency(self):
        import numpy as np
        model = DetectionModel(0.0)
        assert np.all(model.sample(10, np.random.default_rng(0)) == 0)

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            DetectionModel(-1.0)


class TestRisk:
    def test_generous_budget_is_safe(self):
        risk = action_window_risk(FIT, DetectionModel(0.2), 30.0)
        assert risk.exceed_probability < 0.01

    def test_tight_budget_is_risky(self):
        risk = action_window_risk(FIT, DetectionModel(0.5), 0.5)
        assert risk.exceed_probability > 0.5

    def test_risk_monotone_in_budget(self):
        tight = action_window_risk(FIT, DetectionModel(0.5), 1.0)
        loose = action_window_risk(FIT, DetectionModel(0.5), 3.0)
        assert tight.exceed_probability >= loose.exceed_probability

    def test_detection_latency_adds_risk(self):
        fast = action_window_risk(FIT, DetectionModel(0.0), 1.5)
        slow = action_window_risk(FIT, DetectionModel(1.0), 1.5)
        assert slow.exceed_probability > fast.exceed_probability
        assert slow.mean_window_s > fast.mean_window_s

    def test_percentile_above_mean(self):
        risk = action_window_risk(FIT, DetectionModel(0.5), 1.0)
        assert risk.p95_window_s > risk.mean_window_s

    def test_deterministic_per_seed(self):
        a = action_window_risk(FIT, DetectionModel(0.3), 1.0, seed=5)
        b = action_window_risk(FIT, DetectionModel(0.3), 1.0, seed=5)
        assert a.exceed_probability == b.exceed_probability

    def test_invalid_budget(self):
        with pytest.raises(AnalysisError):
            action_window_risk(FIT, DetectionModel(0.5), 0.0)

    def test_risk_curve_increases_with_speed(self):
        curve = risk_curve(FIT, DetectionModel(0.5), gap_feet=60.0,
                           speeds_mph=[5, 15, 30, 50],
                           samples=5000)
        risks = [r for _, r in curve]
        assert risks == sorted(risks)
        assert risks[-1] > risks[0]


class TestManufacturerRisk:
    def test_waymo_risk_from_database(self, db):
        risk = manufacturer_risk(db, "Waymo", budget_s=1.5,
                                 samples=5000)
        assert 0.0 <= risk.exceed_probability <= 1.0
        # Mean window = detection (0.5) + Waymo reaction (~0.75).
        assert risk.mean_window_s == pytest.approx(1.25, abs=0.3)

    def test_manufacturer_without_reaction_times(self, db):
        with pytest.raises(InsufficientDataError):
            manufacturer_risk(db, "GMCruise", budget_s=1.0)
