"""Tests for the observability layer: tracing, metrics, exposition.

The load-bearing contract is at the bottom: with tracing and metrics
fully enabled the pipeline's output must stay byte-identical to an
uninstrumented run, and with observability disabled the hot path must
be a true no-op (the null tracer/registry, not a cheap real one).
"""

from __future__ import annotations

import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    STAGE_DURATION,
    UNITS_TOTAL,
    MetricsRegistry,
    NULL_TRACER,
    Observability,
    Tracer,
    default_registry,
    load_trace,
    self_times,
    timed,
)
from repro.obs.metrics import (
    HTTP_LATENCY,
    HTTP_REQUESTS,
    INDEX_RECORDS,
    QUERY_CACHE_HITS,
    TOKEN_CACHE_HITS,
)
from repro.pipeline import PipelineConfig, process_corpus
from repro.query import QueryServer

THREADS = 8
STAGES = {"parse-documents", "accident-documents", "normalize",
          "dictionary", "tag", "evaluate"}


@pytest.fixture(scope="module")
def traced_run(small_corpus, tmp_path_factory):
    """A fully instrumented small run plus its trace file."""
    trace_dir = tmp_path_factory.mktemp("trace")
    config = PipelineConfig(seed=7, ocr_enabled=False,
                            dictionary_mode="seed",
                            trace_dir=trace_dir, metrics_enabled=True)
    result = process_corpus(small_corpus, config)
    return result, trace_dir / "trace.jsonl"


class TestTracer:
    def test_spans_nest_and_times_are_monotonic(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        with tracer.span("run", kind="run"):
            with tracer.span("stage-a", kind="stage"):
                with tracer.span("unit-1", kind="unit"):
                    pass
            with tracer.span("stage-b", kind="stage"):
                pass
        tracer.close()
        spans = {s["name"]: s for s in load_trace(tmp_path / "t.jsonl")}
        assert spans["stage-a"]["parent_id"] == spans["run"]["span_id"]
        assert spans["stage-b"]["parent_id"] == spans["run"]["span_id"]
        assert (spans["unit-1"]["parent_id"]
                == spans["stage-a"]["span_id"])
        for span in spans.values():
            assert span["duration_s"] >= 0.0
            assert span["status"] == "ok"
        # A child starts no earlier and ends no later than its parent.
        for child, parent in (("stage-a", "run"), ("unit-1", "stage-a"),
                              ("stage-b", "run")):
            assert (spans[child]["start_s"]
                    >= spans[parent]["start_s"])
            assert (spans[child]["start_s"]
                    + spans[child]["duration_s"]
                    <= spans[parent]["start_s"]
                    + spans[parent]["duration_s"] + 1e-6)

    def test_exception_marks_span_error_and_propagates(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        with pytest.raises(RuntimeError):
            with tracer.span("run", kind="run"):
                with tracer.span("boom", kind="stage"):
                    raise RuntimeError("x")
        tracer.close()
        spans = {s["name"]: s for s in load_trace(tmp_path / "t.jsonl")}
        assert spans["boom"]["status"] == "error"
        assert spans["run"]["status"] == "error"

    def test_partial_file_is_valid_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        with tracer.span("run", kind="run"):
            with tracer.span("stage-a", kind="stage"):
                pass
            tracer.flush()
            # A crash here leaves the flushed prefix on disk: every
            # line parses even though the run span never closed.
            assert [s["name"] for s in load_trace(path)] == ["stage-a"]

    def test_load_trace_skips_garbage_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        with tracer.span("run", kind="run"):
            pass
        tracer.close()
        path.write_text(path.read_text() + "{not json\n",
                        encoding="utf-8")
        assert [s["name"] for s in load_trace(path)] == ["run"]

    def test_self_times_subtracts_children(self, tmp_path):
        spans = [
            {"span_id": 1, "parent_id": None, "name": "run",
             "kind": "run", "start_s": 0.0, "duration_s": 10.0,
             "status": "ok"},
            {"span_id": 2, "parent_id": 1, "name": "tag",
             "kind": "stage", "start_s": 1.0, "duration_s": 8.0,
             "status": "ok"},
            {"span_id": 3, "parent_id": 2, "name": "u1",
             "kind": "unit", "start_s": 1.0, "duration_s": 3.0,
             "status": "ok", "attrs": {"stage": "tag"}},
            {"span_id": 4, "parent_id": 2, "name": "u2",
             "kind": "unit", "start_s": 4.0, "duration_s": 3.0,
             "status": "error", "attrs": {"stage": "tag"}},
        ]
        rows = {r["name"]: r for r in self_times(spans)}
        assert rows["run"]["self_s"] == pytest.approx(2.0)
        assert rows["tag"]["self_s"] == pytest.approx(2.0)
        assert rows["tag units"]["count"] == 2
        assert rows["tag units"]["total_s"] == pytest.approx(6.0)
        assert rows["tag units"]["errors"] == 1
        # Hottest-first ordering by self time.
        names = [r["name"] for r in self_times(spans)]
        assert names[0] == "tag units"


class TestMetricsRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", ("stage",))
        counter.labels("tag").inc(3)
        gauge = registry.gauge("g")
        gauge.set(1.5)
        histogram = registry.histogram("h_seconds",
                                       buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(5.0)
        snapshot = registry.to_dict()
        assert snapshot["c_total"]["series"][0] == {
            "labels": {"stage": "tag"}, "value": 3}
        assert snapshot["g"]["series"][0]["value"] == 1.5
        series = snapshot["h_seconds"]["series"][0]
        assert series["count"] == 2
        assert series["sum"] == pytest.approx(5.05)
        assert series["buckets"] == [1, 0]  # 5.0 only in +Inf

    def test_conflicting_registration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        registry.counter("m")  # idempotent
        with pytest.raises(ValueError):
            registry.gauge("m")

    def test_thread_safety_under_contention(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", labelnames=("worker",))
        histogram = registry.histogram("h_seconds")
        rounds = 2_000

        def hammer(worker: int) -> None:
            series = counter.labels(str(worker))
            for i in range(rounds):
                series.inc()
                counter.labels("shared").inc()
                histogram.observe(i / rounds)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = registry.to_dict()
        values = {tuple(s["labels"].values()): s["value"]
                  for s in snapshot["c_total"]["series"]}
        assert values[("shared",)] == THREADS * rounds
        for worker in range(THREADS):
            assert values[(str(worker),)] == rounds
        assert (snapshot["h_seconds"]["series"][0]["count"]
                == THREADS * rounds)

    def test_merge_adds_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for registry in (a, b):
            registry.counter("c_total", labelnames=("stage",))
            registry.histogram("h_seconds", buckets=(1.0,))
        a.get("c_total").labels("tag").inc(2)
        b.get("c_total").labels("tag").inc(3)
        b.get("c_total").labels("parse").inc(1)
        a.get("h_seconds").observe(0.5)
        b.get("h_seconds").observe(2.0)
        a.merge(b.dump())
        snapshot = a.to_dict()
        values = {s["labels"]["stage"]: s["value"]
                  for s in snapshot["c_total"]["series"]}
        assert values == {"tag": 5, "parse": 1}
        series = snapshot["h_seconds"]["series"][0]
        assert series["count"] == 2
        assert series["sum"] == pytest.approx(2.5)

    def test_dump_survives_pickling(self):
        import pickle

        registry = MetricsRegistry()
        registry.counter("c_total", labelnames=("stage",)).labels(
            "tag").inc()
        dump = pickle.loads(pickle.dumps(registry.dump()))
        other = MetricsRegistry()
        other.counter("c_total", labelnames=("stage",))
        other.merge(dump)
        assert (other.to_dict()["c_total"]["series"][0]["value"] == 1)

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "a counter",
                         ("stage",)).labels("tag").inc(2)
        registry.histogram("h_seconds",
                           buckets=(0.1, 1.0)).observe(0.5)
        text = registry.render_prometheus()
        assert "# TYPE c_total counter" in text
        assert 'c_total{stage="tag"} 2' in text
        assert 'h_seconds_bucket{le="1.0"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_count 1" in text

    def test_timed_block_helper(self):
        registry = MetricsRegistry()
        with timed("warmup", registry=registry):
            pass
        series = registry.to_dict()["repro_block_seconds"]["series"]
        assert series[0]["labels"] == {"block": "warmup"}
        assert series[0]["count"] == 1


class TestPipelineInstrumentation:
    def test_trace_covers_every_stage_and_unit(self, traced_run,
                                               small_corpus):
        result, trace_path = traced_run
        spans = load_trace(trace_path)
        by_kind: dict[str, list[dict]] = {}
        for span in spans:
            by_kind.setdefault(span["kind"], []).append(span)
        assert len(by_kind["run"]) == 1
        assert {s["name"] for s in by_kind["stage"]} == STAGES
        unit_stages = {s["attrs"]["stage"] for s in by_kind["unit"]}
        assert unit_stages == {"parse-documents",
                               "accident-documents", "tag"}
        tagged = [s for s in by_kind["unit"]
                  if s["attrs"]["stage"] == "tag"]
        assert len(tagged) == len(result.database.disengagements)

    def test_metrics_snapshot_on_diagnostics(self, traced_run):
        result, _ = traced_run
        metrics = result.diagnostics.metrics
        assert metrics is not None
        durations = {s["labels"]["stage"]: s
                     for s in metrics[STAGE_DURATION]["series"]}
        assert set(durations) == STAGES
        assert all(s["count"] == 1 for s in durations.values())
        units = {s["labels"]["stage"]: s["value"]
                 for s in metrics[UNITS_TOTAL]["series"]}
        assert units["tag"] == len(result.database.disengagements)
        hits = metrics[TOKEN_CACHE_HITS]["series"]
        assert hits and hits[0]["value"] > 0

    def test_instrumented_output_is_byte_identical(self, traced_run,
                                                   small_corpus):
        result, _ = traced_run
        plain = process_corpus(
            small_corpus, PipelineConfig(seed=7, ocr_enabled=False,
                                         dictionary_mode="seed"))
        assert plain.database.to_json() == result.database.to_json()

    def test_disabled_mode_is_a_true_noop(self, small_corpus):
        config = PipelineConfig(seed=7, ocr_enabled=False,
                                dictionary_mode="seed")
        obs = Observability.for_run(config)
        assert not obs.active
        assert obs.tracer is NULL_TRACER
        assert obs.registry is None
        span = obs.tracer.span("run")
        with span:
            pass
        assert obs.tracer.span("again") is span  # shared null object
        result = process_corpus(small_corpus, config)
        assert result.diagnostics.metrics is None
        assert result.diagnostics.trace_path is None


class TestExposition:
    def test_metrics_endpoint_parses_with_stable_names(self, small_db):
        registry = MetricsRegistry()
        with QueryServer(small_db, port=0,
                         registry=registry) as server:
            for path in ("/query?metric=dpm", "/query?metric=dpm",
                         "/nope"):
                try:
                    urllib.request.urlopen(server.url + path,
                                           timeout=10).read()
                except urllib.error.HTTPError:
                    pass
            response = urllib.request.urlopen(
                server.url + "/metrics", timeout=10)
            assert response.headers["Content-Type"].startswith(
                "text/plain")
            text = response.read().decode()
        families: dict[str, str] = {}
        for line in text.splitlines():
            assert line, "blank line in exposition"
            if line.startswith("# TYPE"):
                _, _, name, kind = line.split()
                families[name] = kind
            elif not line.startswith("#"):
                name, _, value = line.rpartition(" ")
                float(value)  # every sample value parses
                assert name.split("{")[0]
        assert families[HTTP_REQUESTS] == "counter"
        assert families[HTTP_LATENCY] == "histogram"
        assert families[QUERY_CACHE_HITS] == "gauge"
        assert families[INDEX_RECORDS] == "gauge"
        # Legacy /query hits fold into the canonical /v1 label.
        assert (f'{HTTP_REQUESTS}{{route="/v1/query",status="200"}} 2'
                in text)
        assert 'route="<unknown>"' in text  # 404s fold into one label
        buckets = [l for l in text.splitlines()
                   if l.startswith(f"{HTTP_LATENCY}_bucket")
                   and 'route="/v1/query"' in l]
        assert len(buckets) == len(DEFAULT_BUCKETS) + 1  # +Inf

    def test_default_registry_is_shared(self):
        assert default_registry() is default_registry()
