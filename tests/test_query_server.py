"""Tests for the embedded HTTP API, including the concurrency
contract: ≥8 threads hammering the engine and the server must get
results identical to the serial path, with the cache staying
consistent throughout.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import __version__
from repro.pipeline.checkpoint import canonical_json
from repro.query import Query, QueryEngine, QueryServer

THREADS = 8
ROUNDS = 5


@pytest.fixture(scope="module")
def engine(small_db):
    return QueryEngine(small_db)


@pytest.fixture(scope="module")
def server(engine):
    with QueryServer(engine, port=0) as running:
        yield running


def _get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as res:
        return res.status, json.loads(res.read())


def _post(server, path, payload):
    request = urllib.request.Request(
        server.url + path, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=10) as res:
        return res.status, json.loads(res.read())


def _error(server, path, method="GET", payload=None):
    try:
        if method == "POST":
            _post(server, path, payload)
        else:
            _get(server, path)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())
    raise AssertionError(f"{path} unexpectedly succeeded")


class TestEndpoints:
    def test_healthz(self, server, engine):
        status, body = _get(server, "/healthz")
        assert status == 200
        assert body == {"status": "ok", "version": __version__,
                        "fingerprint": engine.fingerprint}

    def test_stats(self, server, engine):
        status, body = _get(server, "/stats")
        assert status == 200
        assert body["fingerprint"] == engine.fingerprint
        assert {"hits", "misses", "evictions"} <= set(body["cache"])
        assert body["index"]["disengagements"] == len(
            engine.db.disengagements)

    def test_manufacturers(self, server, small_db):
        status, body = _get(server, "/manufacturers")
        assert status == 200
        assert body["manufacturers"] == small_db.manufacturers()

    def test_query_get_matches_engine(self, server, engine):
        status, body = _get(server, "/query?metric=dpm")
        assert status == 200
        direct = engine.execute(Query(metric="dpm"))
        assert canonical_json(body["result"]) == canonical_json(
            direct.value)
        assert body["fingerprint"] == engine.fingerprint

    def test_query_get_with_filters(self, server, engine, small_db):
        name = small_db.manufacturers()[0]
        status, body = _get(
            server,
            f"/query?metric=count&group_by=tag&manufacturer={name}")
        assert status == 200
        direct = engine.execute(Query(
            metric="count", group_by="tag", manufacturers=(name,)))
        assert body["result"] == direct.value

    def test_query_post(self, server, engine):
        payload = {"metric": "tags"}
        status, body = _post(server, "/query", payload)
        assert status == 200
        assert canonical_json(body["result"]) == canonical_json(
            engine.execute(Query(metric="tags")).value)

    def test_metric_shortcuts(self, server, engine):
        for name in ("dpm", "apm"):
            status, body = _get(server, f"/metrics/{name}")
            assert status == 200
            assert canonical_json(body["result"]) == canonical_json(
                engine.execute(Query(metric=name)).value)
        status, body = _get(server, "/metrics/dpa")
        assert status == 200
        assert body["result"] == engine.execute(
            Query(metric="dpa")).value

    def test_cached_flag_over_http(self, server):
        _get(server, "/query?metric=modalities")
        _, body = _get(server, "/query?metric=modalities")
        assert body["cached"] is True


class TestErrors:
    def test_unknown_path_404(self, server):
        code, body = _error(server, "/nope")
        assert code == 404
        assert body["error"]["code"] == "not_found"
        assert "unknown path" in body["error"]["message"]

    def test_unknown_metric_endpoint_404(self, server):
        code, body = _error(server, "/v1/metrics/frobnicate")
        assert code == 404
        assert body["error"]["code"] == "not_found"
        assert "unknown metric" in body["error"]["message"]

    def test_bad_query_400(self, server):
        code, body = _error(server, "/query?metric=frobnicate")
        assert code == 400
        assert body["error"]["code"] == "invalid_query"
        assert "unknown metric" in body["error"]["message"]

    def test_unknown_parameter_400(self, server):
        code, body = _error(server, "/query?metric=dpm&frob=1")
        assert code == 400
        assert "unknown query parameter" in body["error"]["message"]

    def test_metric_shortcut_rejects_metric_param(self, server):
        code, body = _error(server, "/metrics/dpm?metric=apm")
        assert code == 400
        assert "fixes the metric" in body["error"]["message"]

    def test_post_bad_json_400(self, server):
        request = urllib.request.Request(
            server.url + "/query", data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_post_wrong_path_404(self, server):
        code, body = _error(server, "/healthz", method="POST",
                            payload={})
        assert code == 404

    def test_insufficient_data_422(self, small_db):
        from repro.pipeline.store import FailureDatabase

        empty_accidents = FailureDatabase(
            disengagements=list(small_db.disengagements),
            mileage=list(small_db.mileage))
        with QueryServer(empty_accidents, port=0) as server:
            code, body = _error(server, "/metrics/apm")
            assert code == 422
            assert body["error"]["code"] == "insufficient_data"
            assert "no accidents" in body["error"]["message"]


class TestConcurrency:
    """≥8 threads, identical-to-serial results, consistent cache."""

    QUERIES = [
        Query(metric="dpm"),
        Query(metric="apm"),
        Query(metric="tags"),
        Query(metric="categories"),
        Query(metric="count", group_by="tag"),
        Query(metric="miles", group_by="month"),
        Query(metric="trend"),
        Query(metric="modalities"),
    ]

    def test_engine_hammer_matches_serial(self, small_db):
        # A fresh engine per test: the serial pass runs on a second
        # fresh engine so caching cannot mask a miscomputation.
        engine = QueryEngine(small_db)
        serial = {q.canonical():
                  canonical_json(QueryEngine(small_db).execute(q).value)
                  for q in self.QUERIES}
        failures: list[str] = []
        barrier = threading.Barrier(THREADS)

        def worker(offset: int) -> None:
            barrier.wait()
            for round_number in range(ROUNDS):
                for i, query in enumerate(self.QUERIES):
                    q = self.QUERIES[(offset + i) % len(self.QUERIES)]
                    got = canonical_json(engine.execute(q).value)
                    if got != serial[q.canonical()]:
                        failures.append(
                            f"{q.metric}: thread {offset} round "
                            f"{round_number} diverged")

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        stats = engine.stats()["cache"]
        # First-round races may recompute a fresh key concurrently
        # (benign: identical value, last write wins), so misses are
        # bounded by threads × distinct queries, not by distinct
        # queries alone — and after the first round everything hits.
        assert stats["misses"] <= THREADS * len(self.QUERIES)
        assert stats["hits"] >= (ROUNDS - 1) * THREADS * len(
            self.QUERIES)
        assert (stats["hits"] + stats["misses"]
                == THREADS * ROUNDS * len(self.QUERIES))

    def test_http_hammer_matches_serial(self, server, small_db):
        serial = {
            q.canonical():
            canonical_json(QueryEngine(small_db).execute(q).value)
            for q in self.QUERIES}
        failures: list[str] = []
        barrier = threading.Barrier(THREADS)

        def worker(offset: int) -> None:
            barrier.wait()
            try:
                for i in range(ROUNDS * len(self.QUERIES)):
                    q = self.QUERIES[(offset + i) % len(self.QUERIES)]
                    status, body = _post(server, "/query", q.to_dict())
                    if status != 200:
                        failures.append(f"status {status}")
                    elif (canonical_json(body["result"])
                          != serial[q.canonical()]):
                        failures.append(f"{q.metric} diverged")
            except Exception as exc:  # pragma: no cover
                failures.append(f"thread {offset}: {exc!r}")

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures

    def test_index_not_torn_under_reads(self, small_db):
        # Readers racing on a shared engine see one immutable index:
        # the identity of the index object never changes mid-read.
        engine = QueryEngine(small_db)
        index_ids = set()
        barrier = threading.Barrier(THREADS)

        def worker() -> None:
            barrier.wait()
            for _ in range(50):
                index_ids.add(id(engine.index))
                engine.execute(Query(metric="count"))

        threads = [threading.Thread(target=worker)
                   for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(index_ids) == 1
