"""Tests for the OCR substrate: confusion channel, scanner, engine,
correction, and manual fallback."""

import numpy as np
import pytest

from repro.errors import OcrError
from repro.ocr import (
    ConfusionModel,
    ManualTranscriptionQueue,
    OcrCorrector,
    OcrEngine,
    Scanner,
    ScannerProfile,
    apply_fallback,
)
from repro.ocr.document import (
    LINES_PER_PAGE,
    ScannedPage,
    page_count,
    paginate,
)
from repro.ocr.scanner import PERFECT_PROFILE


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestConfusionModel:
    def test_perfect_quality_is_lossless(self, rng):
        model = ConfusionModel()
        line = "Software module froze. 1/4/16 — 1:25 PM"
        text, corruptions = model.corrupt_line(line, 1.0, rng)
        assert text == line
        assert corruptions == 0

    def test_low_quality_corrupts(self, rng):
        model = ConfusionModel()
        line = "Software module froze and the driver disengaged" * 3
        text, corruptions = model.corrupt_line(line, 0.1, rng)
        assert corruptions > 0
        assert text != line

    def test_protected_separators_survive(self, rng):
        model = ConfusionModel()
        line = "a — b | c; d"
        for _ in range(50):
            text, _ = model.corrupt_line(line, 0.05, rng)
            assert text.count("—") == 1
            assert text.count("|") == 1
            assert text.count(";") == 1

    def test_digits_and_punctuation_never_dropped(self, rng):
        model = ConfusionModel()
        line = "12:34:56 0.75"
        for _ in range(100):
            text, _ = model.corrupt_line(line, 0.05, rng)
            # Substitutions may change glyphs but length is preserved
            # because only letters can be dropped.
            assert len(text) == len(line)

    def test_corruption_count_matches_reported(self, rng):
        model = ConfusionModel(drop_rate=0.0)
        line = "O0O0O0O0O0" * 4
        text, corruptions = model.corrupt_line(line, 0.2, rng)
        differing = sum(1 for a, b in zip(line, text) if a != b)
        assert differing == corruptions


class TestScanner:
    def test_page_qualities_in_range(self, rng):
        scanner = Scanner()
        document = scanner.scan("doc", ["line"] * 500, rng)
        for page in document.pages:
            assert 0.0 < page.quality <= 1.0

    def test_bad_pages_appear_at_configured_rate(self, rng):
        profile = ScannerProfile(bad_page_rate=0.5)
        scanner = Scanner(profile)
        document = scanner.scan("doc", ["line"] * (LINES_PER_PAGE * 200),
                                rng)
        bad = sum(1 for p in document.pages if p.quality < 0.5)
        assert 0.3 < bad / len(document.pages) < 0.7

    def test_perfect_profile_never_degrades(self, rng):
        scanner = Scanner(PERFECT_PROFILE)
        document = scanner.scan("doc", ["line"] * 200, rng)
        assert all(p.quality > 0.99 for p in document.pages)

    def test_invalid_profile_rejected(self):
        with pytest.raises(OcrError):
            ScannerProfile(bad_page_rate=1.5)
        with pytest.raises(OcrError):
            ScannerProfile(bad_low=0.9, bad_high=0.2)


class TestDocumentModel:
    def test_page_count(self):
        assert page_count(0) == 1
        assert page_count(1) == 1
        assert page_count(LINES_PER_PAGE) == 1
        assert page_count(LINES_PER_PAGE + 1) == 2

    def test_paginate_partitions_lines(self):
        lines = [f"line {i}" for i in range(95)]
        qualities = [0.9] * page_count(len(lines))
        document = paginate("doc", lines, qualities)
        assert document.line_count == 95
        assert document.true_lines() == lines

    def test_paginate_rejects_missing_qualities(self):
        with pytest.raises(OcrError):
            paginate("doc", ["x"] * 100, [0.9])

    def test_page_rejects_bad_quality(self):
        with pytest.raises(OcrError):
            ScannedPage(page_number=0, true_lines=["x"], quality=0.0)


class TestEngine:
    def test_recognize_preserves_line_count(self, rng):
        scanner = Scanner()
        lines = [f"event number {i} happened" for i in range(100)]
        document = scanner.scan("doc", lines, rng)
        result = OcrEngine().recognize(document, rng)
        assert len(result.lines) == len(lines)

    def test_confidence_tracks_quality(self, rng):
        engine = OcrEngine()
        line = "The AV did not see the lead vehicle ahead" * 2
        good = paginate("good", [line] * 40, [0.98])
        bad = paginate("bad", [line] * 40, [0.15])
        good_conf = engine.recognize(good, rng).mean_confidence
        bad_conf = engine.recognize(bad, rng).mean_confidence
        assert good_conf > bad_conf + 0.2

    def test_empty_document(self, rng):
        result = OcrEngine().recognize(
            paginate("doc", [], []), rng)
        assert result.lines == []
        assert result.mean_confidence == 1.0


class TestCorrector:
    @pytest.fixture(scope="class")
    def corrector(self):
        return OcrCorrector()

    def test_numeric_span_repair(self, corrector):
        assert corrector.correct_line("O3/l4/2O15") == "03/14/2015"

    def test_word_repair_unique_candidate(self, corrector):
        assert "disengaged" in corrector.correct_line(
            "driver disengagcd safely")

    def test_known_words_untouched(self, corrector):
        line = "Software module froze"
        assert corrector.correct_line(line) == line

    def test_month_abbreviations_protected(self, corrector):
        # "Sep" must not be "repaired" into "See".
        assert corrector.correct_line("Sep-14") == "Sep-14"

    def test_digit_in_word_repair(self, corrector):
        assert corrector.correct_line("p1anned test") == "planned test"
        assert corrector.correct_line("SECTI0N 2") == "SECTION 2"

    def test_digraph_repair(self, corrector):
        assert corrector.correct_line(
            "Autonornous miles") == "Autonomous miles"

    def test_vehicle_ids_not_mangled(self, corrector):
        line = "Autonomous miles May-16 car AV-001: 28342.1"
        assert corrector.correct_line(line) == line

    def test_ambiguous_words_left_alone(self, corrector):
        # "cor" could be car/for/nor...: too ambiguous to repair.
        assert corrector.correct_line("cor") == "cor"


class TestFallback:
    def test_low_confidence_pages_get_transcribed(self, rng):
        lines = ["The perception system failed to detect a cyclist"] * 80
        scanner = Scanner(ScannerProfile(bad_page_rate=1.0,
                                         bad_low=0.05, bad_high=0.1))
        document = scanner.scan("doc", lines, rng)
        result = OcrEngine().recognize(document, rng)
        queue = ManualTranscriptionQueue(threshold=0.75)
        merged = apply_fallback(document, result, queue)
        assert merged == lines  # human transcription restores truth
        assert queue.pages_transcribed == len(document.pages)

    def test_high_confidence_pages_keep_ocr_text(self, rng):
        lines = ["clean text line"] * 40
        document = paginate("doc", lines, [1.0])
        result = OcrEngine().recognize(document, rng)
        queue = ManualTranscriptionQueue(threshold=0.5)
        merged = apply_fallback(document, result, queue)
        assert queue.pages_transcribed == 0
        assert len(merged) == 40

    def test_queue_accounts_effort(self, rng):
        lines = ["text"] * 80
        document = paginate("doc", lines, [0.1, 0.95])
        result = OcrEngine().recognize(document, rng)
        queue = ManualTranscriptionQueue(threshold=0.75)
        apply_fallback(document, result, queue)
        assert queue.pages_transcribed == 1
        assert queue.lines_transcribed == 40
        assert queue.documents_touched == {"doc"}
