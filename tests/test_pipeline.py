"""Tests for pipeline configuration, the failure database store, and
the end-to-end runner."""

import pytest

from repro.pipeline import (
    FailureDatabase,
    PipelineConfig,
    process_corpus,
    run_pipeline,
)
from repro.synth import generate_corpus
from repro.taxonomy import FaultTag, Modality


class TestConfig:
    def test_defaults(self):
        config = PipelineConfig()
        assert config.ocr_enabled
        assert config.correction_enabled
        assert config.dictionary_mode == "expanded"
        assert not config.drop_planned

    def test_invalid_dictionary_mode(self):
        with pytest.raises(ValueError):
            PipelineConfig(dictionary_mode="telepathy")


class TestStore:
    def test_grouping_helpers(self, db):
        grouped = db.disengagements_by_manufacturer()
        assert sum(len(v) for v in grouped.values()) == \
            len(db.disengagements)
        miles = db.miles_by_manufacturer()
        assert sum(miles.values()) == pytest.approx(db.total_miles)

    def test_monthly_views_consistent(self, db):
        total = sum(db.monthly_miles("Waymo").values())
        assert total == pytest.approx(
            db.miles_by_manufacturer()["Waymo"])
        events = sum(db.monthly_disengagements("Waymo").values())
        assert events == len(
            db.disengagements_by_manufacturer()["Waymo"])

    def test_vehicle_views(self, db):
        vehicle_miles = db.vehicle_miles("Nissan")
        assert vehicle_miles
        assert all(m > 0 for m in vehicle_miles.values())

    def test_reaction_time_filters(self, db):
        all_times = db.reaction_times()
        waymo_times = db.reaction_times("Waymo")
        assert len(waymo_times) < len(all_times)
        assert all(t > 0 for t in all_times)

    def test_json_roundtrip(self, db):
        clone = FailureDatabase.from_json(db.to_json())
        assert len(clone.disengagements) == len(db.disengagements)
        assert len(clone.accidents) == len(db.accidents)
        assert clone.total_miles == pytest.approx(db.total_miles)
        original = db.disengagements[0]
        restored = clone.disengagements[0]
        assert restored.manufacturer == original.manufacturer
        assert restored.tag == original.tag
        assert restored.modality == original.modality
        assert restored.event_date == original.event_date

    def test_save_load(self, db, tmp_path):
        path = tmp_path / "database.json"
        db.save(path)
        clone = FailureDatabase.load(path)
        assert len(clone.disengagements) == len(db.disengagements)


class TestRunner:
    def test_full_run_recovers_most_records(self, corpus,
                                            pipeline_result):
        db = pipeline_result.database
        truth = len(corpus.truth_disengagements())
        assert len(db.disengagements) >= 0.98 * truth
        assert len(db.accidents) == 42
        assert db.total_miles == pytest.approx(1116605, rel=0.03)

    def test_all_records_tagged(self, db):
        assert all(r.tag is not None for r in db.disengagements)
        assert all(r.category is not None for r in db.disengagements)

    def test_tagging_accuracy_high(self, pipeline_result):
        report = pipeline_result.diagnostics.tagging
        assert report is not None
        assert report.tag_accuracy > 0.95
        assert report.category_accuracy > 0.95

    def test_diagnostics_populated(self, pipeline_result):
        diagnostics = pipeline_result.diagnostics
        assert diagnostics.ocr.documents > 0
        assert diagnostics.ocr.mean_confidence > 0.9
        assert diagnostics.parse.disengagements_parsed > 5000
        assert diagnostics.dictionary_entries > 100
        assert diagnostics.filters.planned_annotated > 2000

    def test_ocr_disabled_is_lossless(self):
        corpus = generate_corpus(seed=5, manufacturers=["Nissan"])
        config = PipelineConfig(seed=5, ocr_enabled=False)
        result = process_corpus(corpus, config)
        assert len(result.database.disengagements) == 135
        assert result.database.total_miles == pytest.approx(
            5584.4, rel=1e-3)

    def test_seed_dictionary_mode(self):
        corpus = generate_corpus(seed=5, manufacturers=["Nissan"])
        config = PipelineConfig(seed=5, ocr_enabled=False,
                                dictionary_mode="seed")
        result = process_corpus(corpus, config)
        assert result.diagnostics.tagging.tag_accuracy > 0.9

    def test_drop_planned_removes_bosch(self):
        corpus = generate_corpus(seed=5, manufacturers=["Bosch"])
        config = PipelineConfig(seed=5, ocr_enabled=False,
                                drop_planned=True)
        result = process_corpus(corpus, config)
        assert result.database.disengagements == []

    def test_truth_attachment_alignment(self, db):
        # Every record with truth must have been matched by line, and
        # the narrative-based tag should usually agree.
        with_truth = [r for r in db.disengagements
                      if r.truth_tag is not None]
        assert len(with_truth) >= 0.99 * len(db.disengagements)

    def test_run_pipeline_wrapper(self):
        result = run_pipeline(PipelineConfig(
            seed=11, manufacturers=["Tesla"]))
        db = result.database
        assert set(db.manufacturers()) == {"Tesla"}
        assert len(db.disengagements) >= 175  # 182 minus OCR residue
        unknown = sum(1 for r in db.disengagements
                      if r.tag is FaultTag.UNKNOWN)
        assert unknown / len(db.disengagements) > 0.9

    def test_modalities_preserved_through_pipeline(self, db):
        bosch = db.disengagements_by_manufacturer()["Bosch"]
        assert all(r.modality is Modality.PLANNED for r in bosch)
