"""Fast tests for the across-seed sensitivity sweep (small subset)."""

import pytest

from repro.analysis.validity import SeedSweepResult, seed_sensitivity
from repro.errors import InsufficientDataError

SUBSET = ["Nissan", "Volkswagen"]


@pytest.fixture(scope="module")
def sweep():
    return seed_sensitivity([11, 12], manufacturers=SUBSET)


def test_sweep_covers_headline_metrics(sweep):
    assert {"ml_design_share", "perception_share", "pooled_r",
            "mean_reaction_time_s", "tag_accuracy"} == set(sweep)


def test_each_metric_has_one_value_per_seed(sweep):
    for result in sweep.values():
        assert len(result.values) == 2


def test_statistics_consistent(sweep):
    for result in sweep.values():
        assert min(result.values) <= result.mean <= max(result.values)
        assert result.spread >= 0
        assert result.std >= 0


def test_tag_accuracy_stable_across_seeds(sweep):
    accuracy = sweep["tag_accuracy"]
    assert accuracy.mean > 0.9
    assert accuracy.spread < 0.1


def test_single_value_has_zero_std():
    result = SeedSweepResult(metric="m", values=(1.0,))
    assert result.std == 0.0
    assert result.spread == 0.0


def test_empty_seed_list_rejected():
    with pytest.raises(InsufficientDataError):
        seed_sensitivity([])
