"""Tests for narrative generation and accident synthesis."""

import numpy as np
import pytest

from repro.synth.accidents import synthesize_accidents
from repro.synth.fleet import build_roster
from repro.synth.narratives import TEMPLATES, NarrativeGenerator
from repro.taxonomy import FaultTag, Modality


class TestNarratives:
    @pytest.fixture
    def generator(self):
        return NarrativeGenerator(np.random.default_rng(0))

    def test_every_tag_has_templates(self):
        for tag in FaultTag:
            assert TEMPLATES[tag], f"{tag} has no templates"

    def test_narratives_are_nonempty_for_all_tags(self, generator):
        for tag in FaultTag:
            for _ in range(5):
                assert generator.narrative(tag).strip()

    def test_slots_are_always_filled(self, generator):
        for tag in FaultTag:
            for _ in range(20):
                assert "{x}" not in generator.narrative(tag)

    def test_watchdog_appears_in_hang_crash(self, generator):
        texts = [generator.narrative(FaultTag.HANG_CRASH)
                 for _ in range(10)]
        assert all("watchdog" in t.lower() for t in texts)

    def test_unknown_narratives_are_vague(self, generator):
        # Unknown-tag narratives must not contain strong keywords that
        # would let the tagger mislabel them systematically.
        for _ in range(30):
            text = generator.narrative(FaultTag.UNKNOWN).lower()
            for keyword in ("watchdog", "lidar", "planner", "software"):
                assert keyword not in text

    def test_planned_modality_gets_planned_lead(self):
        generator = NarrativeGenerator(np.random.default_rng(1))
        texts = [generator.narrative(FaultTag.SOFTWARE, Modality.PLANNED)
                 for _ in range(40)]
        assert any(t.startswith("Planned") for t in texts)

    def test_vocabulary_lists_all_tags(self, generator):
        vocabulary = generator.vocabulary()
        assert set(vocabulary) == set(FaultTag)


class TestAccidentSynthesis:
    @pytest.fixture(scope="class")
    def waymo_accidents(self):
        rng = np.random.default_rng(3)
        roster = build_roster("Waymo", rng)
        return synthesize_accidents("Waymo", roster, rng)

    def test_waymo_accident_count(self, waymo_accidents):
        assert len(waymo_accidents) == 25  # 9 + 16 per Table I

    def test_accidents_have_locations_in_mountain_view(
            self, waymo_accidents):
        assert all("Mountain View" in a.location
                   for a in waymo_accidents)

    def test_speeds_are_low_and_bounded(self, waymo_accidents):
        for accident in waymo_accidents:
            assert 0 <= accident.av_speed_mph <= 30
            assert 0 <= accident.other_speed_mph <= 40

    def test_no_injuries(self, waymo_accidents):
        # Paper: "no serious injuries were reported."
        assert not any(a.injuries for a in waymo_accidents)

    def test_collision_types_mostly_rear_end_or_side_swipe(
            self, waymo_accidents):
        minor = sum(1 for a in waymo_accidents
                    if a.collision_type in ("rear-end", "side-swipe"))
        assert minor >= len(waymo_accidents) * 0.6

    def test_redacted_accidents_lack_vehicle_ids(self, waymo_accidents):
        for accident in waymo_accidents:
            if accident.redacted:
                assert accident.vehicle_id is None

    def test_accidents_sorted_by_date(self, waymo_accidents):
        dates = [a.event_date for a in waymo_accidents]
        assert dates == sorted(dates)

    def test_object_collisions_have_zero_other_speed(self):
        rng = np.random.default_rng(11)
        roster = build_roster("GMCruise", rng)
        accidents = synthesize_accidents("GMCruise", roster, rng)
        for accident in accidents:
            if accident.collision_type == "object":
                assert accident.other_speed_mph == 0.0

    def test_manufacturer_without_accidents_yields_none(self):
        rng = np.random.default_rng(4)
        roster = build_roster("Bosch", rng)
        assert synthesize_accidents("Bosch", roster, rng) == []
