"""Tests for the trip-level micro-simulator."""

import numpy as np
import pytest

from repro.errors import AnalysisError, InsufficientDataError
from repro.simulator import (
    DriverConfig,
    SimulatorConfig,
    TrafficConfig,
    calibrate_from_database,
    simulate_fleet,
    simulate_trip,
)


class TestConfigs:
    def test_defaults_valid(self):
        SimulatorConfig()

    @pytest.mark.parametrize("kwargs", [
        {"reaction_scale": 0.0},
        {"alertness_factor": 0.0},
        {"proactive_share": 1.5},
    ])
    def test_driver_validation(self, kwargs):
        with pytest.raises(AnalysisError):
            DriverConfig(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"conflict_probability": -0.1},
        {"mean_time_budget_s": 0.0},
        {"mean_detection_latency_s": -1.0},
        {"anticipation_accident_rate_per_mile": -1e-9},
    ])
    def test_traffic_validation(self, kwargs):
        with pytest.raises(AnalysisError):
            TrafficConfig(**kwargs)

    def test_simulator_validation(self):
        with pytest.raises(AnalysisError):
            SimulatorConfig(dpm=-1.0)
        with pytest.raises(AnalysisError):
            SimulatorConfig(median_trip_miles=0.0)


class TestEngine:
    def test_zero_dpm_no_disengagements(self):
        fleet = simulate_fleet(SimulatorConfig(dpm=0.0), trips=200,
                               seed=0)
        assert fleet.disengagements == 0
        assert fleet.reaction_accidents == 0

    def test_trip_miles_positive(self):
        config = SimulatorConfig()
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert simulate_trip(config, rng).miles > 0

    def test_fleet_dpm_matches_configured_rate(self):
        config = SimulatorConfig(dpm=0.05)
        fleet = simulate_fleet(config, trips=3000, seed=1)
        assert fleet.dpm == pytest.approx(0.05, rel=0.15)

    def test_median_trip_length_respected(self):
        config = SimulatorConfig(median_trip_miles=10.0,
                                 trip_sigma=0.8)
        fleet = simulate_fleet(config, trips=3000, seed=2)
        assert fleet.miles / fleet.trips == pytest.approx(
            10.0 * np.exp(0.8 ** 2 / 2), rel=0.2)  # lognormal mean

    def test_manual_share_matches_driver_config(self):
        config = SimulatorConfig(
            dpm=0.05, driver=DriverConfig(proactive_share=0.8))
        fleet = simulate_fleet(config, trips=2000, seed=3)
        assert fleet.manual_share == pytest.approx(0.8, abs=0.05)

    def test_less_alert_driver_has_more_accidents(self):
        base = SimulatorConfig(
            dpm=0.05,
            traffic=TrafficConfig(conflict_probability=0.5,
                                  mean_time_budget_s=1.0))
        tired = SimulatorConfig(
            dpm=0.05,
            driver=DriverConfig(alertness_factor=4.0),
            traffic=base.traffic)
        alert_fleet = simulate_fleet(base, trips=3000, seed=4)
        tired_fleet = simulate_fleet(tired, trips=3000, seed=4)
        assert tired_fleet.reaction_accidents > \
            alert_fleet.reaction_accidents
        assert tired_fleet.mean_window_s > alert_fleet.mean_window_s

    def test_anticipation_channel_independent_of_dpm(self):
        config = SimulatorConfig(
            dpm=0.0,
            traffic=TrafficConfig(
                anticipation_accident_rate_per_mile=0.01))
        fleet = simulate_fleet(config, trips=2000, seed=5)
        assert fleet.disengagements == 0
        assert fleet.anticipation_accidents > 0
        assert fleet.apm == pytest.approx(0.01, rel=0.25)

    def test_no_conflicts_no_reaction_accidents(self):
        config = SimulatorConfig(
            dpm=0.1,
            traffic=TrafficConfig(conflict_probability=0.0))
        fleet = simulate_fleet(config, trips=1000, seed=6)
        assert fleet.disengagements > 0
        assert fleet.reaction_accidents == 0

    def test_deterministic_per_seed(self):
        config = SimulatorConfig(dpm=0.02)
        a = simulate_fleet(config, trips=500, seed=7)
        b = simulate_fleet(config, trips=500, seed=7)
        assert a.disengagements == b.disengagements
        assert a.accidents == b.accidents

    def test_invalid_trip_count(self):
        with pytest.raises(AnalysisError):
            simulate_fleet(SimulatorConfig(), trips=0)


class TestCalibration:
    def test_calibrated_dpm_matches_field(self, db):
        config = calibrate_from_database(db, "Nissan")
        field_dpm = (len(db.disengagements_by_manufacturer()["Nissan"])
                     / db.miles_by_manufacturer()["Nissan"])
        assert config.dpm == pytest.approx(field_dpm, rel=1e-6)

    def test_calibrated_proactive_share(self, db):
        config = calibrate_from_database(db, "Nissan")
        # Table V: Nissan ~45.8% manual.
        assert config.driver.proactive_share == pytest.approx(
            0.458, abs=0.08)

    def test_simulated_dpa_same_order_as_field(self, db):
        config = calibrate_from_database(db, "Delphi")
        fleet = simulate_fleet(config, trips=40000, seed=8)
        assert fleet.dpa is not None
        # Field DPA 572; one order of magnitude is the bar for a
        # single-accident observation.
        assert 100 <= fleet.dpa <= 4000

    def test_manufacturer_without_reaction_times(self, db):
        with pytest.raises(InsufficientDataError):
            calibrate_from_database(db, "GMCruise")

    def test_unknown_manufacturer(self, db):
        with pytest.raises(InsufficientDataError):
            calibrate_from_database(db, "Nonexistent Motors")
