"""Tests for the TF-IDF baseline classifier and STPA rendering."""

import pytest

from repro.errors import NlpError
from repro.nlp.tfidf import TfidfTagger
from repro.nlp import FailureDictionary, VotingTagger, evaluate_tagger
from repro.stpa import build_control_structure
from repro.stpa.render import to_dot, to_outline
from repro.taxonomy import FaultTag


class TestTfidfTagger:
    @pytest.fixture(scope="class")
    def training(self, db):
        records = [r for r in db.disengagements
                   if r.truth_tag is not None]
        texts = [r.description for r in records]
        labels = [r.truth_tag for r in records]
        return records, texts, labels

    def test_untrained_raises(self):
        with pytest.raises(NlpError):
            TfidfTagger().tag("anything")

    def test_fit_validates_lengths(self):
        with pytest.raises(NlpError):
            TfidfTagger().fit(["a"], [])
        with pytest.raises(NlpError):
            TfidfTagger().fit([], [])

    def test_trained_classifier_is_accurate(self, training):
        records, texts, labels = training
        split = len(texts) // 2
        tagger = TfidfTagger().fit(texts[:split], labels[:split])
        report = evaluate_tagger(tagger, records[split:])
        assert report.tag_accuracy > 0.85

    def test_small_label_budget_underperforms_dictionary(self,
                                                         training):
        records, texts, labels = training
        budget = 40
        tfidf = TfidfTagger().fit(texts[:budget], labels[:budget])
        dictionary = VotingTagger(FailureDictionary.build(texts))
        holdout = records[budget:2000]
        tfidf_accuracy = evaluate_tagger(tfidf, holdout).tag_accuracy
        dict_accuracy = evaluate_tagger(dictionary,
                                        holdout).tag_accuracy
        assert dict_accuracy > tfidf_accuracy

    def test_low_similarity_is_unknown(self, training):
        _, texts, labels = training
        tagger = TfidfTagger().fit(texts[:500], labels[:500])
        result = tagger.tag("xyzzy qwerty plugh")
        assert result.tag is FaultTag.UNKNOWN
        assert not result.confident

    def test_deterministic(self, training):
        _, texts, labels = training
        tagger = TfidfTagger().fit(texts[:300], labels[:300])
        sample = "Software module froze"
        assert tagger.tag(sample).tag == tagger.tag(sample).tag


class TestRender:
    @pytest.fixture(scope="class")
    def structure(self):
        return build_control_structure()

    def test_dot_is_wellformed(self, structure):
        dot = to_dot(structure)
        assert dot.startswith("digraph control_structure {")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == structure.graph.number_of_edges()

    def test_dot_contains_all_nodes(self, structure):
        dot = to_dot(structure)
        for component in structure.components():
            assert f"  {component.name} [" in dot

    def test_dot_highlighting(self, structure):
        dot = to_dot(structure, highlight={"recognition": 10,
                                           "compute": 5})
        assert "style=filled" in dot
        assert "fillcolor" in dot

    def test_outline_lists_edges_both_ways(self, structure):
        outline = to_outline(structure)
        assert "recognition" in outline
        assert "-> planner_controller" in outline
        assert "<- sensors" in outline
