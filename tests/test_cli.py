"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def nissan_db_path(tmp_path_factory):
    """A small database JSON produced through the CLI itself."""
    path = tmp_path_factory.mktemp("cli") / "db.json"
    code = main(["run", "--seed", "5", "--manufacturers", "Nissan",
                 "--no-ocr", "--dictionary", "seed",
                 "--out", str(path)])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.seed == 2018
        assert not args.no_ocr

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestRun:
    def test_run_writes_database(self, nissan_db_path, capsys):
        data = json.loads(nissan_db_path.read_text())
        assert len(data["disengagements"]) == 135
        assert len(data["accidents"]) == 1

    def test_run_prints_summary(self, capsys):
        code = main(["run", "--seed", "5", "--manufacturers", "Ford",
                     "--no-ocr"])
        assert code == 0
        out = capsys.readouterr().out
        assert "disengagements: 3" in out


class TestCorpusAndProcess:
    def test_corpus_then_process(self, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        assert main(["corpus", "--seed", "6", "--manufacturers",
                     "Tesla", "--out", str(corpus_dir)]) == 0
        assert (corpus_dir / "manifest.json").exists()
        db_path = tmp_path / "db.json"
        assert main(["process", "--corpus", str(corpus_dir),
                     "--seed", "6", "--no-ocr",
                     "--dictionary", "seed",
                     "--out", str(db_path)]) == 0
        data = json.loads(db_path.read_text())
        assert len(data["disengagements"]) == 182


class TestReport:
    def test_report_to_stdout(self, nissan_db_path, capsys):
        code = main(["report", "table6", "--db", str(nissan_db_path)])
        assert code == 0
        assert "Table VI" in capsys.readouterr().out

    def test_report_to_directory(self, nissan_db_path, tmp_path,
                                 capsys):
        out_dir = tmp_path / "exhibits"
        code = main(["report", "table3", "table6",
                     "--db", str(nissan_db_path),
                     "--out", str(out_dir)])
        assert code == 0
        assert (out_dir / "table3.txt").exists()
        assert (out_dir / "table6.txt").exists()

    def test_report_unknown_experiment(self, nissan_db_path, capsys):
        code = main(["report", "table99", "--db", str(nissan_db_path)])
        assert code == 2
        assert "unknown experiments" in capsys.readouterr().err


class TestTag:
    def test_tag_arguments(self, capsys):
        code = main(["tag", "Software module froze",
                     "watchdog error"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Software" in out
        assert "Hang/Crash" in out

    def test_tag_with_database_dictionary(self, nissan_db_path,
                                          capsys):
        code = main(["tag", "--db", str(nissan_db_path),
                     "The AV didn't see the lead vehicle"])
        assert code == 0
        assert "Recognition System" in capsys.readouterr().out


class TestStpaAndInject:
    def test_stpa_overlay(self, nissan_db_path, capsys):
        code = main(["stpa", "--db", str(nissan_db_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "failures overlaid" in out
        assert "CL-1" in out

    def test_inject(self, capsys):
        code = main(["inject", "--injections", "50", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "hazard rate by fault origin" in out
        assert "recognition" in out


class TestValidate:
    def test_validate(self, nissan_db_path, capsys):
        code = main(["validate", "--db", str(nissan_db_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "tag accuracy" in out
        assert "Nissan" in out


class TestLint:
    def test_lint_clean_database(self, nissan_db_path, capsys):
        code = main(["lint", "--db", str(nissan_db_path)])
        assert code == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_lint_broken_database(self, tmp_path, capsys):
        from repro.pipeline import FailureDatabase
        from repro.parsing.records import DisengagementRecord

        db = FailureDatabase(disengagements=[DisengagementRecord(
            manufacturer="X", month="2030-01", description="d")])
        path = tmp_path / "broken.json"
        db.save(path)
        code = main(["lint", "--db", str(path)])
        assert code == 1
        assert "month-coverage" in capsys.readouterr().out


class TestSummary:
    def test_summary_to_stdout(self, nissan_db_path, capsys):
        code = main(["summary", "--db", str(nissan_db_path),
                     "--no-charts"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# AV Failure Study Report" in out

    def test_summary_to_file(self, nissan_db_path, tmp_path, capsys):
        out_path = tmp_path / "report.md"
        code = main(["summary", "--db", str(nissan_db_path),
                     "--out", str(out_path)])
        assert code == 0
        assert "## Headlines" in out_path.read_text()


class TestResilienceFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.failure_policy == "quarantine"
        assert args.max_retries == 2
        assert args.chaos_stage is None

    def test_clean_run_prints_clean_health(self, capsys):
        code = main(["run", "--seed", "5", "--manufacturers",
                     "Nissan", "--no-ocr", "--dictionary", "seed"])
        assert code == 0
        out = capsys.readouterr().out
        assert "health:" in out
        assert "clean" in out

    def test_chaos_run_reports_quarantine(self, capsys, tmp_path):
        path = tmp_path / "db.json"
        code = main(["run", "--seed", "5", "--manufacturers",
                     "Nissan", "--no-ocr", "--dictionary", "seed",
                     "--chaos-stage", "parse", "--chaos-rate", "0.3",
                     "--failure-policy", "quarantine",
                     "--out", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "quarantined" in out
        data = json.loads(path.read_text())
        assert data["quarantine"]
        assert data["quarantine"][0]["error_type"] == "ChaosError"

    def test_invalid_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--failure-policy",
                                       "telepathy"])


class TestVersion:
    def test_version_flag_prints_and_exits_zero(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_version_before_subcommand(self, capsys):
        # --version wins even though a subcommand is normally required.
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0


class TestQueryVerb:
    def test_query_prints_json(self, nissan_db_path, capsys):
        code = main(["query", "dpm", "--db", str(nissan_db_path)])
        assert code == 0
        body = json.loads(capsys.readouterr().out)
        assert body["query"] == {"metric": "dpm",
                                 "group_by": "manufacturer"}
        assert "Nissan" in body["result"]
        assert body["cached"] is False
        assert len(body["fingerprint"]) == 64

    def test_query_with_filters(self, nissan_db_path, capsys):
        code = main(["query", "count", "--group-by", "tag",
                     "--manufacturer", "Nissan",
                     "--db", str(nissan_db_path)])
        assert code == 0
        body = json.loads(capsys.readouterr().out)
        assert sum(body["result"].values()) > 0

    def test_invalid_query_exits_2(self, nissan_db_path, capsys):
        code = main(["query", "count", "--month-from", "nope",
                     "--db", str(nissan_db_path)])
        assert code == 2
        assert "YYYY-MM" in capsys.readouterr().err

    def test_unsupported_grouping_exits_2(self, nissan_db_path,
                                          capsys):
        code = main(["query", "apm", "--group-by", "month",
                     "--db", str(nissan_db_path)])
        assert code == 2
        assert "cannot group by" in capsys.readouterr().err


class TestServeVerb:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8350
        assert args.cache_size == 256

    def test_serve_endpoint_roundtrip(self, nissan_db_path):
        import json as json_mod
        import urllib.request

        from repro.pipeline.store import FailureDatabase
        from repro.query import QueryServer

        db = FailureDatabase.load(nissan_db_path)
        with QueryServer(db, port=0) as server:
            with urllib.request.urlopen(
                    server.url + "/healthz", timeout=10) as res:
                body = json_mod.loads(res.read())
        assert body["status"] == "ok"
        assert body["fingerprint"] == db.fingerprint()
