"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def nissan_db_path(tmp_path_factory):
    """A small database JSON produced through the CLI itself."""
    path = tmp_path_factory.mktemp("cli") / "db.json"
    code = main(["run", "--seed", "5", "--manufacturers", "Nissan",
                 "--no-ocr", "--dictionary", "seed",
                 "--out", str(path)])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.seed == 2018
        assert not args.no_ocr

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_batch_size_defaults_to_auto(self):
        args = build_parser().parse_args(["run"])
        assert args.batch_size == "auto"

    def test_invalid_batch_size_exits_2(self, capsys):
        code = main(["run", "--batch-size", "lots"])
        assert code == 2
        assert "--batch-size" in capsys.readouterr().err

    def test_zero_batch_size_exits_2(self, capsys):
        code = main(["run", "--batch-size", "0"])
        assert code == 2
        assert "batch_size" in capsys.readouterr().err


class TestRun:
    def test_run_writes_database(self, nissan_db_path, capsys):
        data = json.loads(nissan_db_path.read_text())
        assert len(data["disengagements"]) == 135
        assert len(data["accidents"]) == 1

    def test_run_prints_summary(self, capsys):
        code = main(["run", "--seed", "5", "--manufacturers", "Ford",
                     "--no-ocr"])
        assert code == 0
        out = capsys.readouterr().out
        assert "disengagements: 3" in out


class TestCorpusAndProcess:
    def test_corpus_then_process(self, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        assert main(["corpus", "--seed", "6", "--manufacturers",
                     "Tesla", "--out", str(corpus_dir)]) == 0
        assert (corpus_dir / "manifest.json").exists()
        db_path = tmp_path / "db.json"
        assert main(["process", "--corpus", str(corpus_dir),
                     "--seed", "6", "--no-ocr",
                     "--dictionary", "seed",
                     "--out", str(db_path)]) == 0
        data = json.loads(db_path.read_text())
        assert len(data["disengagements"]) == 182


class TestReport:
    def test_report_to_stdout(self, nissan_db_path, capsys):
        code = main(["report", "table6", "--db", str(nissan_db_path)])
        assert code == 0
        assert "Table VI" in capsys.readouterr().out

    def test_report_to_directory(self, nissan_db_path, tmp_path,
                                 capsys):
        out_dir = tmp_path / "exhibits"
        code = main(["report", "table3", "table6",
                     "--db", str(nissan_db_path),
                     "--out", str(out_dir)])
        assert code == 0
        assert (out_dir / "table3.txt").exists()
        assert (out_dir / "table6.txt").exists()

    def test_report_unknown_experiment(self, nissan_db_path, capsys):
        code = main(["report", "table99", "--db", str(nissan_db_path)])
        assert code == 2
        assert "unknown experiments" in capsys.readouterr().err


class TestTag:
    def test_tag_arguments(self, capsys):
        code = main(["tag", "Software module froze",
                     "watchdog error"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Software" in out
        assert "Hang/Crash" in out

    def test_tag_with_database_dictionary(self, nissan_db_path,
                                          capsys):
        code = main(["tag", "--db", str(nissan_db_path),
                     "The AV didn't see the lead vehicle"])
        assert code == 0
        assert "Recognition System" in capsys.readouterr().out


class TestStpaAndInject:
    def test_stpa_overlay(self, nissan_db_path, capsys):
        code = main(["stpa", "--db", str(nissan_db_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "failures overlaid" in out
        assert "CL-1" in out

    def test_inject(self, capsys):
        code = main(["inject", "--injections", "50", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "hazard rate by fault origin" in out
        assert "recognition" in out


class TestValidate:
    def test_validate(self, nissan_db_path, capsys):
        code = main(["validate", "--db", str(nissan_db_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "tag accuracy" in out
        assert "Nissan" in out


class TestLint:
    def test_lint_clean_database(self, nissan_db_path, capsys):
        code = main(["lint", "--db", str(nissan_db_path)])
        assert code == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_lint_broken_database(self, tmp_path, capsys):
        from repro.pipeline import FailureDatabase
        from repro.parsing.records import DisengagementRecord

        db = FailureDatabase(disengagements=[DisengagementRecord(
            manufacturer="X", month="2030-01", description="d")])
        path = tmp_path / "broken.json"
        db.save(path)
        code = main(["lint", "--db", str(path)])
        assert code == 1
        assert "month-coverage" in capsys.readouterr().out


class TestSummary:
    def test_summary_to_stdout(self, nissan_db_path, capsys):
        code = main(["summary", "--db", str(nissan_db_path),
                     "--no-charts"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# AV Failure Study Report" in out

    def test_summary_to_file(self, nissan_db_path, tmp_path, capsys):
        out_path = tmp_path / "report.md"
        code = main(["summary", "--db", str(nissan_db_path),
                     "--out", str(out_path)])
        assert code == 0
        assert "## Headlines" in out_path.read_text()


class TestResilienceFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.failure_policy == "quarantine"
        assert args.max_retries == 2
        assert args.chaos_stage is None

    def test_clean_run_prints_clean_health(self, capsys):
        code = main(["run", "--seed", "5", "--manufacturers",
                     "Nissan", "--no-ocr", "--dictionary", "seed"])
        assert code == 0
        out = capsys.readouterr().out
        assert "health:" in out
        assert "clean" in out

    def test_chaos_run_reports_quarantine(self, capsys, tmp_path):
        path = tmp_path / "db.json"
        code = main(["run", "--seed", "5", "--manufacturers",
                     "Nissan", "--no-ocr", "--dictionary", "seed",
                     "--chaos-stage", "parse", "--chaos-rate", "0.3",
                     "--failure-policy", "quarantine",
                     "--out", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "quarantined" in out
        data = json.loads(path.read_text())
        assert data["quarantine"]
        assert data["quarantine"][0]["error_type"] == "ChaosError"

    def test_invalid_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--failure-policy",
                                       "telepathy"])


class TestVersion:
    def test_version_flag_prints_and_exits_zero(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_version_before_subcommand(self, capsys):
        # --version wins even though a subcommand is normally required.
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0


class TestQueryVerb:
    def test_query_prints_json(self, nissan_db_path, capsys):
        code = main(["query", "dpm", "--db", str(nissan_db_path)])
        assert code == 0
        body = json.loads(capsys.readouterr().out)
        assert body["query"] == {"metric": "dpm",
                                 "group_by": "manufacturer"}
        assert "Nissan" in body["result"]
        assert body["cached"] is False
        assert len(body["fingerprint"]) == 64

    def test_query_with_filters(self, nissan_db_path, capsys):
        code = main(["query", "count", "--group-by", "tag",
                     "--manufacturer", "Nissan",
                     "--db", str(nissan_db_path)])
        assert code == 0
        body = json.loads(capsys.readouterr().out)
        assert sum(body["result"].values()) > 0

    def test_invalid_query_exits_2(self, nissan_db_path, capsys):
        code = main(["query", "count", "--month-from", "nope",
                     "--db", str(nissan_db_path)])
        assert code == 2
        assert "YYYY-MM" in capsys.readouterr().err

    def test_unsupported_grouping_exits_2(self, nissan_db_path,
                                          capsys):
        code = main(["query", "apm", "--group-by", "month",
                     "--db", str(nissan_db_path)])
        assert code == 2
        assert "cannot group by" in capsys.readouterr().err


class TestServeVerb:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8350
        assert args.cache_size == 256

    def test_serve_endpoint_roundtrip(self, nissan_db_path):
        import json as json_mod
        import urllib.request

        from repro.pipeline.store import FailureDatabase
        from repro.query import QueryServer

        db = FailureDatabase.load(nissan_db_path)
        with QueryServer(db, port=0) as server:
            with urllib.request.urlopen(
                    server.url + "/healthz", timeout=10) as res:
                body = json_mod.loads(res.read())
        assert body["status"] == "ok"
        assert body["fingerprint"] == db.fingerprint()


class TestSharedFlagConventions:
    def test_quiet_run_prints_nothing(self, tmp_path, capsys):
        path = tmp_path / "db.json"
        code = main(["run", "--seed", "5", "--manufacturers", "Ford",
                     "--no-ocr", "--out", str(path), "--quiet"])
        assert code == 0
        assert capsys.readouterr().out == ""
        assert path.exists()

    def test_json_run_payload(self, capsys):
        code = main(["run", "--seed", "5", "--manufacturers", "Ford",
                     "--no-ocr", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["disengagements"] == 3
        assert payload["health"]["clean"] is True

    def test_json_available_on_db_verbs(self, nissan_db_path, capsys):
        for argv, key in (
                (["stpa"], "total"),
                (["lint"], "findings"),
                (["validate"], "tag_accuracy"),
                (["report", "table6"], "experiments")):
            code = main([*argv, "--db", str(nissan_db_path), "--json"])
            assert code == 0
            assert key in json.loads(capsys.readouterr().out)

    def test_pretty_alias_still_works_with_warning(
            self, nissan_db_path, capsys):
        code = main(["query", "dpm", "--db", str(nissan_db_path),
                     "--pretty"])
        assert code == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        assert "--json" in captured.err
        assert captured.out.startswith("{\n")  # indented output

    def test_pretty_stays_out_of_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--help"])
        assert "--pretty" not in capsys.readouterr().out

    def test_missing_db_exits_2_with_structured_error(self, tmp_path,
                                                      capsys):
        for argv in (["query", "dpm"], ["serve"], ["lint"]):
            code = main([*argv, "--db", str(tmp_path / "nope.json")])
            assert code == 2
            err = capsys.readouterr().err
            assert "repro: error:" in err
            assert "does not exist" in err
            assert "Traceback" not in err

    def test_corrupt_db_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{definitely not a database",
                       encoding="utf-8")
        code = main(["query", "dpm", "--db", str(bad)])
        assert code == 2
        assert "repro: error:" in capsys.readouterr().err


class TestTraceVerb:
    def test_traced_run_then_trace_verb(self, tmp_path, capsys):
        code = main(["run", "--seed", "5", "--manufacturers", "Ford",
                     "--no-ocr", "--trace-dir", str(tmp_path),
                     "--quiet"])
        assert code == 0
        capsys.readouterr()
        code = main(["trace", str(tmp_path / "trace.jsonl")])
        assert code == 0
        out = capsys.readouterr().out
        assert "self_s" in out
        assert "tag units" in out

    def test_trace_json_rows(self, tmp_path, capsys):
        assert main(["run", "--seed", "5", "--manufacturers", "Ford",
                     "--no-ocr", "--trace-dir", str(tmp_path),
                     "--quiet"]) == 0
        capsys.readouterr()
        code = main(["trace", str(tmp_path / "trace.jsonl"),
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans"] > 0
        names = {row["name"] for row in payload["rows"]}
        assert "run" in names

    def test_missing_trace_exits_2(self, tmp_path, capsys):
        code = main(["trace", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_run_summary_mentions_trace_and_metrics(self, tmp_path,
                                                    capsys):
        code = main(["run", "--seed", "5", "--manufacturers", "Ford",
                     "--no-ocr", "--trace-dir", str(tmp_path),
                     "--metrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "repro_stage_duration_seconds" in out
