"""Statistical validation of the synthesizer against its calibration.

Goodness-of-fit checks that the realized corpus actually follows the
configured distributions — the guarantee everything downstream
depends on.
"""

import numpy as np
import pytest
from scipy import stats as sstats

from repro.calibration.accidents import SPEED_MODEL
from repro.calibration.fault_model import fault_mixture
from repro.calibration.modality import modality_mixture
from repro.calibration.reaction_times import reaction_time_model
from repro.calibration.roads import ROAD_TYPE_SHARES


def _records_for(corpus, manufacturer):
    return [r for r in corpus.truth_disengagements()
            if r.manufacturer == manufacturer]


class TestTagMixtures:
    @pytest.mark.parametrize("manufacturer", [
        "Waymo", "Mercedes-Benz", "Bosch", "Delphi"])
    def test_realized_tags_match_mixture(self, corpus, manufacturer):
        records = _records_for(corpus, manufacturer)
        mixture = fault_mixture(manufacturer)
        observed = {}
        for record in records:
            observed[record.truth_tag] = observed.get(
                record.truth_tag, 0) + 1
        total = len(records)
        # Chi-square over tags with expected count >= 5.
        chi2 = 0.0
        dof = 0
        for tag, weight in mixture.weights.items():
            expected = weight * total
            if expected < 5:
                continue
            chi2 += (observed.get(tag, 0) - expected) ** 2 / expected
            dof += 1
        assert dof > 3
        p = 1 - sstats.chi2.cdf(chi2, dof - 1)
        assert p > 1e-4, f"{manufacturer}: chi2={chi2:.1f} dof={dof}"


class TestModalities:
    @pytest.mark.parametrize("manufacturer", [
        "Mercedes-Benz", "Nissan", "Waymo"])
    def test_realized_modalities(self, corpus, manufacturer):
        records = _records_for(corpus, manufacturer)
        mixture = modality_mixture(manufacturer)
        total = len(records)
        for modality, weight in mixture.weights.items():
            observed = sum(1 for r in records
                           if r.modality is modality) / total
            assert observed == pytest.approx(weight, abs=0.05), \
                f"{manufacturer}/{modality}"


class TestReactionTimes:
    def test_waymo_reaction_distribution(self, corpus):
        model = reaction_time_model("Waymo")
        times = np.array([r.reaction_time_s
                          for r in _records_for(corpus, "Waymo")])
        # The drift tilts the distribution slightly; a loose KS bound
        # still catches wrong shapes or scales outright.
        ks = sstats.kstest(
            times, "exponweib",
            args=(model.a, model.c, 0.0, model.scale)).statistic
        assert ks < 0.15

    def test_reaction_times_rounded_and_positive(self, corpus):
        for manufacturer in ("Nissan", "Delphi", "Tesla"):
            times = [r.reaction_time_s
                     for r in _records_for(corpus, manufacturer)]
            assert all(t > 0 for t in times)
            assert all(round(t, 2) == t for t in times)


class TestRoadTypes:
    def test_road_exposure_followed(self, corpus):
        records = [r for r in corpus.truth_disengagements()
                   if r.road_type is not None]
        total = len(records)
        assert total > 3000
        for road, share in ROAD_TYPE_SHARES.items():
            observed = sum(1 for r in records
                           if r.road_type == str(road)) / total
            assert observed == pytest.approx(share, abs=0.03), road


class TestAccidentSpeeds:
    def test_speeds_follow_truncated_exponentials(self, corpus):
        accidents = corpus.truth_accidents()
        av = np.array([a.av_speed_mph for a in accidents])
        assert av.max() <= SPEED_MODEL.max_av_speed
        # With 42 samples, compare means loosely against the
        # (truncated) exponential scale.
        assert av.mean() == pytest.approx(SPEED_MODEL.av_scale,
                                          rel=0.6)

    def test_relative_speed_headline(self, corpus):
        accidents = corpus.truth_accidents()
        relative = [a.relative_speed_mph for a in accidents
                    if a.relative_speed_mph is not None]
        below = sum(1 for s in relative if s < 10.0) / len(relative)
        assert below > 0.7  # paper: >80%, small-sample slack


class TestSeedIndependence:
    def test_manufacturer_streams_are_independent(self):
        # Adding a manufacturer must not change another's draws.
        from repro.synth import generate_corpus

        solo = generate_corpus(seed=77, manufacturers=["Nissan"])
        pair = generate_corpus(seed=77,
                               manufacturers=["Nissan", "Tesla"])
        solo_texts = [r.description
                      for r in solo.truth_disengagements()]
        pair_texts = [r.description
                      for r in pair.truth_disengagements()
                      if r.manufacturer == "Nissan"]
        assert solo_texts == pair_texts
