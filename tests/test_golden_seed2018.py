"""Golden regression values for the canonical seed-2018 run.

These pin the exact headline outputs of the canonical corpus so that
future edits to the synthesizer, OCR channel, parsers, or NLP engine
cannot silently drift the reproduction.  If a change legitimately
moves these numbers, re-run ``scripts/generate_experiments_md.py`` and
update both the EXPERIMENTS.md narrative and the expectations here.
"""

import pytest

from repro.analysis import manufacturer_dpm_summary
from repro.analysis.alertness import overall_mean_reaction_time
from repro.analysis.apm import disengagements_per_accident_overall
from repro.analysis.categories import overall_category_shares
from repro.analysis.maturity import pooled_dpm_correlation

ANALYSIS = ["Mercedes-Benz", "Volkswagen", "Waymo", "Delphi", "Nissan",
            "Bosch", "GMCruise", "Tesla"]


class TestGoldenPipeline:
    def test_record_counts(self, db):
        # Exact values for seed 2018 (the OCR channel is seeded too).
        assert len(db.disengagements) == 5324
        assert len(db.accidents) == 42

    def test_miles_recovered(self, db):
        assert db.total_miles == pytest.approx(1108099, rel=0.01)

    def test_tagging_accuracy(self, pipeline_result):
        accuracy = pipeline_result.diagnostics.tagging.tag_accuracy
        assert accuracy == pytest.approx(0.998, abs=0.004)


class TestGoldenHeadlines:
    def test_category_shares(self, db):
        shares = overall_category_shares(db)
        assert shares["ml_design"] == pytest.approx(0.649, abs=0.01)
        assert shares["perception"] == pytest.approx(0.437, abs=0.01)
        assert shares["planner"] == pytest.approx(0.212, abs=0.01)
        assert shares["system"] == pytest.approx(0.343, abs=0.01)

    def test_pooled_correlation(self, db):
        result = pooled_dpm_correlation(db, ANALYSIS)
        assert result.r == pytest.approx(-0.848, abs=0.02)

    def test_mean_reaction_time(self, db):
        assert overall_mean_reaction_time(db) == pytest.approx(
            0.835, abs=0.02)

    def test_dpa(self, db):
        assert disengagements_per_accident_overall(db) == \
            pytest.approx(126.8, abs=1.0)

    def test_median_dpm_per_manufacturer(self, db):
        golden = {
            "Mercedes-Benz": 0.559,
            "Volkswagen": 0.0147,
            "Waymo": 3.95e-4,
            "Delphi": 0.0267,
            "Nissan": 0.0471,
            "Bosch": 1.068,
            "GMCruise": 0.168,
            "Tesla": 0.376,
        }
        summaries = manufacturer_dpm_summary(db, ANALYSIS)
        for name, expected in golden.items():
            assert summaries[name].median_dpm == pytest.approx(
                expected, rel=0.05), name
