"""Columnar storage subsystem: parity, io robustness, compactness.

The tentpole guarantee under test: a
:class:`~repro.storage.ColumnarFailureDatabase` is observationally
identical to the dict-backed database it was built from — same
``to_json`` bytes, same fingerprint, same scan results — whatever mix
of populated, ``None``, and numpy-typed fields the records carry.
"""

from __future__ import annotations

import json
import pickle
from datetime import date

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptDatabaseError
from repro.parsing.records import (
    AccidentRecord,
    DisengagementRecord,
    MonthlyMileage,
)
from repro.pipeline.checkpoint import CheckpointStore
from repro.pipeline.config import PipelineConfig
from repro.pipeline.parallel import UnitOutcome
from repro.pipeline.resilience import Quarantine, QuarantineEntry
from repro.pipeline.store import FailureDatabase
from repro.storage import (
    BoolColumn,
    ColumnarFailureDatabase,
    FloatColumn,
    IntColumn,
    JsonColumn,
    StringColumn,
    decode_columnar,
    detect_storage_format,
    encode_columnar,
    load_any,
    load_columnar,
    save_columnar,
)
from repro.storage.io import MAGIC
from repro.taxonomy import FailureCategory, FaultTag, Modality


def _full_disengagement() -> DisengagementRecord:
    """Every optional field populated."""
    return DisengagementRecord(
        manufacturer="Waymo", month="2016-03",
        event_date=date(2016, 3, 14), time_of_day=(9, 30, 0),
        vehicle_id="AV-017", modality=Modality.AUTOMATIC,
        road_type="highway", weather="clear", reaction_time_s=0.82,
        description="perception failure near merge",
        tag=FaultTag.SOFTWARE, category=FailureCategory.SYSTEM,
        truth_tag=FaultTag.SOFTWARE,
        source_document="waymo-2016-03", source_line=12)


def _sparse_disengagement() -> DisengagementRecord:
    """Every optional field absent (the Table I dashes)."""
    return DisengagementRecord(
        manufacturer="Bosch", month="2015-11",
        description="manual takeover")


def _mixed_database() -> FailureDatabase:
    """Small corpus exercising every field and every null pattern."""
    return FailureDatabase(
        disengagements=[
            _full_disengagement(),
            _sparse_disengagement(),
            DisengagementRecord(
                manufacturer="Waymo", month="2016-04",
                vehicle_id="", reaction_time_s=1.5,
                description="empty vehicle id is not None",
                tag=FaultTag.PLANNER,
                category=FailureCategory.UNKNOWN),
        ],
        accidents=[
            AccidentRecord(
                manufacturer="Cruise", event_date=date(2016, 5, 2),
                month="2016-05", location="Main St and 1st Ave",
                autonomous_at_collision=True,
                disengaged_before_collision=False,
                av_speed_mph=12.0, other_speed_mph=17.5,
                collision_type="rear-end", injuries=False,
                redacted=True, vehicle_id="C-3",
                description="struck while stopped",
                source_document="cruise-ol316-7"),
            AccidentRecord(manufacturer="Cruise"),
        ],
        mileage=[
            MonthlyMileage("Waymo", "2016-03", 1234.5, "AV-017"),
            MonthlyMileage("Waymo", "2016-04", 980.0, None),
            MonthlyMileage("Bosch", "2015-11", 0.0, "B-1"),
        ],
        quarantine=Quarantine(entries=[
            QuarantineEntry(
                unit_id="doc-9:4", stage="parse",
                error_type="ParseError", message="bad month cell",
                traceback="Traceback...\nParseError: bad month cell"),
        ]),
    )


# ----------------------------------------------------------------------
# Round-trip parity.
# ----------------------------------------------------------------------

class TestRoundTripParity:
    def test_json_bytes_identical(self):
        base = _mixed_database()
        columnar = ColumnarFailureDatabase.from_database(base)
        assert columnar.to_json() == base.to_json()

    def test_fingerprint_identical(self):
        base = _mixed_database()
        columnar = ColumnarFailureDatabase.from_database(base)
        assert columnar.fingerprint() == base.fingerprint()

    def test_every_field_survives_materialization(self):
        base = _mixed_database()
        columnar = ColumnarFailureDatabase.from_database(base)
        for original, restored in zip(base.disengagements,
                                      columnar.disengagements):
            assert restored.to_dict() == original.to_dict()
            assert restored == original
        for original, restored in zip(base.accidents,
                                      columnar.accidents):
            assert restored == original
        for original, restored in zip(base.mileage, columnar.mileage):
            assert restored == original

    def test_quarantine_survives(self):
        base = _mixed_database()
        columnar = ColumnarFailureDatabase.from_database(base)
        assert [e.to_dict() for e in columnar.quarantine] \
            == [e.to_dict() for e in base.quarantine]

    def test_from_json_round_trip(self):
        text = _mixed_database().to_json()
        columnar = ColumnarFailureDatabase.from_json(text)
        assert columnar.to_json() == text

    def test_binary_round_trip(self):
        base = _mixed_database()
        decoded = decode_columnar(encode_columnar(base))
        assert decoded.to_json() == base.to_json()
        assert decoded.fingerprint() == base.fingerprint()

    def test_numpy_float_reaction_time(self):
        # numpy.float64 is a float subclass: it packs into the f64
        # column and stdlib json renders it via float.__repr__, so
        # the serialized bytes cannot drift.  (Fingerprints are not
        # compared here: the orjson fast path rejects numpy scalars,
        # which is an encoder property, not a storage one.)
        record = _full_disengagement()
        record.reaction_time_s = np.float64(0.75)
        base = FailureDatabase(disengagements=[record])
        columnar = ColumnarFailureDatabase.from_database(base)
        assert json.dumps(columnar._payload()) \
            == json.dumps(base._payload())
        assert columnar.reaction_times("Waymo") == [0.75]

    def test_to_database_is_independent(self):
        columnar = ColumnarFailureDatabase.from_database(
            _mixed_database())
        plain = columnar.to_database()
        assert type(plain) is FailureDatabase
        assert plain.to_json() == columnar.to_json()
        plain.disengagements.pop()
        assert len(columnar.disengagements) == 3


# ----------------------------------------------------------------------
# Column primitives: the fidelity rule.
# ----------------------------------------------------------------------

class TestColumnFidelity:
    def test_int_in_float_column_kept_verbatim(self):
        column = FloatColumn()
        column.append(5)
        assert column.get(0) == 5
        assert isinstance(column.get(0), int)
        assert json.dumps(column.get(0)) == "5"  # not "5.0"

    def test_bool_in_int_column_kept_verbatim(self):
        column = IntColumn()
        column.append(True)
        assert column.get(0) is True

    def test_huge_int_kept_verbatim(self):
        column = IntColumn()
        column.append(2 ** 80)
        column.append(7)
        assert column.get(0) == 2 ** 80
        assert column.get(1) == 7

    def test_numpy_bool_in_bool_column_kept_verbatim(self):
        column = BoolColumn()
        column.append(np.bool_(True))
        assert isinstance(column.get(0), np.bool_)

    def test_string_column_none_vs_empty(self):
        column = StringColumn()
        column.append(None)
        column.append("")
        assert column.get(0) is None
        assert column.get(1) == ""
        assert column.null_count == 1

    def test_json_column_preserves_key_order(self):
        column = JsonColumn()
        column.append({"b": 1, "a": 2})
        assert json.dumps(column.get(0)) == '{"b": 1, "a": 2}'

    def test_column_segment_round_trips(self):
        for column, values in (
                (StringColumn(), ["x", None, "y", 3]),
                (JsonColumn(), [[1, 2, 3], None, {"k": "v"}]),
                (FloatColumn(), [1.5, None, 2, -0.0]),
                (IntColumn(), [4, None, True, 2 ** 70]),
                (BoolColumn(), [True, False, None, 1])):
            for value in values:
                column.append(value)
            segments = dict(column.segments())
            restored = type(column).from_segments(segments)
            assert [restored.get(i) for i in range(len(values))] \
                == [column.get(i) for i in range(len(values))]


# ----------------------------------------------------------------------
# Hypothesis: fingerprints are format-independent.
# ----------------------------------------------------------------------

months = st.tuples(
    st.integers(2014, 2017), st.integers(1, 12)).map(
    lambda ym: f"{ym[0]:04d}-{ym[1]:02d}")
names = st.sampled_from(["Waymo", "Bosch", "Nissan", "Delphi"])
texts = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=40)


@st.composite
def disengagement_records(draw):
    return DisengagementRecord(
        manufacturer=draw(names), month=draw(months),
        time_of_day=draw(st.one_of(st.none(), st.tuples(
            st.integers(0, 23), st.integers(0, 59),
            st.integers(0, 59)))),
        vehicle_id=draw(st.one_of(st.none(), texts)),
        modality=draw(st.one_of(st.none(), st.sampled_from(Modality))),
        reaction_time_s=draw(st.one_of(st.none(), st.floats(
            min_value=0.0, max_value=60.0, allow_nan=False))),
        description=draw(texts),
        tag=draw(st.one_of(st.none(), st.sampled_from(FaultTag))),
        source_line=draw(st.one_of(st.none(), st.integers(0, 10000))))


@st.composite
def mileage_cells(draw):
    return MonthlyMileage(
        manufacturer=draw(names), month=draw(months),
        miles=draw(st.floats(min_value=0.0, max_value=1e6,
                             allow_nan=False)),
        vehicle_id=draw(st.one_of(st.none(), texts)))


class TestFingerprintFormatIndependence:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(disengagement_records(), max_size=8),
           st.lists(mileage_cells(), max_size=8))
    def test_columnar_equals_dict(self, records, cells):
        base = FailureDatabase(disengagements=records, mileage=cells)
        columnar = ColumnarFailureDatabase.from_database(base)
        assert columnar.fingerprint() == base.fingerprint()
        assert columnar.to_json() == base.to_json()
        reloaded = decode_columnar(encode_columnar(base))
        assert reloaded.fingerprint() == base.fingerprint()


# ----------------------------------------------------------------------
# Scan-hook parity against the session pipeline database.
# ----------------------------------------------------------------------

class TestScanParity:
    @pytest.fixture(scope="class")
    def pair(self, small_db):
        return small_db, ColumnarFailureDatabase.from_database(small_db)

    def test_aggregates(self, pair):
        base, columnar = pair
        assert columnar.manufacturers() == base.manufacturers()
        assert columnar.total_miles == base.total_miles
        assert columnar.miles_by_manufacturer() \
            == base.miles_by_manufacturer()
        # Insertion order is part of the contract, not just content.
        assert list(columnar.miles_by_manufacturer()) \
            == list(base.miles_by_manufacturer())

    def test_per_manufacturer_scans(self, pair):
        base, columnar = pair
        for name in base.manufacturers() + ["NoSuchManufacturer"]:
            assert columnar.monthly_miles(name) \
                == base.monthly_miles(name)
            assert columnar.monthly_disengagements(name) \
                == base.monthly_disengagements(name)
            assert columnar.vehicle_miles(name) \
                == base.vehicle_miles(name)
            assert columnar.vehicle_disengagements(name) \
                == base.vehicle_disengagements(name)
            assert columnar.reaction_times(name) \
                == base.reaction_times(name)
            assert columnar.vehicle_attribution_counts(name) \
                == base.vehicle_attribution_counts(name)
            assert columnar.vehicle_year_miles(name) \
                == base.vehicle_year_miles(name)
            assert columnar.vehicle_year_disengagements(name) \
                == base.vehicle_year_disengagements(name)
            assert columnar.tag_values(name) == base.tag_values(name)
            assert columnar.tag_values(name, use_truth=True) \
                == base.tag_values(name, use_truth=True)
            assert columnar.modality_values(name) \
                == base.modality_values(name)
        assert columnar.reaction_times() == base.reaction_times()

    def test_index_row_streams(self, small_db):
        columnar = ColumnarFailureDatabase.from_database(small_db)
        base_rows = [(r.to_dict(), m, mo, t) for r, m, mo, t
                     in small_db.disengagement_index_rows()]
        col_rows = [(r.to_dict(), m, mo, t) for r, m, mo, t
                    in columnar.disengagement_index_rows()]
        assert col_rows == base_rows
        assert [(c.to_dict(), m, mo, miles) for c, m, mo, miles
                in columnar.mileage_index_rows()] \
            == [(c.to_dict(), m, mo, miles) for c, m, mo, miles
                in small_db.mileage_index_rows()]

    def test_materialized_mutation_disables_fast_path(self, small_db):
        columnar = ColumnarFailureDatabase.from_database(small_db)
        records = columnar.disengagements  # materializes
        victim = records[0].manufacturer
        records[:] = [r for r in records if r.manufacturer != victim]
        # The scan must see the mutation, not the stale columns.
        assert columnar.vehicle_disengagements(victim) == {}
        assert victim not in {
            m for _, m, _, _ in columnar.disengagement_index_rows()}


# ----------------------------------------------------------------------
# Binary io robustness.
# ----------------------------------------------------------------------

class TestBinaryIo:
    def test_save_load(self, tmp_path):
        base = _mixed_database()
        path = tmp_path / "db.bin"
        save_columnar(base, path)
        assert (tmp_path / "db.bin.sha256").exists()
        loaded = load_columnar(path)
        assert loaded.to_json() == base.to_json()

    def test_detect_and_load_any(self, tmp_path):
        base = _mixed_database()
        jpath, bpath = tmp_path / "db.json", tmp_path / "db.bin"
        base.save(jpath)
        save_columnar(base, bpath)
        assert detect_storage_format(jpath) == "json"
        assert detect_storage_format(bpath) == "columnar"
        assert load_any(jpath).fingerprint() \
            == load_any(bpath).fingerprint()
        assert isinstance(load_any(bpath), ColumnarFailureDatabase)

    def test_bad_magic_rejected(self):
        with pytest.raises(CorruptDatabaseError):
            decode_columnar(b"NOTMAGIC" + b"\x00" * 32)

    def test_truncated_blob_rejected(self):
        blob = encode_columnar(_mixed_database())
        with pytest.raises(CorruptDatabaseError):
            decode_columnar(blob[:len(blob) // 2])

    def test_tampered_header_rejected(self):
        blob = bytearray(encode_columnar(_mixed_database()))
        # Corrupt the first header byte (right after magic + length).
        blob[len(MAGIC) + 8] ^= 0xFF
        with pytest.raises(CorruptDatabaseError):
            decode_columnar(bytes(blob))

    def test_checksum_mismatch_rejected(self, tmp_path):
        path = tmp_path / "db.bin"
        save_columnar(_mixed_database(), path)
        (tmp_path / "db.bin.sha256").write_text(
            "0" * 64 + "  db.bin\n")
        with pytest.raises(CorruptDatabaseError):
            load_columnar(path)
        # Opting out of verification still loads the intact payload.
        assert load_columnar(path, verify_checksum=False)

    def test_checkpoint_blob_artifact(self, tmp_path):
        store = CheckpointStore(
            tmp_path, PipelineConfig(seed=1, checkpoint_dir=tmp_path))
        payload = encode_columnar(_mixed_database())
        store.write_blob_artifact("database", payload)
        assert store.load_blob_artifact("database") == payload
        (tmp_path / "database.bin").write_bytes(b"garbage")
        assert store.load_blob_artifact("database") is None
        store.drop_blob_artifact("database")
        assert store.load_blob_artifact("database") is None


# ----------------------------------------------------------------------
# Fingerprint memoization.
# ----------------------------------------------------------------------

class TestFingerprintMemo:
    def test_cached_between_calls(self):
        db = _mixed_database()
        first = db.fingerprint()
        db._payload = lambda: pytest.fail(  # type: ignore[assignment]
            "memoized fingerprint recomputed the payload")
        assert db.fingerprint() == first

    def test_append_invalidates(self):
        db = _mixed_database()
        before = db.fingerprint()
        db.mileage.append(MonthlyMileage("Zoox", "2017-01", 5.0))
        assert db.fingerprint() != before

    def test_touch_invalidates_in_place_edit(self):
        db = _mixed_database()
        before = db.fingerprint()
        db.disengagements[0].weather = "fog"
        db.touch()
        assert db.fingerprint() != before

    def test_columnar_memo(self):
        columnar = ColumnarFailureDatabase.from_database(
            _mixed_database())
        first = columnar.fingerprint()
        assert columnar.fingerprint() == first
        columnar.disengagements.pop()
        assert columnar.fingerprint() != first


# ----------------------------------------------------------------------
# Compact worker payloads.
# ----------------------------------------------------------------------

class TestCompactOutcomes:
    def _outcome(self) -> UnitOutcome:
        return UnitOutcome(
            body={"tag": "software", "category": "machine"},
            health=({"tag": (1, 0, 0, 0, 0)}, []),
            elapsed=0.002)

    def test_pickle_round_trip(self):
        outcome = self._outcome()
        assert pickle.loads(pickle.dumps(outcome)) == outcome

    def test_no_instance_dict(self):
        assert not hasattr(self._outcome(), "__dict__")

    def test_smaller_than_dict_baseline(self):
        outcome = self._outcome()
        baseline = {
            "body": outcome.body,
            "health": {"stages": {"tag": [1, 0, 0, 0, 0]},
                       "events": []},
            "error": None, "ocr": None, "elapsed": outcome.elapsed,
            "injected": 0, "metrics": None}
        assert len(pickle.dumps(outcome)) < len(pickle.dumps(baseline))
