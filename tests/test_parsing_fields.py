"""Tests for OCR-tolerant field coercions."""

from datetime import date

import pytest

from repro.errors import FieldCoercionError
from repro.parsing import fields
from repro.taxonomy import Modality


class TestNumericRepair:
    def test_letter_digit_confusions(self):
        assert fields.repair_numeric_text("O.8") == "0.8"
        assert fields.repair_numeric_text("l5") == "15"
        assert fields.repair_numeric_text("2O15") == "2015"

    def test_coerce_number_with_damage(self):
        assert fields.coerce_number("O.85") == pytest.approx(0.85)
        assert fields.coerce_number("1,1l6") == pytest.approx(1116)

    def test_coerce_number_failure(self):
        with pytest.raises(FieldCoercionError):
            fields.coerce_number("???")


class TestDateTimeCoercion:
    def test_damaged_date(self):
        assert fields.coerce_date("O3/14/2O15") == date(2015, 3, 14)

    def test_damaged_time(self):
        assert fields.coerce_time("l8:24:O3") == (18, 24, 3)


class TestMonthAbbr:
    @pytest.mark.parametrize("text,expected", [
        ("May-16", "2016-05"),
        ("Dec-15", "2015-12"),
        ("Sep-14", "2014-09"),
        ("5ep-14", "2014-09"),   # S -> 5 confusion
        ("Dee-15", "2015-12"),   # c -> e confusion
        ("ug-15", "2015-08"),    # dropped leading letter
        ("May-l6", "2016-05"),   # 1 -> l in the year
    ])
    def test_damaged_months(self, text, expected):
        assert fields.coerce_month_abbr(text) == expected

    def test_unknown_month_raises(self):
        with pytest.raises(FieldCoercionError):
            fields.coerce_month_abbr("Xyz-16")


class TestReactionTime:
    def test_normal(self):
        assert fields.coerce_reaction_time("0.9 s") == pytest.approx(0.9)

    def test_damaged(self):
        assert fields.coerce_reaction_time("O.9 s") == pytest.approx(0.9)

    def test_empty_is_none(self):
        assert fields.coerce_reaction_time("") is None
        assert fields.coerce_reaction_time("-") is None
        assert fields.coerce_reaction_time("n/a") is None


class TestEnumishFields:
    def test_modalities(self):
        assert fields.coerce_modality("Auto") is Modality.AUTOMATIC
        assert fields.coerce_modality("manual") is Modality.MANUAL
        assert fields.coerce_modality("Driver") is Modality.MANUAL
        assert fields.coerce_modality("planned test") is Modality.PLANNED
        assert fields.coerce_modality("???") is None

    def test_road_types(self):
        assert fields.coerce_road_type("Highway") == "highway"
        assert fields.coerce_road_type("city street") == "city street"
        assert fields.coerce_road_type("urban street") == "city street"
        assert fields.coerce_road_type("unknown") is None

    def test_weather(self):
        assert fields.coerce_weather("Sunny/Dry") == "Sunny/Dry"
        assert fields.coerce_weather("unknown") is None
        assert fields.coerce_weather("") is None


class TestSplitters:
    def test_em_dash_split(self):
        parts = fields.split_fields("a — b — c", "—")
        assert parts == ["a", "b", "c"]

    def test_em_dash_split_tolerates_hyphen(self):
        parts = fields.split_fields("a - b — c", "—")
        assert parts == ["a", "b", "c"]

    def test_pipe_split(self):
        assert fields.split_fields("a | b | c", "|") == ["a", "b", "c"]

    def test_csv_with_quotes(self):
        parts = fields.split_csv('1/1/16,"a, quoted, field",x')
        assert parts == ["1/1/16", "a, quoted, field", "x"]

    def test_csv_plain(self):
        assert fields.split_csv("a,b,c") == ["a", "b", "c"]
