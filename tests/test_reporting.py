"""Tests for the reporting layer: renderers and exhibit generators."""

import pytest

from repro.analysis.stats import boxplot_stats
from repro.reporting import (
    EXPERIMENTS,
    BoxSeries,
    FigureData,
    Series,
    Table,
    run_experiment,
)
from repro.reporting import figures_paper, tables_paper


class TestTableRenderer:
    def test_render_alignment(self):
        table = Table("T", ["a", "bb"], [["x", 1], ["yy", 22]])
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]

    def test_add_row_validates_width(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_none_renders_as_dash(self):
        table = Table("T", ["a"], [[None]])
        assert "-" in table.render()

    def test_column_and_row_lookup(self):
        table = Table("T", ["name", "value"],
                      [["x", 1], ["y", 2]])
        assert table.column("value") == [1, 2]
        assert table.row_for("y") == ["y", 2]
        assert table.row_for("zzz") is None

    def test_float_formatting(self):
        table = Table("T", ["v"], [[4.140e-05], [1234567.0], [0.565]])
        text = table.render()
        assert "4.140e-05" in text
        assert "0.565" in text


class TestFigureRenderer:
    def test_series_lookup(self):
        figure = FigureData("F", "title",
                            series=[Series("s", [1], [2])])
        assert figure.series_by_name("s").y == [2]
        with pytest.raises(KeyError):
            figure.series_by_name("missing")

    def test_box_lookup(self):
        box = BoxSeries("m", boxplot_stats([1, 2, 3]))
        figure = FigureData("F", "t", boxes=[box])
        assert figure.box_by_label("m").box.median == 2

    def test_render_contains_everything(self):
        figure = FigureData(
            "Figure X", "demo", xlabel="x", ylabel="y",
            series=[Series("s", [1.0, 2.0], [3.0, 4.0],
                           annotation="slope=1")],
            boxes=[BoxSeries("b", boxplot_stats([1.0]))],
            annotations=["headline"], notes=["footnote"])
        text = figure.render()
        for token in ("Figure X", "demo", "slope=1", "headline",
                      "footnote", "[box]", "[series]"):
            assert token in text


class TestPaperTables:
    def test_table1_totals(self, db):
        table = tables_paper.table1(db)
        total = table.row_for("Total")
        # Miles 15-16 + Miles 16-17 within a few % of the paper.
        assert total[2] + total[6] == pytest.approx(1116605, rel=0.03)
        assert total[3] + total[7] == pytest.approx(5328, abs=20)
        assert total[4] + total[8] == 42

    def test_table1_waymo_row(self, db):
        row = tables_paper.table1(db).row_for("Waymo")
        assert row[1] == 49
        assert row[5] == 70
        assert row[2] == pytest.approx(424332, rel=0.05)

    def test_table2_has_four_samples(self, db):
        table = tables_paper.table2(db)
        assert len(table.rows) == 4
        manufacturers = [row[0] for row in table.rows]
        assert manufacturers.count("Nissan") == 2

    def test_table3_covers_all_tags(self, db):
        table = tables_paper.table3(db)
        assert len(table.rows) == 13  # all FaultTag members

    def test_table4_rows_sum_to_100(self, db):
        table = tables_paper.table4(db)
        for row in table.rows:
            assert sum(row[1:]) == pytest.approx(100.0, abs=0.1)

    def test_table5_planned_rows(self, db):
        table = tables_paper.table5(db)
        assert table.row_for("Bosch")[3] == pytest.approx(100.0)
        assert table.row_for("GMCruise")[3] == pytest.approx(100.0)

    def test_table6_counts(self, db):
        table = tables_paper.table6(db)
        assert table.row_for("Waymo")[1] == 25
        assert table.row_for("Uber ATC")[3] is None

    def test_table7_structure(self, db):
        table = tables_paper.table7(db)
        assert len(table.rows) == 8
        waymo = table.row_for("Waymo")
        assert waymo[2] is not None  # APM computable
        assert table.row_for("Tesla")[2] is None

    def test_table8_four_rows(self, db):
        table = tables_paper.table8(db)
        assert [row[0] for row in table.rows] == [
            "Waymo", "Delphi", "Nissan", "GMCruise"]


class TestPaperFigures:
    def test_figure4_boxes(self, db):
        figure = figures_paper.figure4(db)
        assert len(figure.boxes) == 8
        waymo = figure.box_by_label("Waymo").box
        benz = figure.box_by_label("Mercedes-Benz").box
        assert waymo.median < benz.median / 100

    def test_figure5_fits_positive_slopes(self, db):
        figure = figures_paper.figure5(db)
        assert len(figure.series) == 8
        for series in figure.series:
            assert "slope=" in series.annotation

    def test_figure6_fractions(self, db):
        figure = figures_paper.figure6(db)
        assert any("Tesla" in a and "Unknown-T" in a
                   for a in figure.annotations)

    def test_figure7_boxes_by_year(self, db):
        figure = figures_paper.figure7(db)
        labels = {box.label for box in figure.boxes}
        assert "Waymo 2014" in labels
        assert "Waymo 2016" in labels

    def test_figure8_correlation_annotation(self, db):
        figure = figures_paper.figure8(db)
        assert figure.annotations
        assert "pearsonr = -0.8" in figure.annotations[0]

    def test_figure9_series(self, db):
        figure = figures_paper.figure9(db)
        assert {s.name for s in figure.series} >= {"Waymo", "Bosch"}

    def test_figure10_boxes_and_mean(self, db):
        figure = figures_paper.figure10(db)
        assert len(figure.boxes) == 6
        assert "overall mean reaction time" in figure.annotations[0]

    def test_figure11_fit_pairs(self, db):
        figure = figures_paper.figure11(db)
        names = {s.name for s in figure.series}
        assert names == {"Mercedes-Benz data", "Mercedes-Benz fit",
                         "Waymo data", "Waymo fit"}

    def test_figure12_three_panels(self, db):
        figure = figures_paper.figure12(db)
        assert len(figure.series) == 6  # data + fit per panel
        assert "relative speed < 10 mph" in figure.annotations[0]


class TestRegistry:
    def test_experiment_census(self):
        # 19 paper exhibits (8 tables + figures 2-12) + 4 extensions.
        paper = [e for e in EXPERIMENTS.values()
                 if not e.experiment_id.startswith("ext-")]
        extensions = [e for e in EXPERIMENTS.values()
                      if e.experiment_id.startswith("ext-")]
        assert len(paper) == 19
        assert len(extensions) == 5
        figures = [e for e in paper if e.kind == "figure"]
        assert len(figures) == 11

    def test_run_experiment(self, db):
        exhibit = run_experiment("table6", db)
        assert "Table VI" in exhibit.render()

    def test_every_experiment_renders(self, db):
        for experiment_id in EXPERIMENTS:
            exhibit = run_experiment(experiment_id, db)
            assert exhibit.render().strip()
