"""Round-trip tests for every per-manufacturer format parser.

Each test renders a canonical record with the synth renderer and
checks the matching parser recovers the same fields (clean text; the
OCR-noise path is covered by the integration tests).
"""

from datetime import date

import pytest

from repro.parsing.formats import (
    BenzParser,
    BoschParser,
    DelphiParser,
    GenericParser,
    GmCruiseParser,
    NissanParser,
    TeslaParser,
    VolkswagenParser,
    WaymoParser,
)
from repro.parsing.records import DisengagementRecord, MonthlyMileage
from repro.synth.reports import _ROW_RENDERERS, _render_mileage_line
from repro.taxonomy import Modality


def _record(manufacturer, **overrides):
    base = dict(
        manufacturer=manufacturer,
        month="2015-03",
        event_date=date(2015, 3, 14),
        time_of_day=(13, 25, 7),
        vehicle_id="...4T8R2",
        modality=Modality.MANUAL,
        road_type="highway",
        weather="Sunny/Dry",
        reaction_time_s=0.9,
        description="Software module froze",
    )
    base.update(overrides)
    return DisengagementRecord(**base)


def _roundtrip(parser, record):
    line = _ROW_RENDERERS[record.manufacturer](record)
    parsed = parser.parse_row(line)
    assert parsed is not None, f"row not recognized: {line!r}"
    return parsed


class TestNissan:
    def test_roundtrip(self):
        record = _record("Nissan", vehicle_id="Leaf #1 (Alfa)")
        parsed = _roundtrip(NissanParser(), record)
        assert parsed.event_date == record.event_date
        assert parsed.time_of_day == (13, 25, 0)  # minute granularity
        assert parsed.vehicle_id == "Leaf #1 (Alfa)"
        assert parsed.modality is Modality.MANUAL
        assert parsed.road_type == "highway"
        assert parsed.weather == "Sunny/Dry"
        assert parsed.reaction_time_s == pytest.approx(0.9)
        assert parsed.description == "Software module froze"

    def test_without_reaction_time(self):
        record = _record("Nissan", vehicle_id="Leaf #1 (Alfa)",
                         reaction_time_s=None)
        parsed = _roundtrip(NissanParser(), record)
        assert parsed.reaction_time_s is None
        assert parsed.description == "Software module froze"

    def test_mileage_line(self):
        cell = MonthlyMileage("Nissan", "2015-03", 55.32,
                              "Leaf #1 (Alfa)")
        line = _render_mileage_line("Nissan", cell)
        parsed = NissanParser().parse_mileage(line)
        assert parsed.month == "2015-03"
        assert parsed.miles == pytest.approx(55.32)
        assert parsed.vehicle_id == "Leaf #1 (Alfa)"

    def test_rejects_garbage(self):
        assert NissanParser().parse_row("END OF REPORT") is None


class TestWaymo:
    def test_roundtrip_month_granularity(self):
        record = _record("Waymo", event_date=None, time_of_day=None,
                         vehicle_id="AV-003",
                         description="Disengage for a recklessly "
                                     "behaving road user")
        parsed = _roundtrip(WaymoParser(), record)
        assert parsed.month == "2015-03"
        assert parsed.event_date is None
        assert parsed.vehicle_id == "AV-003"
        assert parsed.reaction_time_s == pytest.approx(0.9)
        assert "recklessly behaving" in parsed.description

    def test_description_with_em_dash_survives(self):
        record = _record("Waymo", event_date=None, time_of_day=None,
                         vehicle_id="AV-001",
                         description="Takeover-Request — watchdog error")
        parsed = _roundtrip(WaymoParser(), record)
        assert "watchdog" in parsed.description

    def test_mileage_line(self):
        cell = MonthlyMileage("Waymo", "2016-05", 28342.1, "AV-001")
        line = _render_mileage_line("Waymo", cell)
        parsed = WaymoParser().parse_mileage(line)
        assert parsed.month == "2016-05"
        assert parsed.miles == pytest.approx(28342.1)
        assert parsed.vehicle_id == "AV-001"

    def test_mileage_with_damaged_keywords(self):
        line = "Auonomovs miles Dee-15 ear AV-O26: 824.8"
        parsed = WaymoParser().parse_mileage(line)
        assert parsed is not None
        assert parsed.month == "2015-12"
        assert parsed.vehicle_id == "AV-026"
        assert parsed.miles == pytest.approx(824.8)

    def test_event_row_not_mistaken_for_mileage(self):
        line = ("May-16 — Highway — Manual — Safe Operation — "
                "Disengage for sun glare")
        assert WaymoParser().parse_mileage(line) is None


class TestVolkswagen:
    def test_roundtrip(self):
        record = _record("Volkswagen", vehicle_id=None,
                         modality=Modality.AUTOMATIC,
                         description="watchdog error")
        parsed = _roundtrip(VolkswagenParser(), record)
        assert parsed.event_date == date(2015, 3, 14)
        assert parsed.time_of_day == (13, 25, 7)
        assert parsed.modality is Modality.AUTOMATIC
        assert parsed.description == "watchdog error"
        assert parsed.reaction_time_s == pytest.approx(0.9)

    def test_requires_takeover_marker(self):
        assert VolkswagenParser().parse_row(
            "03/14/15 — 13:25:07 — something — else") is None


class TestBenz:
    def test_roundtrip(self):
        record = _record("Mercedes-Benz", vehicle_id="S500-1")
        parsed = _roundtrip(BenzParser(), record)
        assert parsed.event_date == date(2015, 3, 14)
        assert parsed.vehicle_id == "S500-1"
        assert parsed.modality is Modality.MANUAL
        assert parsed.road_type == "highway"
        assert parsed.reaction_time_s == pytest.approx(0.9)

    def test_fuzzy_keys(self):
        line = ("Dafe: 03/14/2015; Tirne: 13:25; Vehicle: S500-1; "
                "Initiator: Driver; Causc: Software module froze; "
                "Road: highway; Weather: Sunny/Dry")
        parsed = BenzParser().parse_row(line)
        assert parsed is not None
        assert parsed.event_date == date(2015, 3, 14)
        assert parsed.description == "Software module froze"

    def test_mileage_km_conversion(self):
        cell = MonthlyMileage("Mercedes-Benz", "2015-03", 62.1371,
                              "S500-1")
        line = _render_mileage_line("Mercedes-Benz", cell)
        parsed = BenzParser().parse_mileage(line)
        assert parsed.miles == pytest.approx(62.1371, rel=1e-3)


class TestBosch:
    def test_roundtrip(self):
        record = _record("Bosch", modality=Modality.PLANNED)
        parsed = _roundtrip(BoschParser(), record)
        assert parsed.modality is Modality.PLANNED
        assert parsed.description == "Software module froze"
        assert parsed.road_type == "highway"


class TestGmCruise:
    def test_roundtrip(self):
        record = _record("GMCruise", modality=Modality.PLANNED,
                         description="Improper motion planning, again")
        parsed = _roundtrip(GmCruiseParser(), record)
        assert parsed.modality is Modality.PLANNED
        assert parsed.description == "Improper motion planning, again"

    def test_rejects_wrong_column_count(self):
        assert GmCruiseParser().parse_row("a,b,c,d") is None


class TestDelphi:
    def test_roundtrip(self):
        record = _record("Delphi", description="Planner failed, badly")
        parsed = _roundtrip(DelphiParser(), record)
        assert parsed.event_date == date(2015, 3, 14)
        assert parsed.modality is Modality.MANUAL
        assert parsed.description == "Planner failed, badly"
        assert parsed.reaction_time_s == pytest.approx(0.9)

    def test_mileage_csv(self):
        cell = MonthlyMileage("Delphi", "2015-03", 833.1, "...4T8R2")
        line = _render_mileage_line("Delphi", cell)
        parsed = DelphiParser().parse_mileage(line)
        assert parsed.miles == pytest.approx(833.1)


class TestTesla:
    def test_roundtrip(self):
        record = _record("Tesla", vehicle_id=None,
                         modality=Modality.AUTOMATIC,
                         description="Driver disengaged")
        parsed = _roundtrip(TeslaParser(), record)
        assert parsed.event_date == date(2015, 3, 14)
        assert parsed.modality is Modality.AUTOMATIC
        assert parsed.description == "Driver disengaged"
        assert parsed.reaction_time_s == pytest.approx(0.9)


class TestGeneric:
    def test_roundtrip(self):
        parser = GenericParser("Ford")
        line = "2016-08-14 | unknown vehicle | Auto | something odd"
        parsed = parser.parse_row(line)
        assert parsed.manufacturer == "Ford"
        assert parsed.vehicle_id is None
        assert parsed.modality is Modality.AUTOMATIC
        assert parsed.description == "something odd"
