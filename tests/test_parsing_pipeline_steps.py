"""Tests for normalization, filtering, registry dispatch, and the
OL-316 accident parser."""

from datetime import date

import pytest

from repro.errors import ParseError
from repro.parsing import (
    default_registry,
    filter_records,
    parse_accident_report,
    parse_report,
)
from repro.parsing.base import ParserRegistry, _levenshtein
from repro.parsing.formats import NissanParser, WaymoParser
from repro.parsing.normalize import (
    NormalizationStats,
    normalize_accident,
    normalize_disengagement,
    normalize_records,
)
from repro.parsing.records import AccidentRecord, DisengagementRecord, MonthlyMileage
from repro.taxonomy import Modality


def _record(**overrides):
    base = dict(manufacturer="Nissan", month="2015-03",
                description="Software module froze")
    base.update(overrides)
    return DisengagementRecord(**base)


class TestNormalization:
    def test_valid_record_passes(self):
        stats = NormalizationStats()
        record = normalize_disengagement(_record(), stats)
        assert record is not None
        assert stats.disengagements_dropped == 0

    def test_bad_month_dropped(self):
        stats = NormalizationStats()
        assert normalize_disengagement(
            _record(month="2015-13"), stats) is None
        assert stats.reasons["invalid month"] == 1

    def test_empty_description_dropped(self):
        stats = NormalizationStats()
        assert normalize_disengagement(
            _record(description="   "), stats) is None

    def test_whitespace_collapsed(self):
        stats = NormalizationStats()
        record = normalize_disengagement(
            _record(description="a   b\t c"), stats)
        assert record.description == "a b c"

    def test_nonpositive_reaction_time_cleared(self):
        stats = NormalizationStats()
        record = normalize_disengagement(
            _record(reaction_time_s=-1.0), stats)
        assert record.reaction_time_s is None

    def test_suspect_reaction_time_flagged_not_dropped(self):
        stats = NormalizationStats()
        record = normalize_disengagement(
            _record(reaction_time_s=14280.0), stats)
        assert record is not None
        assert record.reaction_time_s == 14280.0
        assert stats.suspect_reaction_times == 1

    def test_negative_miles_dropped(self):
        _, mileage, stats = normalize_records(
            [], [MonthlyMileage("Nissan", "2015-03", -5.0, "x")])
        assert mileage == []
        assert stats.mileage_dropped == 1

    def test_accident_month_derived_from_date(self):
        accident = AccidentRecord(
            manufacturer="Waymo", event_date=date(2016, 5, 2),
            description="  a   b ")
        normalized = normalize_accident(accident)
        assert normalized.month == "2016-05"
        assert normalized.description == "a b"


class TestFilters:
    def test_exact_duplicates_dropped(self):
        records = [_record(), _record()]
        kept, stats = filter_records(records)
        assert len(kept) == 1
        assert stats.duplicates_dropped == 1

    def test_distinct_records_kept(self):
        records = [_record(), _record(description="other cause")]
        kept, stats = filter_records(records)
        assert len(kept) == 2

    def test_planned_annotated_but_kept_by_default(self):
        records = [_record(modality=Modality.PLANNED)]
        kept, stats = filter_records(records)
        assert len(kept) == 1
        assert stats.planned_annotated == 1
        assert stats.planned_dropped == 0

    def test_drop_planned_mode(self):
        records = [_record(modality=Modality.PLANNED),
                   _record(modality=Modality.MANUAL)]
        kept, stats = filter_records(records, drop_planned=True)
        assert len(kept) == 1
        assert stats.planned_dropped == 1
        assert stats.records_out == 1


class TestRegistry:
    def test_levenshtein(self):
        assert _levenshtein("waymo", "waymo") == 0
        assert _levenshtein("wayrno", "waymo") <= 2
        assert _levenshtein("abc", "xyz") == 3
        assert _levenshtein("short", "muchlongername") > 4

    def test_lookup_exact(self):
        registry = default_registry()
        assert registry.by_name("Waymo").manufacturer == "Waymo"

    def test_lookup_fuzzy(self):
        registry = default_registry()
        assert registry.by_name("Wayrno").manufacturer == "Waymo"
        assert registry.by_name("N1ssan").manufacturer == "Nissan"

    def test_lookup_miss(self):
        registry = default_registry()
        assert registry.by_name("Completely Unknown Motors") is None

    def test_resolve_by_header(self):
        lines = ["REPORT OF AUTONOMOUS VEHICLE DISENGAGEMENTS",
                 "Manufacturer: Nissan", ""]
        parser = default_registry().resolve(lines)
        assert parser.manufacturer == "Nissan"

    def test_resolve_by_sniffing_when_header_damaged(self):
        lines = ["garbage header",
                 "May-16 — Highway — Manual — Safe Operation — "
                 "Disengage for sun glare"] * 3
        parser = default_registry().resolve(lines)
        assert parser.manufacturer == "Waymo"

    def test_resolve_unknown_format_raises(self):
        with pytest.raises(ParseError):
            default_registry().resolve(["???", "!!!"])

    def test_register_requires_name(self):
        registry = ParserRegistry()
        parser = NissanParser()
        registry.register(parser)
        assert registry.parsers() == [parser]

    def test_parse_report_end_to_end(self):
        lines = [
            "REPORT OF AUTONOMOUS VEHICLE DISENGAGEMENTS",
            "Manufacturer: Nissan",
            "SECTION 1: AUTONOMOUS MILES",
            "MILES 2016-01 Leaf #1 (Alfa) 120.5",
            "SECTION 2: DISENGAGEMENT EVENTS",
            "1/4/16 — 1:25 PM — Leaf #1 (Alfa) — Manual — Software "
            "module froze — city street — Sunny/Dry — 0.9 s",
            "END OF REPORT",
        ]
        report = parse_report(lines, "doc-1")
        assert len(report.disengagements) == 1
        assert len(report.mileage) == 1
        assert report.total_miles == pytest.approx(120.5)
        assert report.disengagements[0].source_document == "doc-1"


class TestAccidentParser:
    def _lines(self, **overrides):
        fields = {
            "Manufacturer": "Waymo",
            "Date of Accident": "05/12/2016",
            "Location": "El Camino Real and Castro St, Mountain View, CA",
            "Vehicle": "AV-007",
            "Autonomous Mode at Time of Collision": "YES",
            "AV Speed": "4.2 MPH",
            "Other Vehicle Speed": "9.1 MPH",
            "Collision Type": "rear-end",
            "Injuries": "NONE",
            "Description": "The AV was struck from behind.",
        }
        fields.update(overrides)
        return ["STATE OF CALIFORNIA",
                "REPORT OF TRAFFIC ACCIDENT INVOLVING AN AUTONOMOUS "
                "VEHICLE (OL 316)"] + [
            f"{key}: {value}" for key, value in fields.items()]

    def test_full_parse(self):
        record = parse_accident_report(self._lines(), "acc-1")
        assert record.manufacturer == "Waymo"
        assert record.event_date == date(2016, 5, 12)
        assert record.av_speed_mph == pytest.approx(4.2)
        assert record.other_speed_mph == pytest.approx(9.1)
        assert record.relative_speed_mph == pytest.approx(4.9)
        assert record.autonomous_at_collision is True
        assert record.collision_type == "rear-end"
        assert not record.injuries
        assert record.vehicle_id == "AV-007"

    def test_redacted_vehicle(self):
        record = parse_accident_report(
            self._lines(Vehicle="[REDACTED]"), "acc-2")
        assert record.redacted
        assert record.vehicle_id is None

    def test_pre_collision_disengagement_detected(self):
        record = parse_accident_report(self._lines(
            Description="Contact. The test driver disengaged "
                        "autonomous mode prior to the collision."),
            "acc-3")
        assert record.disengaged_before_collision

    def test_damaged_manufacturer_snapped(self):
        record = parse_accident_report(
            self._lines(Manufacturer="Wayrno"), "acc-4")
        assert record.manufacturer == "Waymo"

    def test_unknown_speed_is_none(self):
        record = parse_accident_report(
            self._lines(**{"AV Speed": "UNKNOWN"}), "acc-5")
        assert record.av_speed_mph is None
        assert record.relative_speed_mph is None

    def test_non_accident_document_rejected(self):
        with pytest.raises(ParseError):
            parse_accident_report(["just", "text"], "acc-6")
