"""Statistical recovery tests through the full OCR channel.

Render batches of records, corrupt them at controlled quality levels,
run the corrector, and assert recovery-rate floors per format.  This
pins down the end-to-end robustness budget the pipeline relies on.
"""

from datetime import date

import numpy as np
import pytest

from repro.ocr import ConfusionModel, OcrCorrector
from repro.parsing.formats import (
    BenzParser,
    DelphiParser,
    NissanParser,
    VolkswagenParser,
    WaymoParser,
)
from repro.parsing.records import DisengagementRecord
from repro.synth.reports import _ROW_RENDERERS
from repro.taxonomy import Modality

BATCH = 120


def _records(manufacturer: str, rng: np.random.Generator):
    descriptions = [
        "Software module froze",
        "The AV didn't see the lead vehicle",
        "Planner failed to anticipate the other driver's behavior",
        "Disengage for a construction zone",
        "LIDAR failed to localize in time",
        "Takeover-Request — watchdog error",
    ]
    for i in range(BATCH):
        day = int(rng.integers(1, 28))
        yield DisengagementRecord(
            manufacturer=manufacturer,
            month="2015-06",
            event_date=date(2015, 6, day),
            time_of_day=(int(rng.integers(0, 24)),
                         int(rng.integers(0, 60)),
                         int(rng.integers(0, 60))),
            vehicle_id=("Leaf #1 (Alfa)" if manufacturer == "Nissan"
                        else "AV-007" if manufacturer == "Waymo"
                        else "...XK42P"),
            modality=Modality.MANUAL,
            road_type="highway",
            weather="Sunny/Dry",
            reaction_time_s=round(float(rng.uniform(0.2, 3.0)), 2),
            description=descriptions[i % len(descriptions)],
        )


def _recovery_rate(manufacturer: str, parser, quality: float,
                   seed: int = 0) -> float:
    rng = np.random.default_rng(seed)
    channel = ConfusionModel()
    corrector = OcrCorrector()
    renderer = _ROW_RENDERERS[manufacturer]
    recovered = 0
    total = 0
    for record in _records(manufacturer, rng):
        line = renderer(record)
        noisy, _ = channel.corrupt_line(line, quality, rng)
        repaired = corrector.correct_line(noisy)
        total += 1
        if parser.parse_row(repaired) is not None:
            recovered += 1
    return recovered / total


CASES = [
    ("Nissan", NissanParser()),
    ("Waymo", WaymoParser()),
    ("Volkswagen", VolkswagenParser()),
    ("Mercedes-Benz", BenzParser()),
    ("Delphi", DelphiParser()),
]


@pytest.mark.parametrize("manufacturer,parser", CASES,
                         ids=[c[0] for c in CASES])
def test_high_quality_recovery_near_total(manufacturer, parser):
    rate = _recovery_rate(manufacturer, parser, quality=0.97)
    assert rate >= 0.97, f"{manufacturer}: {rate:.2%}"


@pytest.mark.parametrize("manufacturer,parser", CASES,
                         ids=[c[0] for c in CASES])
def test_moderate_quality_recovery(manufacturer, parser):
    rate = _recovery_rate(manufacturer, parser, quality=0.85)
    assert rate >= 0.80, f"{manufacturer}: {rate:.2%}"


@pytest.mark.parametrize("manufacturer,parser", CASES,
                         ids=[c[0] for c in CASES])
def test_recovery_degrades_monotonically(manufacturer, parser):
    good = _recovery_rate(manufacturer, parser, quality=0.97)
    bad = _recovery_rate(manufacturer, parser, quality=0.45)
    assert good >= bad


def test_terrible_quality_is_why_fallback_exists():
    # Row *structure* survives even terrible scans (separators and
    # digits are robust), but the narrative text does not: tagging the
    # recovered descriptions collapses, which is why low-confidence
    # pages go to manual transcription instead of the parser.
    from repro.nlp import FailureDictionary, VotingTagger

    rng = np.random.default_rng(1)
    channel = ConfusionModel()
    corrector = OcrCorrector()
    tagger = VotingTagger(FailureDictionary.from_seeds())
    parser = NissanParser()
    renderer = _ROW_RENDERERS["Nissan"]

    agree = 0
    total = 0
    for record in _records("Nissan", rng):
        clean_tag = tagger.tag(record.description).tag
        noisy, _ = channel.corrupt_line(renderer(record), 0.2, rng)
        parsed = parser.parse_row(corrector.correct_line(noisy))
        if parsed is None:
            continue
        total += 1
        if tagger.tag(parsed.description).tag is clean_tag:
            agree += 1
    assert total > 0.8 * BATCH        # structure mostly survives...
    assert agree / total < 0.85       # ...but tags no longer do
