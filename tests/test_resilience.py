"""Tests for the pipeline resilience layer and the chaos harness.

Covers the three failure-policy modes, bounded retry, quarantine
round-tripping, degradation fallbacks, the determinism contract (a
clean guarded run is byte-identical to an unguarded one), and the
acceptance scenario: a chaos run injecting a 10% exception rate into
the parse stage.
"""

import json

import pytest

from repro.errors import (
    DegradedModeWarning,
    ParseError,
    PipelineError,
    QuarantinedError,
    ReproError,
    TransientError,
)
from repro.pipeline import (
    ChaosConfig,
    FailureDatabase,
    FailurePolicy,
    PipelineConfig,
    StageGuard,
    process_corpus,
    retry_with_backoff,
    run_pipeline,
)
from repro.pipeline.chaos import ChaosError, ChaosInjector, _corrupt
from repro.pipeline.resilience import Quarantine, QuarantineEntry
from repro.rng import child_generator
from repro.taxonomy import FaultTag


class TestFailurePolicy:
    def test_defaults(self):
        policy = FailurePolicy()
        assert policy.mode == "quarantine"
        assert policy.max_retries == 2

    @pytest.mark.parametrize("kwargs", [
        {"mode": "panic"},
        {"max_error_rate": 1.5},
        {"max_error_rate": -0.1},
        {"max_retries": -1},
        {"min_samples": 0},
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FailurePolicy(**kwargs)

    def test_config_resolves_policy(self):
        config = PipelineConfig(failure_policy="threshold",
                                max_error_rate=0.25, max_retries=5)
        policy = config.resolved_policy()
        assert policy.mode == "threshold"
        assert policy.max_error_rate == 0.25
        assert policy.max_retries == 5

    def test_config_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            PipelineConfig(failure_policy="telepathy")


class TestRetryWithBackoff:
    def test_clean_call_passes_through(self):
        assert retry_with_backoff(lambda: 42, retries=3, seed=1,
                                  stream="s") == 42

    def test_transient_fault_retried_to_success(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientError("not yet")
            return "ok"

        assert retry_with_backoff(flaky, retries=3, seed=1,
                                  stream="s") == "ok"
        assert len(attempts) == 3

    def test_retries_exhausted_reraises(self):
        def always():
            raise TransientError("never")

        with pytest.raises(TransientError):
            retry_with_backoff(always, retries=2, seed=1, stream="s")

    def test_permanent_fault_not_retried(self):
        attempts = []

        def broken():
            attempts.append(1)
            raise ValueError("permanent")

        with pytest.raises(ValueError):
            retry_with_backoff(broken, retries=5, seed=1, stream="s")
        assert len(attempts) == 1

    def test_backoff_delays_are_deterministic_and_bounded(self):
        def delays_for(seed):
            delays = []

            def always():
                raise TransientError("x")

            with pytest.raises(TransientError):
                retry_with_backoff(always, retries=3, seed=seed,
                                   stream="s", base_delay=0.01,
                                   sleep=delays.append)
            return delays

        first = delays_for(7)
        assert first == delays_for(7)  # seeded jitter
        assert first != delays_for(8)
        assert len(first) == 3
        for attempt, delay in enumerate(first):
            base = 0.01 * (2 ** attempt)
            assert base <= delay < 2 * base  # full jitter in [1, 2)


def _failing(message="boom"):
    def func():
        raise RuntimeError(message)
    return func


class TestStageGuard:
    def test_success_passes_value_through(self):
        guard = StageGuard()
        assert guard.run("stage", "u1", lambda: "value") == "value"
        assert guard.health.stage("stage").attempts == 1
        assert guard.health.clean

    def test_expected_exceptions_are_domain_outcomes(self):
        guard = StageGuard()

        def unparseable():
            raise ParseError("bad report")

        with pytest.raises(ParseError):
            guard.run("parse", "doc", unparseable,
                      expected=(ParseError,))
        assert guard.health.stage("parse").errors == 0
        assert len(guard.quarantine) == 0

    def test_fail_fast_raises_pipeline_error(self):
        guard = StageGuard(FailurePolicy(mode="fail_fast"))
        with pytest.raises(PipelineError):
            guard.run("stage", "u1", _failing())
        assert len(guard.quarantine) == 0

    def test_quarantine_captures_and_continues(self):
        guard = StageGuard(FailurePolicy(mode="quarantine"))
        with pytest.raises(QuarantinedError):
            guard.run("stage", "u1", _failing("first"))
        assert guard.run("stage", "u2", lambda: "fine") == "fine"
        entry = guard.quarantine.entries[0]
        assert entry.unit_id == "u1"
        assert entry.stage == "stage"
        assert entry.error_type == "RuntimeError"
        assert "first" in entry.message
        assert "RuntimeError" in entry.traceback

    def test_all_guard_failures_catchable_as_repro_error(self):
        # The hierarchy contract: whatever mode, a failure surfaced by
        # the resilience layer is a ReproError.
        for mode in ("fail_fast", "quarantine", "threshold"):
            guard = StageGuard(FailurePolicy(mode=mode, min_samples=1,
                                             max_error_rate=0.0))
            with pytest.raises(ReproError):
                guard.run("stage", "u1", _failing())

    def test_fallback_degrades_instead_of_quarantining(self):
        guard = StageGuard(FailurePolicy(mode="quarantine"))
        value = guard.run("tag", "r1", _failing(), fallback=lambda: -1)
        assert value == -1
        stats = guard.health.stage("tag")
        assert stats.errors == 1
        assert stats.degradations == 1
        assert stats.quarantined == 0
        assert len(guard.quarantine) == 0
        assert guard.health.degradation_events

    def test_fallback_ignored_under_fail_fast(self):
        guard = StageGuard(FailurePolicy(mode="fail_fast"))
        with pytest.raises(PipelineError):
            guard.run("tag", "r1", _failing(), fallback=lambda: -1)

    def test_transient_fault_retried_then_counted(self):
        guard = StageGuard(FailurePolicy(max_retries=2))
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 2:
                raise TransientError("blip")
            return "ok"

        assert guard.run("stage", "u1", flaky) == "ok"
        stats = guard.health.stage("stage")
        assert stats.retries == 1
        assert stats.errors == 0

    def test_threshold_aborts_at_exactly_the_configured_rate(self):
        # max_error_rate is a strict bound: a stage sitting exactly at
        # the configured rate keeps going; the first error that pushes
        # it over aborts the run.
        policy = FailurePolicy(mode="threshold", max_error_rate=0.5,
                               min_samples=2)
        guard = StageGuard(policy)
        # Error 1/1: 100%, but below min_samples -> quarantined only.
        with pytest.raises(QuarantinedError):
            guard.run("stage", "u0", _failing())
        # Success 1/2: rate drops to exactly 0.5 -> not *over* -> ok.
        guard.run("stage", "u1", lambda: "ok")
        assert guard.health.stage("stage").error_rate == 0.5
        # Error 2/3: 66.7% > 50% -> threshold abort.
        with pytest.raises(PipelineError) as excinfo:
            guard.run("stage", "u2", _failing())
        assert not isinstance(excinfo.value, QuarantinedError)
        assert guard.health.stage("stage").errors == 2

    def test_threshold_respects_min_samples(self):
        policy = FailurePolicy(mode="threshold", max_error_rate=0.1,
                               min_samples=5)
        guard = StageGuard(policy)
        # One early failure is 100% error rate but below min_samples.
        with pytest.raises(QuarantinedError):
            guard.run("stage", "u0", _failing())
        for i in range(1, 4):
            guard.run("stage", f"u{i}", lambda: i)
        # 5th attempt fails: 2/5 = 40% > 10% -> abort.
        with pytest.raises(PipelineError) as excinfo:
            guard.run("stage", "u4", _failing())
        assert not isinstance(excinfo.value, QuarantinedError)


class TestQuarantineStore:
    def test_by_stage_and_unit_ids(self):
        quarantine = Quarantine()
        quarantine.add(QuarantineEntry("d1", "parse", "ValueError",
                                       "m", "tb"))
        quarantine.add(QuarantineEntry("d2", "parse", "KeyError",
                                       "m", "tb"))
        quarantine.add(QuarantineEntry("d3", "ocr", "OSError",
                                       "m", "tb"))
        assert quarantine.by_stage() == {"ocr": 1, "parse": 2}
        assert quarantine.unit_ids("parse") == ["d1", "d2"]

    def test_roundtrip_through_database_json(self):
        db = FailureDatabase()
        db.quarantine.add(QuarantineEntry(
            unit_id="doc-7", stage="parse",
            error_type="ChaosError", message="injected",
            traceback="Traceback ..."))
        clone = FailureDatabase.from_json(db.to_json())
        assert clone.quarantine.entries == db.quarantine.entries

    def test_clean_database_json_has_no_quarantine_key(self):
        # Byte-stability: clean databases serialize exactly as before
        # the resilience layer existed.
        data = json.loads(FailureDatabase().to_json())
        assert "quarantine" not in data

    def test_legacy_json_loads_without_quarantine(self):
        legacy = json.dumps({"disengagements": [], "accidents": [],
                             "mileage": []})
        assert len(FailureDatabase.from_json(legacy).quarantine) == 0


class TestChaosInjector:
    def test_other_stages_untouched(self):
        injector = ChaosInjector(ChaosConfig(stage="parse", rate=1.0))
        func = lambda: "x"  # noqa: E731
        assert injector.wrap("ocr", "u", func) is func

    def test_exception_kind_raises_chaos_error(self):
        injector = ChaosInjector(ChaosConfig(stage="parse", rate=1.0))
        with pytest.raises(ChaosError):
            injector.wrap("parse", "u", lambda: "x")()
        assert injector.injected == 1

    def test_transient_kind_raises_transient_error(self):
        injector = ChaosInjector(ChaosConfig(
            stage="parse", rate=1.0, kind="transient"))
        with pytest.raises(TransientError):
            injector.wrap("parse", "u", lambda: "x")()

    def test_latency_kind_returns_value(self):
        injector = ChaosInjector(ChaosConfig(
            stage="parse", rate=1.0, kind="latency", latency_s=0.0))
        assert injector.wrap("parse", "u", lambda: "x")() == "x"

    def test_corruption_kind_garbles_lines(self):
        injector = ChaosInjector(ChaosConfig(
            stage="ocr", rate=1.0, kind="corruption"))
        lines = injector.wrap("ocr", "u", lambda: ["aa", "bb"])()
        assert lines != ["aa", "bb"]
        assert len(lines) == 2

    def test_corrupt_fallback_shapes(self):
        rng = child_generator(0, "t")
        assert _corrupt("abc", rng) == "cba"
        assert _corrupt(123, rng) is None

    def test_injection_is_seed_deterministic(self):
        def hits(seed):
            injector = ChaosInjector(
                ChaosConfig(stage="parse", rate=0.5), seed=seed)
            out = []
            for i in range(50):
                try:
                    injector.wrap("parse", f"u{i}", lambda: "x")()
                    out.append(False)
                except ChaosError:
                    out.append(True)
            return out

        assert hits(1) == hits(1)
        assert hits(1) != hits(2)
        rate = sum(hits(1)) / 50
        assert 0.2 < rate < 0.8

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ChaosConfig(stage="parse", kind="gremlins")
        with pytest.raises(ValueError):
            ChaosConfig(stage="parse", rate=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(stage="parse", latency_s=-1)


def _nissan_config(**overrides):
    defaults = dict(seed=5, manufacturers=["Nissan"],
                    ocr_enabled=False, dictionary_mode="seed")
    defaults.update(overrides)
    return PipelineConfig(**defaults)


class TestResilientPipeline:
    def test_clean_run_is_byte_identical_and_healthy(self):
        baseline = run_pipeline(_nissan_config())
        again = run_pipeline(_nissan_config(max_retries=5,
                                            failure_policy="threshold"))
        assert baseline.database.to_json() == again.database.to_json()
        assert baseline.diagnostics.health.clean
        assert "quarantine" not in json.loads(
            baseline.database.to_json())

    # Seed 12 makes the 10% channel hit both disengagement and
    # accident documents of the full corpus (2 + 4 of 58 units).
    CHAOS_10PCT = dict(seed=12, ocr_enabled=False,
                       dictionary_mode="seed")

    def test_parse_chaos_quarantine_completes(self, corpus):
        # The acceptance scenario: 10% exception rate in the parse
        # stage under quarantine completes end to end and keeps every
        # record from the non-quarantined documents.
        chaos = ChaosConfig(stage="parse", rate=0.10)
        config = PipelineConfig(failure_policy="quarantine",
                                chaos=chaos, **self.CHAOS_10PCT)
        result = process_corpus(corpus, config)
        health = result.diagnostics.health
        db = result.database

        clean = process_corpus(
            corpus, PipelineConfig(**self.CHAOS_10PCT))
        assert health.total_quarantined > 0
        assert health.stage("parse").errors == \
            health.total_quarantined
        assert len(db.quarantine) == health.total_quarantined
        # Every record whose document was not quarantined survives.
        lost_docs = set(db.quarantine.unit_ids("parse"))
        expected = [r for r in clean.database.disengagements
                    if r.source_document not in lost_docs]
        assert len(db.disengagements) == len(expected)
        assert len(db.disengagements) < \
            len(clean.database.disengagements)
        assert len(db.accidents) < len(clean.database.accidents)

    def test_parse_chaos_fail_fast_raises(self, corpus):
        chaos = ChaosConfig(stage="parse", rate=0.10)
        config = PipelineConfig(failure_policy="fail_fast",
                                chaos=chaos, **self.CHAOS_10PCT)
        with pytest.raises(PipelineError):
            process_corpus(corpus, config)

    def test_tagger_chaos_degrades_to_unknown(self):
        chaos = ChaosConfig(stage="tag", rate=0.2)
        result = run_pipeline(_nissan_config(chaos=chaos))
        health = result.diagnostics.health
        assert health.stage("tag").degradations > 0
        assert health.total_quarantined == 0  # degraded, not lost
        assert len(result.database.disengagements) == 135
        degraded = [r for r in result.database.disengagements
                    if r.tag is FaultTag.UNKNOWN]
        assert len(degraded) >= health.stage("tag").degradations

    def test_dictionary_chaos_falls_back_to_seeds(self):
        chaos = ChaosConfig(stage="dictionary", rate=1.0)
        config = _nissan_config(dictionary_mode="expanded",
                                chaos=chaos)
        with pytest.warns(DegradedModeWarning):
            result = run_pipeline(config)
        health = result.diagnostics.health
        assert health.stage("dictionary").degradations == 1
        assert any("dictionary" in event
                   for event in health.degradation_events)
        # The seed dictionary still tags everything.
        assert all(r.tag is not None
                   for r in result.database.disengagements)

    def test_transient_chaos_survived_by_retries(self):
        chaos = ChaosConfig(stage="parse", rate=0.3,
                            kind="transient")
        result = run_pipeline(_nissan_config(chaos=chaos,
                                             max_retries=8))
        health = result.diagnostics.health
        assert health.total_retries > 0
        # With 8 re-rolls at 30%, every document eventually parses.
        assert len(result.database.disengagements) == 135

    def test_transient_chaos_without_retries_quarantines(self):
        chaos = ChaosConfig(stage="parse", rate=0.3,
                            kind="transient")
        result = run_pipeline(_nissan_config(chaos=chaos,
                                             max_retries=0))
        assert result.diagnostics.health.total_quarantined > 0

    def test_threshold_policy_aborts_heavy_chaos(self, corpus):
        # 90% parse failures blow through a 50% threshold as soon as
        # min_samples (20) attempts accumulate.
        chaos = ChaosConfig(stage="parse", rate=0.9)
        config = PipelineConfig(failure_policy="threshold",
                                max_error_rate=0.5, chaos=chaos,
                                **self.CHAOS_10PCT)
        with pytest.raises(PipelineError):
            process_corpus(corpus, config)

    def test_health_summary_is_json_friendly(self):
        chaos = ChaosConfig(stage="tag", rate=0.2)
        result = run_pipeline(_nissan_config(chaos=chaos))
        summary = result.diagnostics.health.summary()
        json.dumps(summary)  # must serialize
        assert summary["degradations"] == \
            result.diagnostics.health.total_degradations
        assert "tag" in summary["stages"]


class TestHealthRendering:
    def test_clean_render(self):
        from repro.pipeline.resilience import RunHealth
        from repro.reporting.summary import render_run_health

        text = render_run_health(RunHealth())
        assert "clean" in text

    def test_dirty_render_names_stages_and_units(self):
        from repro.reporting.summary import render_run_health

        guard = StageGuard(FailurePolicy(mode="quarantine"))
        with pytest.raises(QuarantinedError):
            guard.run("parse", "doc-3", _failing())
        text = render_run_health(guard.health, guard.quarantine)
        assert "parse" in text
        assert "doc-3" in text
        assert "RuntimeError" in text
