"""Tests for fleet roster synthesis."""

import numpy as np
import pytest

from repro.calibration.manufacturers import MANUFACTURERS, ReportPeriod
from repro.synth.fleet import build_roster, fleet_size


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_waymo_fleet_sizes_match_table1(rng):
    roster = build_roster("Waymo", rng)
    assert len(roster.vehicles(ReportPeriod.P2015_2016)) == 49
    assert len(roster.vehicles(ReportPeriod.P2016_2017)) == 70


def test_fleet_carryover_between_periods(rng):
    roster = build_roster("Waymo", rng)
    first = {v.vehicle_id for v in roster.vehicles(
        ReportPeriod.P2015_2016)}
    second = {v.vehicle_id for v in roster.vehicles(
        ReportPeriod.P2016_2017)}
    assert first <= second  # fleet grew; originals carried over


def test_fleet_shrinkage_keeps_prefix(rng):
    # Nissan: 4 cars then 3.
    roster = build_roster("Nissan", rng)
    first = roster.vehicles(ReportPeriod.P2015_2016)
    second = roster.vehicles(ReportPeriod.P2016_2017)
    assert len(first) == 4 and len(second) == 3
    assert [v.vehicle_id for v in second] == \
        [v.vehicle_id for v in first[:3]]


def test_nissan_vehicle_naming(rng):
    roster = build_roster("Nissan", rng)
    ids = [v.vehicle_id for v in roster.vehicles(
        ReportPeriod.P2015_2016)]
    assert ids[0] == "Leaf #1 (Alfa)"
    assert ids[1] == "Leaf #2 (Bravo)"


def test_waymo_vehicle_naming(rng):
    roster = build_roster("Waymo", rng)
    assert roster.vehicles(
        ReportPeriod.P2015_2016)[0].vehicle_id == "AV-001"


def test_vins_are_unique_and_17_chars(rng):
    roster = build_roster("Waymo", rng)
    vins = [v.vin for v in roster.all_vehicles()]
    assert len(set(vins)) == len(vins)
    assert all(len(v) == 17 for v in vins)


def test_vins_exclude_ambiguous_letters(rng):
    roster = build_roster("Bosch", rng)
    for vehicle in roster.all_vehicles():
        assert not set(vehicle.vin) & {"I", "O", "Q"}


def test_honda_has_empty_fleet(rng):
    roster = build_roster("Honda", rng)
    assert roster.all_vehicles() == []


def test_fleet_size_uses_assumptions_for_dashes():
    gm = MANUFACTURERS["GMCruise"]
    assert fleet_size(gm, ReportPeriod.P2015_2016) == 2
    assert fleet_size(gm, ReportPeriod.P2016_2017) == 10


def test_fleet_size_reads_table1_when_present():
    bosch = MANUFACTURERS["Bosch"]
    assert fleet_size(bosch, ReportPeriod.P2015_2016) == 2
    assert fleet_size(bosch, ReportPeriod.P2016_2017) == 3


def test_rosters_are_deterministic_per_seed():
    a = build_roster("Delphi", np.random.default_rng(5))
    b = build_roster("Delphi", np.random.default_rng(5))
    assert [v.vin for v in a.all_vehicles()] == \
        [v.vin for v in b.all_vehicles()]
