"""Tests for the ``/v1`` API redesign: versioned routes with
deprecation-signalled legacy aliases, the unified error envelope on
every non-2xx status, and cursor-based pagination with
snapshot-scoped cursors.
"""

from __future__ import annotations

import base64
import json
import urllib.error
import urllib.request

import pytest

from repro.obs import MetricsRegistry
from repro.query import QueryEngine, QueryServer, SnapshotManager
from repro.query.server import (
    LEGACY_ALIASES,
    decode_cursor,
    encode_cursor,
    error_envelope,
)


@pytest.fixture(scope="module")
def server(small_db):
    with QueryServer(small_db, port=0,
                     registry=MetricsRegistry()) as running:
        yield running


def _get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as res:
        return res.status, dict(res.headers), json.loads(res.read())


def _error(server, path):
    try:
        _get(server, path)
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())
    raise AssertionError(f"{path} unexpectedly succeeded")


class TestVersionedRoutes:
    CANONICAL = ["/v1/healthz", "/v1/readyz", "/v1/stats",
                 "/v1/manufacturers", "/v1/query?metric=dpm",
                 "/v1/metrics/dpm"]

    def test_v1_routes_answer(self, server):
        for path in self.CANONICAL:
            status, headers, _body = _get(server, path)
            assert status == 200, path
            assert "Deprecation" not in headers, path

    def test_legacy_alias_same_body_plus_deprecation(self, server):
        for legacy, canonical in sorted(LEGACY_ALIASES.items()):
            suffix = "?metric=dpm" if legacy == "/query" else ""
            status, headers, body = _get(server, legacy + suffix)
            assert status == 200, legacy
            assert headers["Deprecation"] == "true"
            assert canonical in headers["Link"]
            assert "successor-version" in headers["Link"]
            _, v1_headers, v1_body = _get(server, canonical + suffix)
            assert "Deprecation" not in v1_headers
            for volatile in ("elapsed_ms", "cached"):
                body.pop(volatile, None)
                v1_body.pop(volatile, None)
            assert body == v1_body, legacy

    def test_alias_folds_into_canonical_metric_label(self, server):
        registry = server.registry
        _get(server, "/healthz")
        _get(server, "/v1/healthz")
        dump = registry.dump()["repro_http_requests_total"]["series"]
        routes = {key[0] for key in dump}
        assert "/v1/healthz" in routes
        assert "/healthz" not in routes  # folded, not a new label

    def test_unknown_route_never_expands_labels(self, server):
        _error(server, "/v1/frobnicate")
        _error(server, "/frobnicate")
        dump = server.registry.dump()
        series = dump["repro_http_requests_total"]["series"]
        routes = {key[0] for key in series}
        assert "<unknown>" in routes
        assert "/v1/frobnicate" not in routes

    def test_legacy_exemption_still_applies(self, small_db):
        # /healthz resolves to the exempt /v1/healthz before the
        # admission check, so probes work during saturation.
        with QueryServer(small_db, port=0, max_inflight=1,
                         registry=MetricsRegistry()) as server:
            assert server._httpd.try_admit() is None
            try:
                assert _get(server, "/healthz")[0] == 200
                assert _get(server, "/readyz")[0] == 200
            finally:
                server._httpd.release()


class TestErrorEnvelope:
    def test_envelope_shape_on_every_code(self, server, small_db):
        cases = {
            400: "/v1/query?metric=frobnicate",
            404: "/v1/nope",
        }
        for expected, path in cases.items():
            code, _, body = _error(server, path)
            assert code == expected
            assert set(body) == {"error"}
            assert set(body["error"]) == {"code", "message",
                                          "detail"}

    def test_codes(self, server):
        for path, expected_code in [
                ("/v1/query?metric=frobnicate", "invalid_query"),
                ("/v1/nope", "not_found"),
                ("/v1/metrics/frobnicate", "not_found"),
                ("/v1/manufacturers?cursor=%21%21", "invalid_cursor"),
                ("/v1/query?metric=count&limit=3", "invalid_query"),
        ]:
            _, _, body = _error(server, path)
            assert body["error"]["code"] == expected_code, path

    def test_bad_json_envelope(self, server):
        request = urllib.request.Request(
            server.url + "/v1/query", data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        body = json.loads(excinfo.value.read())
        assert excinfo.value.code == 400
        assert body["error"]["code"] == "bad_json"

    def test_envelope_helper(self):
        assert error_envelope("x", "y") == {
            "error": {"code": "x", "message": "y", "detail": None}}


class TestCursors:
    def test_roundtrip(self):
        cursor = encode_cursor("abcdef0123456789", 7)
        assert decode_cursor(cursor, "abcdef0123456789") == 7

    def test_deterministic(self):
        assert (encode_cursor("abcdef0123456789", 3)
                == encode_cursor("abcdef0123456789", 3))

    def test_stale_on_other_fingerprint(self):
        from repro.query.server import _CursorError

        cursor = encode_cursor("abcdef0123456789", 7)
        with pytest.raises(_CursorError) as excinfo:
            decode_cursor(cursor, "ffff000000000000")
        assert excinfo.value.code == "stale_cursor"

    def test_invalid_tokens(self):
        from repro.query.server import _CursorError

        for bad in ("!!!", "", "AAAA",
                    base64.urlsafe_b64encode(b"no-colon").decode(),
                    base64.urlsafe_b64encode(b"fp:-3").decode()):
            with pytest.raises(_CursorError) as excinfo:
                decode_cursor(bad, "abcdef0123456789")
            assert excinfo.value.code == "invalid_cursor"


class TestPagination:
    def test_manufacturers_walk(self, server, small_db):
        everything = _get(server, "/v1/manufacturers")[2]
        assert "page" not in everything  # unpaginated = legacy body
        collected, cursor = [], None
        for _ in range(100):
            path = "/v1/manufacturers?limit=1"
            if cursor:
                path += f"&cursor={cursor}"
            _, _, body = _get(server, path)
            assert body["page"]["total"] == len(
                everything["manufacturers"])
            collected.extend(body["manufacturers"])
            cursor = body["page"]["next_cursor"]
            if cursor is None:
                break
        assert collected == everything["manufacturers"]

    def test_grouped_query_walk(self, server, small_db):
        full = _get(server,
                    "/v1/query?metric=dpm&group_by=manufacturer")[2]
        assert "page" not in full
        merged, cursor = {}, None
        for _ in range(100):
            path = ("/v1/query?metric=dpm&group_by=manufacturer"
                    "&limit=1")
            if cursor:
                path += f"&cursor={cursor}"
            _, _, body = _get(server, path)
            assert len(body["result"]) <= 1
            assert body["fingerprint"] == full["fingerprint"]
            merged.update(body["result"])
            cursor = body["page"]["next_cursor"]
            if cursor is None:
                break
        assert merged == full["result"]

    def test_post_pagination(self, server):
        payload = {"metric": "dpm", "group_by": "manufacturer",
                   "limit": 1}
        request = urllib.request.Request(
            server.url + "/v1/query",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST")
        with urllib.request.urlopen(request, timeout=10) as res:
            body = json.loads(res.read())
        assert len(body["result"]) == 1
        assert body["page"]["limit"] == 1

    def test_pagination_does_not_corrupt_cache(self, server):
        # A paginated request slices a view; the cached full result
        # must stay intact for the next unpaginated request.
        full_before = _get(
            server, "/v1/query?metric=count&group_by=manufacturer")[2]
        _get(server,
             "/v1/query?metric=count&group_by=manufacturer&limit=1")
        full_after = _get(
            server, "/v1/query?metric=count&group_by=manufacturer")[2]
        assert full_after["result"] == full_before["result"]

    def test_bad_limit(self, server):
        for bad in ("0", "-1", "zebra"):
            code, _, body = _error(
                server, f"/v1/manufacturers?limit={bad}")
            assert code == 400
            assert body["error"]["code"] == "invalid_query"

    def test_cursor_rejected_after_swap(self, small_db, db):
        manager = SnapshotManager(small_db)
        with QueryServer(manager, port=0,
                         registry=MetricsRegistry()) as server:
            _, _, page = _get(server, "/v1/manufacturers?limit=1")
            cursor = page["page"]["next_cursor"]
            assert cursor
            assert manager.swap_database(db)
            code, _, body = _error(
                server, f"/v1/manufacturers?cursor={cursor}")
            assert code == 400
            assert body["error"]["code"] == "stale_cursor"

    def test_cursor_offset_past_end(self, server, small_db):
        fingerprint = QueryEngine(small_db).fingerprint
        cursor = encode_cursor(fingerprint, 10_000)
        _, _, body = _get(server,
                          f"/v1/manufacturers?cursor={cursor}")
        assert body["manufacturers"] == []
        assert body["page"]["next_cursor"] is None
