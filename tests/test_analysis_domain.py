"""Tests for the domain analyses (DPM, categories, alertness, APM,
missions, maturity, significance) over the session database."""

import pytest

from repro.analysis import (
    accident_summary,
    alertness_summary,
    apm_summary,
    manufacturer_dpm_summary,
    miles_to_demonstrate,
    mission_comparison,
    monthly_series,
    pooled_dpm_correlation,
    yearly_dpm_distributions,
)
from repro.analysis.alertness import (
    action_window,
    human_baseline,
    overall_mean_reaction_time,
    reaction_time_mileage_correlation,
)
from repro.analysis.apm import (
    apm_miles_correlation,
    collision_speed_distributions,
    disengagements_per_accident_overall,
    first_principles_apm,
    miles_per_disengagement,
)
from repro.analysis.categories import (
    automatic_share,
    category_percentages,
    modality_percentages,
    overall_category_shares,
    tag_fractions,
)
from repro.analysis.dpm import has_vehicle_attribution, per_unit_dpm
from repro.analysis.maturity import all_assessments, assess_maturity
from repro.analysis.missions import (
    accidents_per_mission,
    projected_yearly_accidents,
    trips_ratio_vs_airlines,
)
from repro.analysis.significance import (
    failure_rate_confidence,
    rate_lower_bound,
    rate_upper_bound,
    significant_at,
)
from repro.errors import AnalysisError, InsufficientDataError

ANALYSIS = ["Mercedes-Benz", "Volkswagen", "Waymo", "Delphi", "Nissan",
            "Bosch", "GMCruise", "Tesla"]


class TestDpm:
    def test_monthly_series_cumulative_monotone(self, db):
        series = monthly_series(db, "Waymo")
        cumulative = [p.cumulative_miles for p in series]
        assert cumulative == sorted(cumulative)

    def test_vehicle_attribution_detection(self, db):
        assert has_vehicle_attribution(db, "Waymo")
        assert has_vehicle_attribution(db, "Nissan")
        assert not has_vehicle_attribution(db, "GMCruise")
        assert not has_vehicle_attribution(db, "Tesla")

    def test_per_unit_dpm_units(self, db):
        unit, dpm = per_unit_dpm(db, "Waymo")
        assert unit == "car"
        assert len(dpm) >= 70  # at least the period-2 fleet
        unit, dpm = per_unit_dpm(db, "GMCruise")
        assert unit == "month"

    def test_summary_covers_analysis_set(self, db):
        summaries = manufacturer_dpm_summary(db, ANALYSIS)
        assert set(summaries) == set(ANALYSIS)

    def test_waymo_is_best_by_far(self, db):
        summaries = manufacturer_dpm_summary(db, ANALYSIS)
        waymo = summaries["Waymo"].median_dpm
        for name, summary in summaries.items():
            if name != "Waymo":
                assert summary.median_dpm > 10 * waymo

    def test_median_dpm_orders_of_magnitude_match_paper(self, db):
        # Shape check against Table VII column 2 (within ~3x).
        from repro.calibration.baselines import PAPER_MEDIAN_DPM
        summaries = manufacturer_dpm_summary(db, ANALYSIS)
        for name, paper_value in PAPER_MEDIAN_DPM.items():
            measured = summaries[name].median_dpm
            assert paper_value / 3 <= measured <= paper_value * 3, name

    def test_yearly_distributions_have_three_years(self, db):
        yearly = yearly_dpm_distributions(db, ["Waymo"])
        assert set(yearly["Waymo"]) == {2014, 2015, 2016}

    def test_waymo_median_dpm_improves_by_year(self, db):
        import numpy as np
        yearly = yearly_dpm_distributions(db, ["Waymo"])["Waymo"]
        medians = {year: float(np.median(values))
                   for year, values in yearly.items()}
        assert medians[2016] < medians[2014]
        # Paper: ~8x decrease across the window (allow 3x-30x).
        ratio = medians[2014] / max(medians[2016], 1e-12)
        assert 3 <= ratio <= 30


class TestMaturity:
    def test_pooled_correlation_matches_paper(self, db):
        result = pooled_dpm_correlation(db, ANALYSIS)
        assert -0.95 <= result.r <= -0.75  # paper: -0.87
        assert result.p_value < 1e-30

    def test_most_manufacturers_improving(self, db):
        assessments = all_assessments(db, ANALYSIS)
        improving = [name for name, a in assessments.items()
                     if a.improving]
        assert "Waymo" in improving
        assert len(improving) >= 5

    def test_bosch_is_not_improving(self, db):
        assessment = assess_maturity(db, "Bosch")
        assert not assessment.improving

    def test_nobody_is_mature(self, db):
        # "Waymo is still not quite approaching the target asymptote."
        for name, assessment in all_assessments(db, ANALYSIS).items():
            assert not assessment.mature, name

    def test_cumulative_fits_have_high_r2(self, db):
        for name, assessment in all_assessments(db, ANALYSIS).items():
            assert assessment.cumulative_fit.r_squared > 0.8, name


class TestCategories:
    def test_headline_64_percent_ml(self, db):
        shares = overall_category_shares(db)
        assert shares["ml_design"] == pytest.approx(0.64, abs=0.05)
        assert shares["perception"] == pytest.approx(0.44, abs=0.05)
        assert shares["planner"] == pytest.approx(0.20, abs=0.05)
        assert shares["system"] == pytest.approx(0.336, abs=0.05)

    def test_table4_shape(self, db):
        rows = category_percentages(
            db, ["Delphi", "Nissan", "Tesla", "Volkswagen", "Waymo"])
        assert rows["Tesla"]["Unknown-C"] > 90
        assert rows["Volkswagen"]["System"] > 75
        assert rows["Waymo"]["ML-Perception/Recognition"] > 45
        for row in rows.values():
            assert sum(row.values()) == pytest.approx(100.0, abs=0.1)

    def test_modality_table5_shape(self, db):
        rows = modality_percentages(db)
        assert rows["Bosch"]["Planned"] == pytest.approx(100.0)
        assert rows["GMCruise"]["Planned"] == pytest.approx(100.0)
        assert rows["Volkswagen"]["Automatic"] == pytest.approx(100.0)
        assert rows["Tesla"]["Automatic"] > 90

    def test_automatic_share_near_half(self, db):
        assert automatic_share(db) == pytest.approx(0.48, abs=0.07)

    def test_tag_fractions_sum_to_one(self, db):
        for name, tags in tag_fractions(db).items():
            assert sum(tags.values()) == pytest.approx(1.0), name


class TestAlertness:
    def test_overall_mean_near_paper(self, db):
        assert overall_mean_reaction_time(db) == pytest.approx(
            0.85, abs=0.2)

    def test_summaries_for_reporting_manufacturers(self, db):
        summaries = alertness_summary(db)
        assert {"Nissan", "Tesla", "Delphi", "Mercedes-Benz",
                "Volkswagen", "Waymo"} <= set(summaries)

    def test_vw_outlier_detected(self, db):
        summary = alertness_summary(db)["Volkswagen"]
        assert summary.outliers >= 1
        assert summary.box.maximum > 10000

    def test_means_comparable_to_non_av(self, db):
        summaries = alertness_summary(db)
        for name in ("Nissan", "Waymo", "Delphi"):
            assert summaries[name].comparable_to_non_av

    def test_waymo_reaction_correlates_with_miles(self, db):
        result = reaction_time_mileage_correlation(db, "Waymo")
        assert result.r > 0.1
        assert result.significant(0.01)

    def test_action_window(self):
        assert action_window(0.5, 0.85) == pytest.approx(1.35)
        with pytest.raises(InsufficientDataError):
            action_window(-1, 0.5)

    def test_human_baseline_values(self):
        baseline = human_baseline()
        assert baseline["non_av_braking_s"] == pytest.approx(0.82)
        assert baseline["assumed_human_s"] == pytest.approx(1.09)


class TestApm:
    def test_table6_counts(self, db):
        summaries = accident_summary(db)
        assert summaries["Waymo"].accidents == 25
        assert summaries["GMCruise"].accidents == 14
        assert summaries["Delphi"].accidents == 1
        assert summaries["Nissan"].accidents == 1
        assert summaries["Uber ATC"].accidents == 1

    def test_waymo_fraction(self, db):
        assert accident_summary(db)["Waymo"].fraction_of_total == \
            pytest.approx(59.52, abs=0.1)

    def test_dpa_values_match_paper_shape(self, db):
        summaries = accident_summary(db)
        assert summaries["Waymo"].dpa == pytest.approx(18, abs=2)
        assert summaries["GMCruise"].dpa == pytest.approx(20, abs=2)
        assert summaries["Delphi"].dpa == pytest.approx(572, abs=10)
        assert summaries["Nissan"].dpa == pytest.approx(135, abs=5)
        assert summaries["Uber ATC"].dpa is None

    def test_avs_15_to_4000x_worse_than_humans(self, db):
        rows = apm_summary(db, ANALYSIS)
        ratios = [r.relative_to_human for r in rows.values()
                  if r.relative_to_human is not None]
        assert len(ratios) == 4
        assert all(5 <= ratio <= 5000 for ratio in ratios)
        assert max(ratios) > 1000  # GMCruise end
        assert min(ratios) < 50    # Waymo end

    def test_first_principles_apm_positive_correlation(self, db):
        result = apm_miles_correlation(db)
        assert result.r > 0.8  # paper: 0.98

    def test_first_principles_values(self, db):
        apm = first_principles_apm(db)
        assert apm["Waymo"] == pytest.approx(25 / 1060200, rel=0.1)

    def test_speed_distributions_shape(self, db):
        distributions = collision_speed_distributions(db)
        assert distributions.fraction_relative_below(10.0) > 0.8
        assert distributions.av_fit.scale < distributions.other_fit.scale

    def test_miles_per_disengagement_order(self, db):
        # Paper: ~262 miles per disengagement (per-manufacturer mean).
        value = miles_per_disengagement(db)
        assert 100 <= value <= 500

    def test_one_accident_per_127_disengagements(self, db):
        assert disengagements_per_accident_overall(db) == pytest.approx(
            127, abs=5)


class TestMissions:
    def test_apmi_scaling(self):
        assert accidents_per_mission(2e-5) == pytest.approx(2e-4)

    def test_table8_shape(self, db):
        rows = mission_comparison(db, ANALYSIS)
        waymo = rows["Waymo"]
        assert 1 <= waymo.vs_airline <= 10   # paper: 4.22
        assert waymo.vs_surgical_robot < 0.1  # paper: 0.0398
        assert not waymo.safer_than_airline
        assert waymo.safer_than_surgical_robot
        gm = rows["GMCruise"]
        assert gm.vs_airline > 100
        assert not gm.safer_than_surgical_robot

    def test_projection_helpers(self):
        assert projected_yearly_accidents(1e-4) == pytest.approx(9.6e6)
        assert trips_ratio_vs_airlines() == pytest.approx(1e4)
        with pytest.raises(InsufficientDataError):
            projected_yearly_accidents(-1)


class TestSignificance:
    def test_kalra_paddock_headline(self):
        # ~1.5M failure-free miles to demonstrate the human rate at 95%.
        miles = miles_to_demonstrate(2e-6, confidence=0.95)
        assert miles == pytest.approx(1.5e6, rel=0.01)

    def test_upper_bound_decreases_with_miles(self):
        assert rate_upper_bound(1e6, 5) < rate_upper_bound(1e5, 5)

    def test_bounds_bracket_point_estimate(self):
        miles, failures = 1e6, 10
        point = failures / miles
        assert rate_lower_bound(miles, failures) < point
        assert rate_upper_bound(miles, failures) > point

    def test_waymo_apm_significant_vs_human(self, db):
        # The paper: Waymo and GMCruise APM estimates significant >90%.
        assert significant_at(1060200, 25, 2e-6, level=0.90)

    def test_confidence_monotone_in_failures(self):
        low = failure_rate_confidence(1e6, 1, 2e-6)
        high = failure_rate_confidence(1e6, 20, 2e-6)
        assert high > low

    def test_invalid_inputs_raise(self):
        with pytest.raises(AnalysisError):
            miles_to_demonstrate(0.0)
        with pytest.raises(AnalysisError):
            miles_to_demonstrate(1e-6, confidence=1.5)
        with pytest.raises(AnalysisError):
            rate_upper_bound(-1, 0)
