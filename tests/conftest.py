"""Shared fixtures.

The full corpus + pipeline run is expensive (~6 s), so it is built
once per session; module tests that only need a handful of records use
the small two-manufacturer corpus instead.
"""

from __future__ import annotations

import pytest

from repro.pipeline import PipelineConfig, process_corpus
from repro.synth import generate_corpus

FULL_SEED = 2018
SMALL_SEED = 7


@pytest.fixture(scope="session")
def corpus():
    """The full calibrated corpus (all twelve manufacturers)."""
    return generate_corpus(seed=FULL_SEED)


@pytest.fixture(scope="session")
def pipeline_result(corpus):
    """The full end-to-end pipeline run over the session corpus."""
    return process_corpus(corpus, PipelineConfig(seed=FULL_SEED))


@pytest.fixture(scope="session")
def db(pipeline_result):
    """The consolidated failure database of the session run."""
    return pipeline_result.database


@pytest.fixture(scope="session")
def small_corpus():
    """A fast two-manufacturer corpus for unit tests."""
    return generate_corpus(
        seed=SMALL_SEED, manufacturers=["Nissan", "Volkswagen"])


@pytest.fixture(scope="session")
def small_db(small_corpus):
    """Pipeline output over the small corpus (OCR disabled: fast and
    deterministic for parser-level assertions)."""
    config = PipelineConfig(seed=SMALL_SEED, ocr_enabled=False,
                            dictionary_mode="seed")
    return process_corpus(small_corpus, config).database
