"""Tests for the STPA control-structure model."""

import pytest

from repro.errors import StpaError
from repro.parsing.records import DisengagementRecord
from repro.stpa import (
    CONTROL_LOOPS,
    STANDARD_COMPONENTS,
    EdgeKind,
    UnsafeControlAction,
    build_control_structure,
    causal_factor_for_tag,
    overlay_failures,
)
from repro.stpa.hazards import all_causal_factors
from repro.taxonomy import FaultTag


@pytest.fixture(scope="module")
def structure():
    return build_control_structure()


class TestStructure:
    def test_validates(self, structure):
        structure.validate()

    def test_all_components_present(self, structure):
        names = {c.name for c in structure.components()}
        assert names == set(STANDARD_COMPONENTS)

    def test_autonomy_pipeline_edges(self, structure):
        graph = structure.graph
        for source, target in [
                ("sensors", "recognition"),
                ("recognition", "planner_controller"),
                ("planner_controller", "follower"),
                ("follower", "actuators"),
                ("actuators", "mechanical")]:
            assert graph.has_edge(source, target)

    def test_driver_receives_takeover_requests(self, structure):
        assert "planner_controller" in structure.feedback_sources(
            "driver")

    def test_mechanical_is_controlled_by_driver_and_actuators(
            self, structure):
        controllers = set(structure.controllers_of("mechanical"))
        assert {"driver", "actuators"} <= controllers

    def test_observation_edges_model_non_av_interaction(self, structure):
        observations = structure.edges_of_kind(EdgeKind.OBSERVATION)
        pairs = {(u, v) for u, v, _ in observations}
        assert ("non_av_driver", "sensors") in pairs
        assert ("mechanical", "non_av_driver") in pairs

    def test_unknown_component_raises(self, structure):
        with pytest.raises(StpaError):
            structure.component("flux_capacitor")


class TestControlLoops:
    def test_three_loops_defined(self):
        assert set(CONTROL_LOOPS) == {"CL-1", "CL-2", "CL-3"}

    def test_cl2_closes_in_graph(self, structure):
        assert structure.loop_exists(list(CONTROL_LOOPS["CL-2"].nodes))

    def test_cl3_closes_in_graph(self, structure):
        assert structure.loop_exists(list(CONTROL_LOOPS["CL-3"].nodes))

    def test_cl1_includes_non_av_driver(self):
        assert "non_av_driver" in CONTROL_LOOPS["CL-1"].nodes


class TestCausalFactors:
    def test_every_tag_localizes(self):
        for tag in FaultTag:
            if tag is FaultTag.UNKNOWN:
                assert causal_factor_for_tag(tag) is None
            else:
                factor = causal_factor_for_tag(tag)
                assert factor.component in STANDARD_COMPONENTS

    def test_perception_faults_map_to_recognition(self):
        assert causal_factor_for_tag(
            FaultTag.RECOGNITION_SYSTEM).component == "recognition"
        assert causal_factor_for_tag(
            FaultTag.ENVIRONMENT).component == "recognition"

    def test_substrate_faults_map_to_compute(self):
        for tag in (FaultTag.SOFTWARE, FaultTag.COMPUTER_SYSTEM,
                    FaultTag.HANG_CRASH):
            assert causal_factor_for_tag(tag).component == "compute"

    def test_watchdog_is_not_provided_uca(self):
        factor = causal_factor_for_tag(FaultTag.HANG_CRASH)
        assert factor.uca is UnsafeControlAction.NOT_PROVIDED

    def test_all_factors_have_rationales(self):
        for factor in all_causal_factors():
            assert factor.rationale


class TestOverlay:
    def _records(self):
        tags = [FaultTag.RECOGNITION_SYSTEM, FaultTag.RECOGNITION_SYSTEM,
                FaultTag.PLANNER, FaultTag.SOFTWARE, FaultTag.UNKNOWN]
        return [DisengagementRecord(
            manufacturer="X", month="2015-01", description="d",
            tag=tag) for tag in tags]

    def test_counts(self):
        overlay = overlay_failures(self._records())
        assert overlay.total == 5
        assert overlay.unlocalized == 1
        assert overlay.by_component["recognition"] == 2
        assert overlay.by_component["planner_controller"] == 1
        assert overlay.by_component["compute"] == 1

    def test_component_share(self):
        overlay = overlay_failures(self._records())
        assert overlay.component_share("recognition") == pytest.approx(
            0.5)

    def test_dominant_component(self):
        overlay = overlay_failures(self._records())
        assert overlay.dominant_component() == "recognition"

    def test_loop_counts_cover_cl1(self):
        overlay = overlay_failures(self._records())
        loops = overlay.loop_counts()
        # recognition and planner are in CL-1; compute is not.
        assert loops["CL-1"] == 3

    def test_truth_overlay(self, db):
        overlay = overlay_failures(db.disengagements, use_truth=True)
        assert overlay.total == len(db.disengagements)
        # Perception dominates (the paper's central finding).
        assert overlay.dominant_component() == "recognition"

    def test_untagged_records_unlocalized(self):
        records = [DisengagementRecord(
            manufacturer="X", month="2015-01", description="d")]
        overlay = overlay_failures(records)
        assert overlay.unlocalized == 1
