"""Tests for the public API surface and the exception hierarchy."""

import pytest

import repro
from repro.errors import (
    AnalysisError,
    CalibrationError,
    CorruptDatabaseError,
    DegradedModeWarning,
    FieldCoercionError,
    InsufficientDataError,
    NlpError,
    OcrError,
    OntologyError,
    ParseError,
    PipelineError,
    QuarantinedError,
    ReproError,
    StpaError,
    SynthesisError,
    TransientError,
    UnknownFormatError,
)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_surface(self):
        # The README quickstart names exactly these.
        assert callable(repro.run_pipeline)
        assert callable(repro.generate_corpus)
        assert callable(repro.process_corpus)
        repro.PipelineConfig()
        repro.FailureDatabase()

    def test_default_seed_constant(self):
        assert repro.DEFAULT_SEED == 2018

    def test_enums_exported(self):
        assert repro.FaultTag.SOFTWARE
        assert repro.FailureCategory.ML_DESIGN
        assert repro.Modality.PLANNED


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        CalibrationError, SynthesisError, OcrError, ParseError,
        NlpError, StpaError, PipelineError, AnalysisError,
        TransientError, QuarantinedError, CorruptDatabaseError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_field_coercion_is_parse_error(self):
        assert issubclass(FieldCoercionError, ParseError)

    def test_unknown_format_is_parse_error(self):
        assert issubclass(UnknownFormatError, ParseError)

    def test_insufficient_data_is_analysis_error(self):
        assert issubclass(InsufficientDataError, AnalysisError)

    def test_ontology_is_nlp_error(self):
        assert issubclass(OntologyError, NlpError)

    def test_parse_error_formats_context(self):
        error = ParseError("bad row", line="x — y",
                           manufacturer="Nissan")
        text = str(error)
        assert "bad row" in text
        assert "Nissan" in text
        assert "x — y" in text

    def test_parse_error_without_context(self):
        assert str(ParseError("plain")) == "plain"

    def test_corrupt_database_formats_path_and_reason(self):
        error = CorruptDatabaseError(
            "unreadable database", path="/tmp/db.json",
            reason="checksum mismatch")
        text = str(error)
        assert "unreadable database" in text
        assert "/tmp/db.json" in text
        assert "checksum mismatch" in text
        assert str(CorruptDatabaseError("plain")) == "plain"

    def test_corrupt_database_exported_from_package(self):
        assert repro.CorruptDatabaseError is CorruptDatabaseError

    def test_quarantined_is_pipeline_error(self):
        assert issubclass(QuarantinedError, PipelineError)
        error = QuarantinedError("lost", unit_id="doc-1",
                                 stage="parse")
        assert error.unit_id == "doc-1"
        assert error.stage == "parse"

    def test_degraded_mode_is_a_warning_not_an_error(self):
        assert issubclass(DegradedModeWarning, Warning)
        assert not issubclass(DegradedModeWarning, ReproError)

    def test_catching_base_at_pipeline_boundary(self):
        # A caller can wrap any stage in one except clause.
        try:
            raise FieldCoercionError("nope")
        except ReproError as caught:
            assert "nope" in str(caught)


class TestApiFacade:
    def test_lazy_attribute_resolves_to_module(self):
        import repro.api as api_module

        assert repro.api is api_module
        assert "api" in repro.__all__

    def test_all_facade_exports_resolve(self):
        from repro import api

        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_blessed_surface_present(self):
        from repro import api

        for name in ("run_pipeline", "process_corpus", "build_corpus",
                     "load_database", "PipelineConfig", "Query",
                     "QueryEngine", "QueryServer", "FailureDatabase",
                     "MetricsRegistry", "Tracer", "load_trace",
                     "self_times", "ReproError",
                     "CorruptDatabaseError"):
            assert name in api.__all__, name

    def test_build_corpus_aliases_generate_corpus(self):
        from repro import api
        from repro.synth import generate_corpus

        via_facade = api.build_corpus(seed=7,
                                      manufacturers=["Nissan"])
        direct = generate_corpus(7, ["Nissan"])
        assert len(via_facade.documents) == len(direct.documents)

    def test_load_database_missing_file_is_corrupt_error(self,
                                                         tmp_path):
        from repro import api

        with pytest.raises(CorruptDatabaseError) as excinfo:
            api.load_database(tmp_path / "absent.json")
        assert excinfo.value.reason == "missing"
        assert str(tmp_path / "absent.json") in str(excinfo.value)

    def test_load_database_roundtrip(self, small_db, tmp_path):
        from repro import api

        small_db.save(tmp_path / "db.json")
        loaded = api.load_database(tmp_path / "db.json")
        assert loaded.fingerprint() == small_db.fingerprint()

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing
