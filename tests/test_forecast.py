"""Tests for DPM forecasting and backtesting."""

import pytest

from repro.analysis.forecast import (
    backtest,
    backtest_all,
    predict_dpm,
)
from repro.analysis.regression import LinearFit
from repro.errors import InsufficientDataError


class TestPredict:
    def test_power_law_prediction(self):
        # log10(dpm) = -0.5 * log10(miles) + 0  ->  dpm = miles^-0.5
        fit = LinearFit(slope=-0.5, intercept=0.0, r_squared=1.0,
                        slope_stderr=0.0, n=10)
        assert predict_dpm(fit, 10000.0) == pytest.approx(0.01)

    def test_rejects_nonpositive_miles(self):
        fit = LinearFit(slope=-0.5, intercept=0.0, r_squared=1.0,
                        slope_stderr=0.0, n=10)
        with pytest.raises(InsufficientDataError):
            predict_dpm(fit, 0.0)


class TestBacktest:
    def test_waymo_backtest_pins_the_order(self, db):
        forecast = backtest(db, "Waymo")
        assert forecast.train_months >= 3
        assert forecast.test_months >= 3
        # The simple power law pins the order of magnitude...
        assert forecast.total_error < 1.2
        # ...and errs on the high side: Waymo improved *faster* than
        # its own early trend (consistent with the paper's narrative
        # of accelerating maturity).
        assert forecast.predicted_total > forecast.actual_total

    def test_backtest_preserves_month_counts(self, db):
        forecast = backtest(db, "Mercedes-Benz")
        assert len(forecast.predicted) == forecast.test_months
        assert len(forecast.actual) == forecast.test_months
        assert all(p >= 0 for p in forecast.predicted)

    def test_invalid_train_fraction(self, db):
        with pytest.raises(InsufficientDataError):
            backtest(db, "Waymo", train_fraction=1.5)

    def test_too_little_history(self, db):
        # Tesla has only ~8 active months; with an extreme fraction
        # the holdout disappears.
        with pytest.raises(InsufficientDataError):
            backtest(db, "Ford")

    def test_backtest_all_skips_sparse(self, db):
        forecasts = backtest_all(db)
        assert "Waymo" in forecasts
        assert "Ford" not in forecasts
        # The trend model is a usable predictor for the big reporters.
        useful = [f for f in forecasts.values() if f.total_error < 1.0]
        assert len(useful) >= 4
