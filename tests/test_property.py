"""Property-based tests (hypothesis) on core data structures and
invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fitting import fit_exponential
from repro.analysis.regression import fit_linear
from repro.analysis.significance import (
    miles_to_demonstrate,
    rate_lower_bound,
    rate_upper_bound,
)
from repro.analysis.stats import boxplot_stats
from repro.nlp.normalize import normalize_tokens, stem
from repro.nlp.ngrams import all_ngrams, ngrams
from repro.nlp.tokenize import tokenize
from repro.ocr.confusion import ConfusionModel
from repro.parsing.fields import repair_numeric_text
from repro.parsing.records import (
    AccidentRecord,
    DisengagementRecord,
    MonthlyMileage,
)
from repro.reporting.tables import Table
from repro.taxonomy import FaultTag, Modality

finite_floats = st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False, allow_infinity=False)
positive_floats = st.floats(min_value=1e-6, max_value=1e9,
                            allow_nan=False, allow_infinity=False)


class TestStatsProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_boxplot_ordering_invariant(self, values):
        box = boxplot_stats(values)
        assert box.minimum <= box.q1 <= box.median <= box.q3 \
            <= box.maximum
        assert box.minimum <= box.mean <= box.maximum
        assert box.n == len(values)

    @given(st.lists(finite_floats, min_size=1, max_size=100),
           finite_floats)
    def test_boxplot_translation_equivariance(self, values, shift):
        base = boxplot_stats(values)
        shifted = boxplot_stats([v + shift for v in values])
        assert shifted.median == base.median + shift or \
            math.isclose(shifted.median, base.median + shift,
                         rel_tol=1e-9, abs_tol=1e-6)

    @given(st.lists(st.tuples(finite_floats, finite_floats),
                    min_size=3, max_size=100))
    def test_linear_fit_residual_orthogonality(self, points):
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        if np.allclose(xs, xs[0]):
            return
        if max(map(abs, xs)) > 1e6 or max(map(abs, ys)) > 1e6:
            return  # avoid float blowup in the invariant check
        fit = fit_linear(xs, ys)
        residuals = [y - fit.predict(x) for x, y in zip(xs, ys)]
        assert abs(sum(residuals)) < 1e-3 * (1 + max(map(abs, ys)))

    @given(st.lists(st.floats(min_value=0.01, max_value=1e4),
                    min_size=3, max_size=300))
    def test_exponential_fit_scale_is_mean(self, values):
        fit = fit_exponential(values)
        assert math.isclose(fit.scale, sum(values) / len(values),
                            rel_tol=1e-9)


class TestSignificanceProperties:
    @given(st.floats(min_value=1e-9, max_value=1.0),
           st.floats(min_value=0.01, max_value=0.999))
    def test_miles_to_demonstrate_monotone_in_confidence(self, rate,
                                                         confidence):
        lower = miles_to_demonstrate(rate, confidence * 0.5)
        higher = miles_to_demonstrate(rate, confidence)
        assert higher >= lower

    @given(st.floats(min_value=1e3, max_value=1e8),
           st.integers(min_value=0, max_value=100))
    def test_bounds_bracket(self, miles, failures):
        upper = rate_upper_bound(miles, failures)
        lower = rate_lower_bound(miles, failures)
        assert lower <= failures / miles <= upper


class TestNlpProperties:
    @given(st.text(max_size=300))
    def test_tokenize_never_raises_and_is_lowercase(self, text):
        tokens = tokenize(text)
        assert all(t == t.lower() for t in tokens)

    @given(st.text(max_size=200))
    def test_normalize_is_idempotent_modulo_stemming(self, text):
        once = normalize_tokens(tokenize(text))
        twice = normalize_tokens(once, drop_stopwords=True)
        # Stemming is not idempotent in general, but it must never
        # lengthen tokens and never produce empty tokens.
        assert all(len(b) <= len(a) for a, b in zip(once, twice))
        assert all(t for t in once)

    @given(st.lists(st.text(alphabet="abcdef", min_size=1, max_size=5),
                    max_size=20),
           st.integers(min_value=1, max_value=4))
    def test_ngram_count(self, tokens, n):
        grams = ngrams(tokens, n)
        assert len(grams) == max(0, len(tokens) - n + 1)
        assert all(len(g) == n for g in grams)

    @given(st.lists(st.text(alphabet="abc", min_size=1, max_size=4),
                    max_size=15))
    def test_all_ngrams_superset_of_unigrams(self, tokens):
        grams = set(all_ngrams(tokens, max_n=3))
        for token in tokens:
            assert (token,) in grams

    @given(st.text(max_size=100))
    def test_stem_never_empties_words(self, text):
        for token in tokenize(text):
            assert stem(token)


class TestOcrProperties:
    @given(st.text(alphabet=st.characters(min_codepoint=32,
                                          max_codepoint=126),
                   max_size=200),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_perfect_quality_identity(self, line, seed):
        model = ConfusionModel()
        rng = np.random.default_rng(seed)
        text, corruptions = model.corrupt_line(line, 1.0, rng)
        assert text == line and corruptions == 0

    @given(st.text(alphabet=st.characters(min_codepoint=32,
                                          max_codepoint=126),
                   max_size=200),
           st.floats(min_value=0.01, max_value=1.0),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=50)
    def test_corruption_never_lengthens_line(self, line, quality, seed):
        model = ConfusionModel()
        rng = np.random.default_rng(seed)
        text, _ = model.corrupt_line(line, quality, rng)
        # Substitutions are 1:1 except the expanding digraph targets
        # (m -> rn, d -> cl); drops shorten.
        expanding = line.count("m") + line.count("d")
        assert len(text) <= len(line) + expanding

    @given(st.text(alphabet="0OolI|15SZB8g2.9/:-", max_size=40))
    def test_repair_numeric_text_outputs_digits(self, text):
        repaired = repair_numeric_text(text)
        assert len(repaired) == len(text)
        for char in repaired:
            assert char not in "OolI|SBZg"


class TestRecordProperties:
    @given(st.sampled_from(list(FaultTag)),
           st.sampled_from(list(Modality)),
           st.floats(min_value=0.01, max_value=1e4),
           st.text(min_size=1, max_size=80))
    def test_disengagement_json_roundtrip(self, tag, modality,
                                          reaction, description):
        record = DisengagementRecord(
            manufacturer="X", month="2015-06",
            modality=modality, reaction_time_s=reaction,
            description=description, truth_tag=tag)
        clone = DisengagementRecord.from_dict(record.to_dict())
        assert clone == record

    @given(st.floats(min_value=0, max_value=50),
           st.floats(min_value=0, max_value=50))
    def test_accident_relative_speed(self, a, b):
        record = AccidentRecord(manufacturer="X", av_speed_mph=a,
                                other_speed_mph=b)
        assert record.relative_speed_mph == abs(a - b)
        clone = AccidentRecord.from_dict(record.to_dict())
        assert clone == record

    @given(st.floats(min_value=0, max_value=1e6))
    def test_mileage_roundtrip(self, miles):
        cell = MonthlyMileage("X", "2016-01", miles, "car-1")
        assert MonthlyMileage.from_dict(cell.to_dict()) == cell


class TestTableProperties:
    @given(st.lists(
        st.lists(st.one_of(st.integers(min_value=-10**6,
                                       max_value=10**6),
                           st.floats(min_value=-1e6, max_value=1e6,
                                     allow_nan=False),
                           st.text(max_size=10), st.none()),
                 min_size=2, max_size=2),
        max_size=10))
    def test_render_never_raises(self, rows):
        table = Table("T", ["a", "b"], rows)
        text = table.render()
        assert text.startswith("T")
        assert len(text.splitlines()) >= 4
