"""Tests for full corpus assembly (Stage I)."""

import pytest

from repro.synth import generate_corpus


class TestCorpus:
    def test_headline_totals(self, corpus):
        assert len(corpus.truth_disengagements()) == 5328
        assert len(corpus.truth_accidents()) == 42
        assert sum(m.miles for m in corpus.truth_mileage()) == \
            pytest.approx(1116605.0, rel=1e-3)

    def test_one_accident_document_per_accident(self, corpus):
        assert len(corpus.accident_documents) == 42

    def test_disengagement_documents_cover_active_manufacturers(
            self, corpus):
        names = {d.manufacturer for d in corpus.disengagement_documents}
        # Honda tested nothing; everyone else filed something.
        assert "Honda" not in names
        assert {"Waymo", "Bosch", "Nissan", "Tesla"} <= names

    def test_documents_have_text(self, corpus):
        for document in corpus.documents:
            assert document.lines
            assert document.text.count("\n") == len(document.lines) - 1

    def test_truth_records_point_at_their_lines(self, corpus):
        for document in corpus.disengagement_documents:
            for record in document.truth_disengagements:
                assert record.source_document == document.document_id
                line = document.lines[record.source_line]
                assert line.strip()

    def test_manufacturer_subset_generation(self):
        corpus = generate_corpus(seed=1, manufacturers=["Tesla"])
        assert corpus.manufacturers() == ["Tesla"]
        assert len(corpus.truth_disengagements()) == 182

    def test_determinism_across_generations(self):
        a = generate_corpus(seed=99, manufacturers=["Nissan"])
        b = generate_corpus(seed=99, manufacturers=["Nissan"])
        assert [d.text for d in a.documents] == \
            [d.text for d in b.documents]

    def test_different_seeds_differ(self):
        a = generate_corpus(seed=1, manufacturers=["Nissan"])
        b = generate_corpus(seed=2, manufacturers=["Nissan"])
        assert [d.text for d in a.documents] != \
            [d.text for d in b.documents]

    def test_volkswagen_only_first_period(self, corpus):
        documents = [d for d in corpus.disengagement_documents
                     if d.manufacturer == "Volkswagen"]
        assert len(documents) == 1
        assert "2015-2016" in documents[0].document_id

    def test_tesla_only_second_period(self, corpus):
        documents = [d for d in corpus.disengagement_documents
                     if d.manufacturer == "Tesla"]
        assert len(documents) == 1
        assert "2016-2017" in documents[0].document_id
