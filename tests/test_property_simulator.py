"""Property-based tests for the trip simulator and related models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import (
    DriverConfig,
    SimulatorConfig,
    TrafficConfig,
    simulate_fleet,
)

_dpm = st.floats(min_value=0.0, max_value=0.5)
_probability = st.floats(min_value=0.0, max_value=1.0)
_positive = st.floats(min_value=0.1, max_value=10.0)
_seed = st.integers(min_value=0, max_value=2 ** 31 - 1)


class TestSimulatorProperties:
    @given(dpm=_dpm, seed=_seed)
    @settings(max_examples=25, deadline=None)
    def test_counts_are_consistent(self, dpm, seed):
        fleet = simulate_fleet(SimulatorConfig(dpm=dpm), trips=100,
                               seed=seed)
        assert fleet.trips == 100
        assert fleet.miles > 0
        assert 0 <= fleet.proactive_disengagements \
            <= fleet.disengagements
        assert fleet.accidents == (fleet.reaction_accidents
                                   + fleet.anticipation_accidents)
        assert len(fleet.windows) == fleet.disengagements

    @given(conflict=_probability, budget=_positive, seed=_seed)
    @settings(max_examples=25, deadline=None)
    def test_reaction_accidents_bounded_by_disengagements(
            self, conflict, budget, seed):
        config = SimulatorConfig(
            dpm=0.05,
            traffic=TrafficConfig(conflict_probability=conflict,
                                  mean_time_budget_s=budget))
        fleet = simulate_fleet(config, trips=200, seed=seed)
        assert fleet.reaction_accidents <= fleet.disengagements

    @given(share=_probability, seed=_seed)
    @settings(max_examples=25, deadline=None)
    def test_manual_share_bounded(self, share, seed):
        config = SimulatorConfig(
            dpm=0.1,
            driver=DriverConfig(proactive_share=share))
        fleet = simulate_fleet(config, trips=200, seed=seed)
        assert 0.0 <= fleet.manual_share <= 1.0

    @given(seed=_seed)
    @settings(max_examples=15, deadline=None)
    def test_windows_are_positive(self, seed):
        fleet = simulate_fleet(SimulatorConfig(dpm=0.1), trips=100,
                               seed=seed)
        assert all(w > 0 for w in fleet.windows)

    @given(dpm=st.floats(min_value=0.01, max_value=0.3), seed=_seed)
    @settings(max_examples=15, deadline=None)
    def test_dpm_estimate_tracks_configuration(self, dpm, seed):
        fleet = simulate_fleet(SimulatorConfig(dpm=dpm), trips=2000,
                               seed=seed)
        # Poisson sampling: the realized rate concentrates around the
        # configured one (loose 3-sigma style bound).
        assert abs(fleet.dpm - dpm) < 0.3 * dpm + 0.005
