"""Tests for always-on serving hardening.

Covers the request-path contracts: readiness distinct from liveness,
admission-control shedding with structured ``503 + Retry-After``,
per-request deadlines, sanitized 500s, graceful drain, watch-mode
hot-swaps (including corrupt drops), and the headline acceptance
check — under corrupt-candidate injection the server never returns a
500 or a mixed-generation result.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import __version__
from repro.obs import MetricsRegistry
from repro.pipeline import PipelineConfig, process_corpus
from repro.pipeline.chaos import ServingChaos
from repro.pipeline.checkpoint import canonical_json
from repro.query import Query, QueryEngine, QueryServer, SnapshotManager
from repro.synth.dataset import SyntheticCorpus

THREADS = 8


@pytest.fixture(scope="module")
def other_db(small_corpus):
    subset = SyntheticCorpus(seed=small_corpus.seed,
                             documents=small_corpus.documents[:2])
    config = PipelineConfig(seed=small_corpus.seed, ocr_enabled=False,
                            dictionary_mode="seed")
    return process_corpus(subset, config).database


def _get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as res:
        return res.status, dict(res.headers), json.loads(res.read())


def _get_error(server, path):
    try:
        _get(server, path)
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())
    raise AssertionError(f"{path} unexpectedly succeeded")


class TestReadiness:
    def test_ready_ok(self, small_db):
        with QueryServer(small_db, port=0) as server:
            status, _, body = _get(server, "/readyz")
            assert status == 200
            assert body["status"] == "ok"
            assert body["generation"] == 1
            assert body["fingerprint"] == small_db.fingerprint()
            assert body["quarantined"] == 0
            assert body["last_error"] is None

    def test_degraded_after_quarantine_but_healthz_ok(
            self, small_db, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{torn", encoding="utf-8")
        with QueryServer(small_db, port=0,
                         registry=MetricsRegistry()) as server:
            assert server.snapshots.load(bad) is False
            status, _, body = _get(server, "/readyz")
            assert status == 200  # still serving: traffic is fine
            assert body["status"] == "degraded"
            assert body["quarantined"] == 1
            assert body["last_error"]
            # Liveness is a different question, and its body is the
            # stable contract clients already depend on.
            status, _, health = _get(server, "/healthz")
            assert status == 200
            assert health == {
                "status": "ok", "version": __version__,
                "fingerprint": small_db.fingerprint()}
            # Queries keep answering from the last-good generation.
            status, _, result = _get(server, "/query?metric=count")
            assert status == 200
            assert result["fingerprint"] == small_db.fingerprint()

    def test_draining_readyz_503(self, small_db):
        server = QueryServer(small_db, port=0)
        server.start()
        try:
            server._httpd.begin_drain()
            code, _, body = _get_error(server, "/readyz")
            assert code == 503
            assert body["status"] == "draining"
            # Liveness stays 200 right through the drain.
            status, _, _body = _get(server, "/healthz")
            assert status == 200
        finally:
            server.shutdown()


class TestAdmissionControl:
    def test_sheds_with_structured_503(self, small_db):
        registry = MetricsRegistry()
        with QueryServer(small_db, port=0, max_inflight=1,
                         registry=registry) as server:
            # Deterministically saturate the one slot.
            assert server._httpd.try_admit() is None
            try:
                code, headers, body = _get_error(
                    server, "/query?metric=dpm")
                assert code == 503
                assert body["error"]["code"] == "overloaded"
                assert body["error"]["detail"]["retry_after_s"] == 1
                assert headers["Retry-After"] == "1"
                # Probes and scrapes are exempt from admission.
                assert _get(server, "/healthz")[0] == 200
                assert _get(server, "/readyz")[0] == 200
                with urllib.request.urlopen(
                        server.url + "/metrics", timeout=10) as res:
                    assert res.status == 200
                    text = res.read().decode("utf-8")
                assert "repro_requests_shed_total 1" in text
            finally:
                server._httpd.release()
            # Capacity back: admitted again.
            status, _, _body = _get(server, "/query?metric=dpm")
            assert status == 200

    def test_draining_refuses_new_queries(self, small_db):
        server = QueryServer(small_db, port=0)
        server.start()
        try:
            server._httpd.begin_drain()
            code, headers, body = _get_error(
                server, "/query?metric=dpm")
            assert code == 503
            assert body["error"]["code"] == "draining"
            assert headers["Retry-After"] == "1"
        finally:
            server.shutdown()

    def test_wait_drained(self, small_db):
        server = QueryServer(small_db, port=0)
        httpd = server._httpd
        assert httpd.try_admit() is None
        assert httpd.wait_drained(timeout=0.05) is False
        releaser = threading.Timer(0.1, httpd.release)
        releaser.start()
        assert httpd.wait_drained(timeout=5.0) is True
        releaser.join()
        server._httpd.server_close()

    def test_slow_request_finishes_during_drain(self, small_db):
        chaos = ServingChaos(slow_query_s=0.3, slow_query_rate=1.0)
        server = QueryServer(small_db, port=0, chaos=chaos,
                             deadline_s=10.0, drain_timeout_s=5.0)
        server.start()
        outcome = {}

        def slow_client() -> None:
            try:
                outcome["status"] = _get(
                    server, "/query?metric=dpm")[0]
            except Exception as exc:  # pragma: no cover
                outcome["error"] = repr(exc)

        thread = threading.Thread(target=slow_client)
        thread.start()
        # Let the request get admitted before the drain begins.
        deadline = time.monotonic() + 2.0
        while (server._httpd.inflight == 0
               and time.monotonic() < deadline):
            time.sleep(0.01)
        server.shutdown()
        thread.join(timeout=5.0)
        assert outcome.get("status") == 200


class TestDeadlines:
    def test_blown_deadline_is_structured_503(self, small_db):
        chaos = ServingChaos(slow_query_s=0.2, slow_query_rate=1.0)
        registry = MetricsRegistry()
        with QueryServer(small_db, port=0, deadline_s=0.05,
                         chaos=chaos, registry=registry) as server:
            code, headers, body = _get_error(
                server, "/query?metric=dpm")
            assert code == 503
            assert body["error"]["code"] == "deadline_exceeded"
            assert "deadline exceeded" in body["error"]["message"]
            assert headers["Retry-After"] == "1"
            assert chaos.injected_delays == 1
            # Exempt probes never run the chaos delay or the budget.
            started = time.perf_counter()
            assert _get(server, "/healthz")[0] == 200
            assert time.perf_counter() - started < 0.2
            with urllib.request.urlopen(
                    server.url + "/metrics", timeout=10) as res:
                text = res.read().decode("utf-8")
            assert "repro_request_timeouts_total 1" in text


class TestSanitized500:
    def test_unexpected_error_leaks_nothing(self, small_db):
        with QueryServer(small_db, port=0) as server:
            def boom(query):
                raise RuntimeError("secret internal detail")

            engine = server.snapshots.engine
            original = engine.execute
            engine.execute = boom
            try:
                code, _, body = _get_error(server, "/query?metric=dpm")
            finally:
                engine.execute = original
            assert code == 500
            assert body == {"error": {
                "code": "internal",
                "message": "internal server error",
                "detail": None}}


class TestWatchMode:
    def test_hot_swap_and_corrupt_drop(self, small_db, other_db,
                                       tmp_path):
        drops = tmp_path / "drops"
        drops.mkdir()
        with QueryServer(small_db, port=0,
                         registry=MetricsRegistry()) as server:
            server.watch(drops, interval_s=0.05)
            other_db.save(drops / "a-next.json")
            deadline = time.monotonic() + 5.0
            while (server.snapshots.generation < 2
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            assert server.snapshots.generation == 2
            status, _, body = _get(server, "/query?metric=count")
            assert status == 200
            assert body["fingerprint"] == other_db.fingerprint()

            # A corrupt drop degrades readiness but keeps serving.
            (drops / "b-bad.json").write_text("{torn",
                                              encoding="utf-8")
            deadline = time.monotonic() + 5.0
            while (not server.snapshots.degraded
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            status, _, ready = _get(server, "/readyz")
            assert ready["status"] == "degraded"
            assert server.snapshots.generation == 2
            status, _, body = _get(server, "/query?metric=count")
            assert status == 200
            assert body["fingerprint"] == other_db.fingerprint()


class TestNever500UnderChaos:
    """Acceptance: with corrupt-candidate injection the server never
    returns a 500 or a mixed-generation result — it serves the
    last-good snapshot and reports through /readyz and /metrics."""

    def test_corrupt_injection_never_breaks_serving(
            self, small_db, other_db, tmp_path):
        chaos = ServingChaos(corrupt_candidate=True)
        registry = MetricsRegistry()
        manager = SnapshotManager(small_db, registry=registry,
                                  chaos=chaos)
        candidate = tmp_path / "next.json"
        other_db.save(candidate)
        expected = canonical_json(
            QueryEngine(small_db).execute(Query(metric="dpm")).value)
        with QueryServer(manager, port=0,
                         registry=registry) as server:
            for _ in range(3):
                assert server.snapshots.load(candidate) is False
                status, _, body = _get(server, "/query?metric=dpm")
                assert status == 200
                assert body["fingerprint"] == small_db.fingerprint()
                assert canonical_json(body["result"]) == expected
            assert chaos.injected_corruptions == 3
            _, _, ready = _get(server, "/readyz")
            assert ready["status"] == "degraded"
            assert ready["quarantined"] == 3
            text = registry.render_prometheus()
            assert "repro_snapshot_quarantined_total 3" in text
            assert ('repro_snapshot_swaps_total'
                    '{outcome="quarantined"} 3') in text


class TestSwapUnderLoadHTTP:
    """Satellite: 8 HTTP clients while snapshots swap underneath —
    every response internally consistent with exactly one
    generation."""

    QUERIES = [
        Query(metric="dpm"),
        Query(metric="count", group_by="manufacturer"),
        Query(metric="miles", group_by="month"),
        Query(metric="tags"),
    ]

    def test_http_responses_never_blend(self, small_db, other_db):
        expected = {}
        for db in (small_db, other_db):
            serial = QueryEngine(db)
            expected[db.fingerprint()] = {
                q.canonical(): canonical_json(serial.execute(q).value)
                for q in self.QUERIES}
        manager = SnapshotManager(small_db)
        failures: list[str] = []
        barrier = threading.Barrier(THREADS + 1)
        stop = threading.Event()

        def client(offset: int) -> None:
            barrier.wait()
            try:
                rounds = 0
                while not stop.is_set() and rounds < 200:
                    rounds += 1
                    q = self.QUERIES[(offset + rounds)
                                     % len(self.QUERIES)]
                    request = urllib.request.Request(
                        server.url + "/query",
                        data=json.dumps(q.to_dict()).encode("utf-8"),
                        headers={"Content-Type": "application/json"},
                        method="POST")
                    with urllib.request.urlopen(
                            request, timeout=10) as res:
                        if res.status != 200:
                            failures.append(f"status {res.status}")
                            continue
                        body = json.loads(res.read())
                    known = expected.get(body["fingerprint"])
                    if known is None:
                        failures.append("unknown fingerprint")
                    elif (canonical_json(body["result"])
                          != known[q.canonical()]):
                        failures.append(
                            f"{q.metric}: blended generations")
            except Exception as exc:  # pragma: no cover
                failures.append(f"client {offset}: {exc!r}")

        def swapper() -> None:
            barrier.wait()
            for i in range(20):
                manager.swap_database(
                    other_db if i % 2 == 0 else small_db)
                time.sleep(0.005)
            stop.set()

        with QueryServer(manager, port=0, max_inflight=0,
                         deadline_s=0.0) as server:
            threads = [threading.Thread(target=client, args=(n,))
                       for n in range(THREADS)]
            threads.append(threading.Thread(target=swapper))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not failures
        assert manager.generation == 21
