"""Shard-parity suite: the sharded index is byte-identical to the
monolithic one — every lookup, every query kernel, every shard
count, and the full HTTP surface of a sharded server against a
monolithic one.
"""

from __future__ import annotations

import itertools
import json
import urllib.request

import pytest

from repro.errors import QueryError
from repro.pipeline.checkpoint import canonical_json
from repro.query import (
    DatabaseIndex,
    Query,
    QueryEngine,
    QueryServer,
    ShardedIndex,
    SnapshotManager,
    disengagement_id,
)
from repro.query.engine import GROUP_BYS, METRICS

SHARD_COUNTS = (1, 2, 3, 8)


@pytest.fixture(scope="module")
def mono(small_db):
    return DatabaseIndex.build(small_db)


def _all_queries():
    for metric, group_by in itertools.product(
            METRICS, (None, *GROUP_BYS)):
        try:
            yield Query(metric=metric, group_by=group_by)
        except QueryError:
            continue  # combination the query type itself rejects


class TestLookupParity:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_routed_lookups(self, small_db, mono, shards):
        sharded = ShardedIndex.build(small_db, shards=shards)
        assert sharded.fingerprint == mono.fingerprint
        assert sharded.manufacturers == mono.manufacturers
        assert sharded.months == mono.months
        for name in mono.manufacturers:
            assert (sharded.disengagements_for(name)
                    == mono.disengagements_for(name))
            assert (sharded.accidents_for(name)
                    == mono.accidents_for(name))
            assert (sharded.mileage_for(name)
                    == mono.mileage_for(name))
            assert sharded.miles_for(name) == mono.miles_for(name)
            assert (dict(sharded.monthly_miles(name))
                    == dict(mono.monthly_miles(name)))
            assert (dict(sharded.monthly_disengagements(name))
                    == dict(mono.monthly_disengagements(name)))

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_merged_lookups_restore_global_order(
            self, small_db, mono, shards):
        sharded = ShardedIndex.build(small_db, shards=shards)
        for month in mono.months:
            assert (sharded.disengagements_in_month(month)
                    == mono.disengagements_in_month(month))
        assert sharded.tags == mono.tags
        assert sharded.categories == mono.categories
        for tag in mono.tags:
            assert (sharded.disengagements_with_tag(tag)
                    == mono.disengagements_with_tag(tag))
        for category in mono.categories:
            assert (sharded.disengagements_in_category(category)
                    == mono.disengagements_in_category(category))

    def test_id_lookups(self, small_db, mono):
        sharded = ShardedIndex.build(small_db, shards=3)
        for record in small_db.disengagements[:20]:
            unit_id = disengagement_id(record)
            assert (sharded.disengagement(unit_id)
                    is mono.disengagement(unit_id))
        assert sharded.disengagement("no-such-id") is None
        assert sharded.accident("no-such-id") is None

    def test_summary_is_indistinguishable(self, small_db, mono):
        for shards in SHARD_COUNTS:
            sharded = ShardedIndex.build(small_db, shards=shards)
            assert sharded.summary() == mono.summary()

    def test_shard_count_capped_at_manufacturers(self, small_db):
        manufacturers = len(small_db.manufacturers())
        sharded = ShardedIndex.build(small_db, shards=64)
        assert sharded.shard_count == manufacturers
        assert sharded.shards[0].fingerprint.endswith("#shard0")

    def test_rejects_bad_shard_count(self, small_db):
        with pytest.raises(ValueError):
            ShardedIndex.build(small_db, shards=0)


class TestEngineParity:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_every_query_shape(self, small_db, shards):
        serial = QueryEngine(small_db)
        sharded = QueryEngine(small_db, index_backend="sharded",
                              shards=shards)
        checked = 0
        for query in _all_queries():
            expected = serial.execute(query)
            actual = sharded.execute(query)
            assert (canonical_json(actual.value)
                    == canonical_json(expected.value)), query
            assert actual.fingerprint == expected.fingerprint
            checked += 1
        assert checked >= 10  # the surface didn't silently shrink

    def test_unknown_backend_rejected(self, small_db):
        with pytest.raises(QueryError, match="index backend"):
            QueryEngine(small_db, index_backend="frobnicated")

    def test_snapshot_swap_keeps_backend(self, small_db, db):
        manager = SnapshotManager(
            small_db, index_backend="sharded", shards=3)
        assert isinstance(manager.engine.index, ShardedIndex)
        assert manager.swap_database(db)
        assert isinstance(manager.engine.index, ShardedIndex)
        assert manager.engine.index.shard_count >= 1

    def test_manager_adopts_engine_backend(self, small_db, db):
        engine = QueryEngine(small_db, index_backend="sharded")
        manager = SnapshotManager(engine)
        assert manager.swap_database(db)
        assert isinstance(manager.engine.index, ShardedIndex)


class TestHTTPParity:
    """Acceptance: a sharded server's responses are byte-identical
    to a monolithic one's on every route (volatile timing/cache
    fields excluded)."""

    ROUTES = [
        "/v1/healthz",
        "/v1/manufacturers",
        "/v1/manufacturers?limit=1",
        "/v1/query?metric=dpm&group_by=manufacturer",
        "/v1/query?metric=count&group_by=month",
        "/v1/query?metric=miles",
        "/v1/metrics/dpm",
        "/v1/metrics/apm",
        "/v1/metrics/dpa",
    ]

    @staticmethod
    def _body(server, path):
        with urllib.request.urlopen(server.url + path,
                                    timeout=10) as res:
            body = json.loads(res.read())
        body.pop("elapsed_ms", None)
        body.pop("cached", None)
        return body

    def test_routes_byte_identical(self, small_db):
        with QueryServer(small_db, port=0) as monolithic, \
                QueryServer(small_db, port=0,
                            index_backend="sharded",
                            shards=3) as sharded:
            for path in self.ROUTES:
                expected = self._body(monolithic, path)
                actual = self._body(sharded, path)
                assert (canonical_json(actual)
                        == canonical_json(expected)), path
            # /v1/stats: identical modulo the cache counters the
            # requests above just perturbed.
            expected = self._body(monolithic, "/v1/stats")
            actual = self._body(sharded, "/v1/stats")
            assert actual["fingerprint"] == expected["fingerprint"]
            assert actual["index"] == expected["index"]
