"""Legacy setup shim.

The pinned offline environment lacks the ``wheel`` package, so PEP 660
editable installs fail; ``python setup.py develop`` (and therefore
``pip install -e . --no-build-isolation``) works through this shim.
"""

from setuptools import setup

setup()
