"""The two Section II case studies as structured scenarios.

Both accidents happened in Mountain View, CA, to Waymo prototypes in
autonomous mode, and both were legally the other driver's fault while
the analysis assigns the AV a significant share of responsibility.
Each case study is encoded as an ordered chain of events over the
Fig. 3 control structure, so tests (and the example scripts) can walk
the causal chain the paper narrates and check it against the STPA
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import StpaError
from .stpa.structure import ControlStructure, build_control_structure
from .taxonomy import FaultTag


@dataclass(frozen=True)
class CaseEvent:
    """One step of a case-study event chain."""

    actor: str        # a control-structure component
    action: str
    #: Seconds from the scenario start (coarse reconstruction).
    at_seconds: float


@dataclass(frozen=True)
class CaseStudy:
    """One of the paper's two accident case studies."""

    name: str
    summary: str
    location: str
    #: The disengagement-report wording the paper quotes.
    reported_causes: tuple[str, ...]
    #: Fault tags the analysis assigns.
    tags: tuple[FaultTag, ...]
    #: The control loop implicated (Fig. 3).
    control_loop: str
    events: tuple[CaseEvent, ...] = field(default_factory=tuple)
    collision_type: str = "rear-end"
    at_fault_legally: str = "non-AV driver"

    def actors(self) -> list[str]:
        """Distinct components appearing in the event chain."""
        seen: list[str] = []
        for event in self.events:
            if event.actor not in seen:
                seen.append(event.actor)
        return seen

    def validate_against(self, structure: ControlStructure) -> None:
        """Check every actor exists in the control structure and the
        chain is time-ordered."""
        for event in self.events:
            structure.component(event.actor)  # raises on unknown
        times = [event.at_seconds for event in self.events]
        if times != sorted(times):
            raise StpaError(
                f"case study {self.name!r} events are out of order")

    @property
    def action_window_seconds(self) -> float:
        """Time from the first driver action to the collision."""
        driver_times = [e.at_seconds for e in self.events
                        if e.actor == "driver"]
        collision_times = [e.at_seconds for e in self.events
                           if "collide" in e.action
                           or "collision" in e.action]
        if not driver_times or not collision_times:
            return 0.0
        return max(0.0, min(collision_times) - min(driver_times))


CASE_STUDY_1 = CaseStudy(
    name="Case Study I: Real-Time Decisions",
    summary=(
        "At an intersection a pedestrian began to cross; the AV "
        "decided to yield but did not stop.  The test driver "
        "proactively took control, but with a car ahead also yielding "
        "and a vehicle changing lanes behind, braking was the only "
        "option, and the rear vehicle collided with the AV."),
    location="South Shoreline Blvd, Mountain View, CA",
    reported_causes=(
        "Disengage for a recklessly behaving road user",
        "incorrect behavior prediction",
    ),
    tags=(FaultTag.ENVIRONMENT, FaultTag.INCORRECT_BEHAVIOR_PREDICTION),
    control_loop="CL-1",
    events=(
        CaseEvent("non_av_driver", "pedestrian starts crossing", 0.0),
        CaseEvent("sensors", "pedestrian observed", 0.2),
        CaseEvent("recognition",
                  "evolving scene inferred too late", 0.8),
        CaseEvent("planner_controller",
                  "decides to yield but does not stop", 1.2),
        CaseEvent("driver", "proactively takes control", 2.0),
        CaseEvent("driver", "brakes (only available action)", 2.4),
        CaseEvent("non_av_driver",
                  "rear vehicle collides with the AV", 3.0),
    ),
    collision_type="rear-end",
)

CASE_STUDY_2 = CaseStudy(
    name="Case Study II: Anticipating AV Behavior",
    summary=(
        "The AV signaled a right turn, decelerated, stopped "
        "completely, then crept toward the intersection so the "
        "recognition system could see cross traffic.  The driver "
        "behind read the creep as the turn proceeding, stopped when "
        "the AV stopped, started when it started, and hit the AV "
        "from behind."),
    location="El Camino Real and Clark Ave, Mountain View, CA",
    reported_causes=(
        "Disengage for a recklessly behaving road user",
    ),
    tags=(FaultTag.ENVIRONMENT,),
    control_loop="CL-1",
    events=(
        CaseEvent("planner_controller",
                  "signals right turn, decelerates", 0.0),
        CaseEvent("actuators", "vehicle comes to a complete stop", 2.0),
        CaseEvent("recognition",
                  "needs motion to analyze cross traffic", 2.5),
        CaseEvent("planner_controller",
                  "creeps toward intersection for visibility", 3.0),
        CaseEvent("non_av_driver",
                  "misreads the creep as the turn proceeding", 3.5),
        CaseEvent("non_av_driver",
                  "rear vehicle collides with the AV", 4.5),
    ),
    collision_type="rear-end",
)

CASE_STUDIES: tuple[CaseStudy, ...] = (CASE_STUDY_1, CASE_STUDY_2)


def validate_case_studies() -> None:
    """Check both case studies against the Fig. 3 structure."""
    structure = build_control_structure()
    for case in CASE_STUDIES:
        case.validate_against(structure)


def shared_lessons() -> list[str]:
    """The Section II-C takeaways, as data for reports."""
    return [
        "Intersections force multi-flow decisions in a constrained "
        "environment; the perception system inferred the evolving "
        "dynamics too late, so the control system decided "
        "inadequately.",
        "Drivers took (or were forced to take) control in dynamic "
        "scenarios that left very little time to react and undo the "
        "AV's actions; the perception-plus-reaction window is what "
        "decides accident avoidance.",
        "Drivers of other vehicles cannot anticipate AV decisions, "
        "which itself leads to accidents.",
    ]
