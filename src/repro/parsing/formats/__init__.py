"""Per-manufacturer report format parsers.

Each module mirrors one renderer in :mod:`repro.synth.reports`; the
formats are modeled on the real heterogeneity visible in Table II of
the paper (em-dash rows for Nissan, month-granularity rows for Waymo,
semicolon key-value rows for Mercedes-Benz, CSV for Delphi, ...).
"""

from .benz import BenzParser
from .bosch import BoschParser
from .delphi import DelphiParser
from .generic import GenericParser
from .gmcruise import GmCruiseParser
from .nissan import NissanParser
from .tesla import TeslaParser
from .volkswagen import VolkswagenParser
from .waymo import WaymoParser


def all_parsers():
    """Instantiate every built-in parser (generic ones last)."""
    return [
        NissanParser(),
        WaymoParser(),
        VolkswagenParser(),
        BenzParser(),
        BoschParser(),
        GmCruiseParser(),
        DelphiParser(),
        TeslaParser(),
        GenericParser("Ford"),
        GenericParser("BMW"),
        GenericParser("Honda"),
        GenericParser("Uber ATC"),
    ]


__all__ = [
    "BenzParser",
    "BoschParser",
    "DelphiParser",
    "GenericParser",
    "GmCruiseParser",
    "NissanParser",
    "TeslaParser",
    "VolkswagenParser",
    "WaymoParser",
    "all_parsers",
]
