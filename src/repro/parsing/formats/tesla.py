"""Tesla disengagement-report parser.

Tesla rows are sparse and hyphen-separated::

    5/12/16 09:14 - Auto - <description> [- rt 0.7s]

Most Tesla descriptions carry no causal detail (the paper tags 98.35%
of Tesla disengagements Unknown-C).
"""

from __future__ import annotations

import re

from ...errors import ParseError
from ..base import ReportParser
from ..fields import coerce_date, coerce_modality, coerce_reaction_time, coerce_time
from ..records import DisengagementRecord, MonthlyMileage
from .common import parse_default_mileage

_RT_RE = re.compile(r"(?i)^rt\s+(.+)$")


class TeslaParser(ReportParser):
    """Parser for Tesla's hyphen-separated rows."""

    manufacturer = "Tesla"

    def parse_mileage(self, line: str) -> MonthlyMileage | None:
        return parse_default_mileage(self.manufacturer, line)

    def parse_row(self, line: str) -> DisengagementRecord | None:
        fields = [f.strip() for f in re.split(r"\s-\s", line)]
        if len(fields) < 3:
            return None
        datetime_parts = fields[0].split()
        if len(datetime_parts) < 2:
            return None
        try:
            event_date = coerce_date(datetime_parts[0])
            time_of_day = coerce_time(" ".join(datetime_parts[1:]))
        except ParseError:
            return None
        modality = coerce_modality(fields[1])
        rest = fields[2:]
        reaction = None
        if rest:
            match = _RT_RE.match(rest[-1])
            if match:
                reaction = coerce_reaction_time(match.group(1))
                rest.pop()
        description = " - ".join(rest).strip()
        if not description:
            return None
        return DisengagementRecord(
            manufacturer=self.manufacturer,
            month=f"{event_date.year:04d}-{event_date.month:02d}",
            event_date=event_date,
            time_of_day=time_of_day,
            vehicle_id=None,
            modality=modality,
            road_type=None,
            weather=None,
            reaction_time_s=reaction,
            description=description,
        )
