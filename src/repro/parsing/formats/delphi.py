"""Delphi disengagement-report parser.

Delphi rows are eight-column CSV::

    03/14/2015,14:02:07,...4T8R2,manual,"<description>",highway,
    Sunny/Dry,1.1

Mileage lines are three-column CSV: ``2015-03,...4T8R2,833.1``.
"""

from __future__ import annotations

from ...errors import ParseError
from ..base import ReportParser
from ..fields import (
    coerce_date,
    coerce_modality,
    coerce_number,
    coerce_reaction_time,
    coerce_road_type,
    coerce_time,
    coerce_weather,
    split_csv,
)
from ..records import DisengagementRecord, MonthlyMileage
from .common import coerce_month_iso


class DelphiParser(ReportParser):
    """Parser for Delphi's CSV rows."""

    manufacturer = "Delphi"

    def parse_mileage(self, line: str) -> MonthlyMileage | None:
        fields = split_csv(line)
        if len(fields) != 3:
            return None
        try:
            month = coerce_month_iso(fields[0])
            miles = coerce_number(fields[2])
        except ParseError:
            return None
        return MonthlyMileage(
            manufacturer=self.manufacturer, month=month,
            miles=miles, vehicle_id=fields[1] or None)

    def parse_row(self, line: str) -> DisengagementRecord | None:
        fields = split_csv(line)
        if len(fields) != 8:
            return None
        try:
            event_date = coerce_date(fields[0])
            time_of_day = coerce_time(fields[1])
        except ParseError:
            return None
        description = fields[4].strip().strip('"')
        if not description:
            return None
        reaction = None
        if fields[7]:
            try:
                reaction = coerce_reaction_time(fields[7] + " s")
            except ParseError:
                reaction = None
        return DisengagementRecord(
            manufacturer=self.manufacturer,
            month=f"{event_date.year:04d}-{event_date.month:02d}",
            event_date=event_date,
            time_of_day=time_of_day,
            vehicle_id=fields[2] or None,
            modality=coerce_modality(fields[3]),
            road_type=coerce_road_type(fields[5]),
            weather=coerce_weather(fields[6]),
            reaction_time_s=reaction,
            description=description,
        )
