"""Nissan disengagement-report parser.

Row format (Table II style)::

    1/4/16 — 1:25 PM — Leaf #1 (Alfa) — Manual — Software module
    froze. ... — city street — Sunny/Dry — 0.9 s

Mileage lines use the default ``MILES <month> <vehicle> <miles>``
style.
"""

from __future__ import annotations

from ...errors import ParseError
from ..base import ReportParser
from ..fields import (
    coerce_date,
    coerce_modality,
    coerce_reaction_time,
    coerce_road_type,
    coerce_time,
    coerce_weather,
    split_fields,
)
from ..records import DisengagementRecord, MonthlyMileage
from .common import DURATION_TAIL, parse_default_mileage


class NissanParser(ReportParser):
    """Parser for Nissan's em-dash separated rows."""

    manufacturer = "Nissan"

    def parse_mileage(self, line: str) -> MonthlyMileage | None:
        return parse_default_mileage(self.manufacturer, line)

    def parse_row(self, line: str) -> DisengagementRecord | None:
        fields = split_fields(line, "—")
        if len(fields) < 6:
            return None
        try:
            event_date = coerce_date(fields[0])
            time_of_day = coerce_time(fields[1])
        except ParseError:
            return None
        vehicle_id = fields[2]
        modality = coerce_modality(fields[3])
        rest = fields[4:]
        reaction_text = None
        if len(rest) >= 3:
            from .common import pop_tail_field
            reaction_text = pop_tail_field(rest, DURATION_TAIL)
        weather = coerce_weather(rest.pop()) if len(rest) >= 3 else None
        road = coerce_road_type(rest.pop()) if len(rest) >= 2 else None
        description = " — ".join(rest).strip()
        if not description:
            return None
        return DisengagementRecord(
            manufacturer=self.manufacturer,
            month=f"{event_date.year:04d}-{event_date.month:02d}",
            event_date=event_date,
            time_of_day=time_of_day,
            vehicle_id=vehicle_id,
            modality=modality,
            road_type=road,
            weather=weather,
            reaction_time_s=(coerce_reaction_time(reaction_text)
                             if reaction_text else None),
            description=description,
        )
