"""Volkswagen disengagement-report parser.

Row format (Table II: ``11/12/14 — 18:24:03 — Takeover-Request —
watchdog error``)::

    MM/DD/YY — HH:MM:SS — Takeover-Request — <description>
      [— reaction time: 1.2 s]

All Volkswagen disengagements are automatic (Table V), so the modality
is implied by the format rather than carried as a field.
"""

from __future__ import annotations

import re

from ...errors import ParseError
from ...taxonomy import Modality
from ..base import ReportParser
from ..fields import coerce_date, coerce_reaction_time, coerce_time, split_fields
from ..records import DisengagementRecord, MonthlyMileage
from .common import parse_default_mileage

_REACTION_RE = re.compile(r"(?i)^reaction time\s*:\s*(.+)$")


class VolkswagenParser(ReportParser):
    """Parser for Volkswagen's takeover-request rows."""

    manufacturer = "Volkswagen"

    def parse_mileage(self, line: str) -> MonthlyMileage | None:
        return parse_default_mileage(self.manufacturer, line)

    def parse_row(self, line: str) -> DisengagementRecord | None:
        fields = split_fields(line, "—")
        if len(fields) < 4:
            return None
        try:
            event_date = coerce_date(fields[0])
            time_of_day = coerce_time(fields[1])
        except ParseError:
            return None
        if "takeover" not in fields[2].lower():
            return None
        rest = fields[3:]
        reaction = None
        if rest:
            match = _REACTION_RE.match(rest[-1].strip())
            if match:
                reaction = coerce_reaction_time(match.group(1))
                rest.pop()
        description = " — ".join(rest).strip()
        if not description:
            return None
        return DisengagementRecord(
            manufacturer=self.manufacturer,
            month=f"{event_date.year:04d}-{event_date.month:02d}",
            event_date=event_date,
            time_of_day=time_of_day,
            vehicle_id=None,
            modality=Modality.AUTOMATIC,
            road_type=None,
            weather=None,
            reaction_time_s=reaction,
            description=description,
        )
