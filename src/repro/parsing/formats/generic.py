"""Fallback parser for manufacturers without a bespoke format.

Handles the pipe-separated generic rows the synthesizer emits for
Ford, BMW, Honda, and Uber ATC::

    2016-08-14 | unknown vehicle | Auto | <description>
"""

from __future__ import annotations

from ...errors import ParseError
from ..base import ReportParser
from ..fields import coerce_date, coerce_modality, split_fields
from ..records import DisengagementRecord, MonthlyMileage
from .common import parse_default_mileage


class GenericParser(ReportParser):
    """Pipe-separated fallback format, parameterized by manufacturer."""

    def __init__(self, manufacturer: str) -> None:
        self.manufacturer = manufacturer

    def parse_mileage(self, line: str) -> MonthlyMileage | None:
        return parse_default_mileage(self.manufacturer, line)

    def parse_row(self, line: str) -> DisengagementRecord | None:
        fields = split_fields(line, "|")
        if len(fields) < 4:
            return None
        try:
            event_date = coerce_date(fields[0])
        except ParseError:
            return None
        description = " | ".join(fields[3:]).strip()
        if not description:
            return None
        vehicle = fields[1].strip()
        return DisengagementRecord(
            manufacturer=self.manufacturer,
            month=f"{event_date.year:04d}-{event_date.month:02d}",
            event_date=event_date,
            time_of_day=None,
            vehicle_id=None if vehicle.lower().startswith("unknown")
            else vehicle,
            modality=coerce_modality(fields[2]),
            road_type=None,
            weather=None,
            reaction_time_s=None,
            description=description,
        )
