"""Bosch disengagement-report parser.

Bosch reports every disengagement as a planned test, in pipe-separated
rows::

    2015-03-14 | ...4T8R2 | planned test | <description> | highway |
    Sunny/Dry
"""

from __future__ import annotations

from ...errors import ParseError
from ...taxonomy import Modality
from ..base import ReportParser
from ..fields import (
    coerce_date,
    coerce_road_type,
    coerce_weather,
    split_fields,
)
from ..records import DisengagementRecord, MonthlyMileage
from .common import parse_default_mileage


class BoschParser(ReportParser):
    """Parser for Bosch's pipe-separated planned-test rows."""

    manufacturer = "Bosch"

    def parse_mileage(self, line: str) -> MonthlyMileage | None:
        return parse_default_mileage(self.manufacturer, line)

    def parse_row(self, line: str) -> DisengagementRecord | None:
        fields = split_fields(line, "|")
        if len(fields) < 6:
            return None
        try:
            event_date = coerce_date(fields[0])
        except ParseError:
            return None
        if "planned" not in fields[2].lower():
            return None
        weather = coerce_weather(fields[-1])
        road = coerce_road_type(fields[-2])
        description = " | ".join(fields[3:-2]).strip()
        if not description:
            return None
        return DisengagementRecord(
            manufacturer=self.manufacturer,
            month=f"{event_date.year:04d}-{event_date.month:02d}",
            event_date=event_date,
            time_of_day=None,
            vehicle_id=fields[1] or None,
            modality=Modality.PLANNED,
            road_type=road,
            weather=weather,
            reaction_time_s=None,
            description=description,
        )
