"""GM Cruise disengagement-report parser.

GM Cruise reports planned tests in minimal CSV rows::

    2016-08-14,"<description>",planned
"""

from __future__ import annotations

from ...errors import ParseError
from ...taxonomy import Modality
from ..base import ReportParser
from ..fields import coerce_date, split_csv
from ..records import DisengagementRecord, MonthlyMileage
from .common import parse_default_mileage


class GmCruiseParser(ReportParser):
    """Parser for GM Cruise's three-column CSV rows."""

    manufacturer = "GMCruise"

    def parse_mileage(self, line: str) -> MonthlyMileage | None:
        return parse_default_mileage(self.manufacturer, line)

    def parse_row(self, line: str) -> DisengagementRecord | None:
        fields = split_csv(line)
        if len(fields) != 3:
            return None
        if "planned" not in fields[2].lower():
            return None
        try:
            event_date = coerce_date(fields[0])
        except ParseError:
            return None
        description = fields[1].strip().strip('"')
        if not description:
            return None
        return DisengagementRecord(
            manufacturer=self.manufacturer,
            month=f"{event_date.year:04d}-{event_date.month:02d}",
            event_date=event_date,
            time_of_day=None,
            vehicle_id=None,
            modality=Modality.PLANNED,
            road_type=None,
            weather=None,
            reaction_time_s=None,
            description=description,
        )
