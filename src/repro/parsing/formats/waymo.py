"""Waymo disengagement-report parser.

Waymo reports month granularity only (Table II: ``May-16 — Highway —
Safe Operation — Disengage for a recklessly behaving road user``).
Our rendered rows add modality, optional reaction-time, and optional
car fields::

    May-16 — Highway — Manual — Safe Operation — <description>
      [— reaction 1.2 s] [— car AV-003]

Mileage lines::

    Autonomous miles May-16 car AV-001: 28342.1
"""

from __future__ import annotations

import re

from ...errors import ParseError
from ..base import ReportParser
from ..fields import (
    coerce_modality,
    coerce_month_abbr,
    coerce_reaction_time,
    coerce_road_type,
    split_fields,
)
from ..records import DisengagementRecord, MonthlyMileage
from .common import coerce_month_iso  # noqa: F401  (re-export for tests)

#: Waymo mileage lines are recognized structurally, not by keyword:
#: Waymo's section has thousands of lines, so keyword anchoring loses
#: a measurable share of miles to OCR damage.  A mileage line is
#: "<anything> <Mon-YY token> <car word> <vehicle>: <number>".
_MILEAGE_TAIL_RE = re.compile(
    r"^(?P<head>.*\S)\s*:\s*(?P<miles>[\dOoIl|.,]+)\s*$")
_MONTH_TOKEN_RE = re.compile(
    r"\b([A-Za-z0-9|]{2,9})-([0-9OoIl|]{2})\b")

_REACTION_RE = re.compile(r"(?i)^reaction\s+(.+)$")
_CAR_RE = re.compile(r"(?i)^c[ao]r\s+(.+)$")

_VEHICLE_ID_RE = re.compile(r"(?i)^([a-z]{1,3}[0-9OoIl|]?)-(\S+)$")


def _repair_vehicle_id(text: str) -> str:
    """Normalize an OCR-damaged Waymo fleet id (``AV-O01`` -> ``AV-001``)."""
    from ..fields import repair_numeric_text

    match = _VEHICLE_ID_RE.match(text.strip())
    if match is None:
        return text.strip()
    return f"AV-{repair_numeric_text(match.group(2))}"


class WaymoParser(ReportParser):
    """Parser for Waymo's month-granularity em-dash rows."""

    manufacturer = "Waymo"

    def parse_mileage(self, line: str) -> MonthlyMileage | None:
        if "—" in line:
            return None  # event rows are em-dash separated
        match = _MILEAGE_TAIL_RE.match(line)
        if match is None:
            return None
        head = match.group("head")
        month_token = _MONTH_TOKEN_RE.search(head)
        if month_token is None:
            return None
        from ..fields import coerce_number
        try:
            month = coerce_month_abbr(month_token.group(0))
        except ParseError:
            return None
        trailing = head[month_token.end():].split()
        if not trailing:
            return None
        return MonthlyMileage(
            manufacturer=self.manufacturer,
            month=month,
            miles=coerce_number(match.group("miles")),
            vehicle_id=_repair_vehicle_id(trailing[-1]),
        )

    def parse_row(self, line: str) -> DisengagementRecord | None:
        fields = split_fields(line, "—")
        if len(fields) < 5:
            return None
        try:
            month = coerce_month_abbr(fields[0])
        except ParseError:
            return None
        road = coerce_road_type(fields[1])
        modality = coerce_modality(fields[2])
        rest = fields[4:]  # fields[3] is the fixed "Safe Operation" label
        reaction = None
        vehicle = None
        while rest:
            tail = rest[-1].strip()
            reaction_match = _REACTION_RE.match(tail)
            car_match = _CAR_RE.match(tail)
            if car_match and vehicle is None:
                vehicle = _repair_vehicle_id(car_match.group(1))
                rest.pop()
            elif reaction_match and reaction is None:
                reaction = coerce_reaction_time(reaction_match.group(1))
                rest.pop()
            else:
                break
        description = " — ".join(rest).strip()
        if not description:
            return None
        return DisengagementRecord(
            manufacturer=self.manufacturer,
            month=month,
            event_date=None,
            time_of_day=None,
            vehicle_id=vehicle,
            modality=modality,
            road_type=road,
            weather=None,
            reaction_time_s=reaction,
            description=description,
        )
