"""Mercedes-Benz disengagement-report parser.

Rows are semicolon-separated key-value pairs::

    Date: 03/14/2015; Time: 14:02; Vehicle: S500-1; Initiator: Driver;
    Cause: <description>; Road: highway; Weather: Sunny/Dry;
    Reaction: 0.8 sec

Mileage lines report kilometres (converted to miles here)::

    Month: 2015-03; Vehicle: S500-1; Autonomous km: 1234.5
"""

from __future__ import annotations

import re

from ...errors import ParseError
from ...units import MILES_PER_KM
from ..base import ReportParser
from ..fields import (
    coerce_date,
    coerce_modality,
    coerce_number,
    coerce_reaction_time,
    coerce_road_type,
    coerce_time,
    coerce_weather,
)
from ..records import DisengagementRecord, MonthlyMileage
from .common import coerce_month_iso

_KV_RE = re.compile(r"\s*([A-Za-z ]+?)\s*:\s*(.*)")

#: Canonical field keys; OCR-damaged keys are snapped to the closest
#: one within edit distance 2 ("Dafe" -> "date", "Tirne" -> "time").
_KNOWN_KEYS = ("date", "time", "vehicle", "initiator", "cause", "road",
               "weather", "reaction", "month", "autonomous km")


def _snap_key(key: str) -> str:
    from ..base import _levenshtein

    if key in _KNOWN_KEYS:
        return key
    best_key, best_distance = key, 3
    for known in _KNOWN_KEYS:
        distance = _levenshtein(key, known, cap=2)
        if distance < best_distance:
            best_key, best_distance = known, distance
    return best_key


def _parse_key_values(line: str) -> dict[str, str]:
    """Split ``Key: value; Key: value`` rows into a dict.

    Keys are fuzzy-matched against the known schema so OCR damage to a
    field label does not lose the field.
    """
    pairs: dict[str, str] = {}
    for chunk in line.split(";"):
        match = _KV_RE.match(chunk)
        if match:
            key = _snap_key(match.group(1).strip().lower())
            pairs[key] = match.group(2).strip()
    return pairs


class BenzParser(ReportParser):
    """Parser for Mercedes-Benz's key-value rows."""

    manufacturer = "Mercedes-Benz"

    def parse_mileage(self, line: str) -> MonthlyMileage | None:
        pairs = _parse_key_values(line)
        if "month" not in pairs or "autonomous km" not in pairs:
            return None
        month = coerce_month_iso(pairs["month"])
        km = coerce_number(pairs["autonomous km"])
        return MonthlyMileage(
            manufacturer=self.manufacturer,
            month=month,
            miles=km * MILES_PER_KM,
            vehicle_id=pairs.get("vehicle"),
        )

    def parse_row(self, line: str) -> DisengagementRecord | None:
        pairs = _parse_key_values(line)
        if "date" not in pairs or "cause" not in pairs:
            return None
        try:
            event_date = coerce_date(pairs["date"])
        except ParseError:
            return None
        time_of_day = None
        if pairs.get("time"):
            try:
                time_of_day = coerce_time(pairs["time"])
            except ParseError:
                time_of_day = None
        reaction = None
        if pairs.get("reaction"):
            try:
                reaction = coerce_reaction_time(pairs["reaction"])
            except ParseError:
                reaction = None
        return DisengagementRecord(
            manufacturer=self.manufacturer,
            month=f"{event_date.year:04d}-{event_date.month:02d}",
            event_date=event_date,
            time_of_day=time_of_day,
            vehicle_id=pairs.get("vehicle"),
            modality=coerce_modality(pairs.get("initiator", "")),
            road_type=coerce_road_type(pairs.get("road", "")),
            weather=coerce_weather(pairs.get("weather", "")),
            reaction_time_s=reaction,
            description=pairs["cause"],
        )
