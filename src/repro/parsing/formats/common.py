"""Helpers shared by the format parsers."""

from __future__ import annotations

import re

from ...errors import ParseError
from ...units import month_key
from ..fields import coerce_number, repair_numeric_text
from ..records import MonthlyMileage

#: Matches the library's default mileage line:
#: ``MILES 2015-03 Leaf #1 (Alfa) 55.32``
#: The keyword pattern tolerates OCR damage (``M1LES``, ``MILE5``,
#: ``MILES5`` after over-eager word repair).
_DEFAULT_MILEAGE_RE = re.compile(
    r"(?i)^\s*M[I1l]LE[S5]{1,2}\s+(\S+)\s+(.*\S)\s+([\dOoIl|.,]+)\s*$")

_MONTH_RE = re.compile(r"^(\d{4})-(\d{2})$")


def coerce_month_iso(text: str) -> str:
    """Parse a ``YYYY-MM`` month key, repairing OCR digit damage."""
    repaired = repair_numeric_text(text.strip())
    match = _MONTH_RE.match(repaired)
    if match is None:
        raise ParseError(f"bad month key {text!r}", line=text)
    year, month = int(match.group(1)), int(match.group(2))
    if not 1 <= month <= 12:
        raise ParseError(f"month out of range in {text!r}", line=text)
    return f"{year:04d}-{month:02d}"


def parse_default_mileage(manufacturer: str,
                          line: str) -> MonthlyMileage | None:
    """Parse the default ``MILES <month> <vehicle> <miles>`` line."""
    match = _DEFAULT_MILEAGE_RE.match(line)
    if match is None:
        return None
    month = coerce_month_iso(match.group(1))
    miles = coerce_number(match.group(3))
    return MonthlyMileage(
        manufacturer=manufacturer, month=month,
        miles=miles, vehicle_id=match.group(2).strip())


def pop_tail_field(fields: list[str],
                   pattern: str) -> str | None:
    """Remove and return the last field matching ``pattern`` (regex).

    Only inspects the trailing fields (the description occupies the
    middle of the row), so a matching word inside the narrative is not
    stolen.
    """
    if not fields:
        return None
    if re.match(pattern, fields[-1].strip(), flags=re.IGNORECASE):
        return fields.pop().strip()
    return None


DURATION_TAIL = r"^[\dOoIl|., ]+\s*(s|sec|secs|seconds?|ms|min|mins)\s*$"


def month_of_date(value) -> str:
    """Month key of a date (convenience re-export)."""
    return month_key(value)
