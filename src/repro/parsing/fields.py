"""Field-level coercions shared by the format parsers.

These helpers are deliberately tolerant: the text they see has been
through the OCR channel, so ``"O.8 sec"`` (letter O) must still parse
as 0.8 seconds and ``"May-l6"`` as May 2016.  Structural repairs that
need *numeric context* live here; generic character-level repair lives
in :mod:`repro.ocr.correction`.
"""

from __future__ import annotations

import re
from datetime import date

from ..errors import FieldCoercionError
from ..taxonomy import Modality
from ..units import parse_date, parse_duration_seconds, parse_time_of_day

_MONTH_NUMBERS = {
    "jan": 1, "feb": 2, "mar": 3, "apr": 4, "may": 5, "jun": 6,
    "jul": 7, "aug": 8, "sep": 9, "oct": 10, "nov": 11, "dec": 12,
}

#: Character repairs applied inside numeric fields only.
_DIGIT_REPAIRS = str.maketrans({
    "O": "0", "o": "0", "l": "1", "I": "1", "|": "1",
    "S": "5", "B": "8", "Z": "2", "g": "9",
})

_MODALITY_WORDS = {
    "auto": Modality.AUTOMATIC,
    "automatic": Modality.AUTOMATIC,
    "system": Modality.AUTOMATIC,
    "manual": Modality.MANUAL,
    "driver": Modality.MANUAL,
    "planned": Modality.PLANNED,
    "planned test": Modality.PLANNED,
    "planned fault injection": Modality.PLANNED,
}

_ROAD_TYPES = (
    "city street", "highway", "interstate", "freeway", "parking lot",
    "suburban", "rural", "street", "urban",
)


def repair_numeric_text(text: str) -> str:
    """Translate common OCR letter/digit confusions in a numeric field."""
    return text.translate(_DIGIT_REPAIRS)


def coerce_number(text: str) -> float:
    """Parse a number out of possibly OCR-damaged text."""
    repaired = repair_numeric_text(text.strip())
    match = re.search(r"[-+]?\d*\.?\d+(?:[eE][-+]?\d+)?",
                      repaired.replace(",", ""))
    if match is None:
        raise FieldCoercionError(f"no number in {text!r}", line=text)
    return float(match.group())


def coerce_date(text: str) -> date:
    """Parse a date, repairing OCR digit damage first."""
    return parse_date(repair_numeric_text(text.strip()))


def coerce_time(text: str) -> tuple[int, int, int]:
    """Parse a time-of-day, repairing OCR digit damage first."""
    return parse_time_of_day(repair_numeric_text(text.strip()))


#: Digit look-alikes inside month names ("5ep" -> "sep").
_MONTH_LETTER_REPAIRS = str.maketrans(
    {"5": "s", "0": "o", "1": "l", "|": "l", "8": "b", "9": "g"})


def coerce_month_abbr(text: str) -> str:
    """Parse a ``May-16``-style month into canonical ``YYYY-MM``."""
    repaired = text.strip()
    match = re.match(r"([A-Za-z0-9|]{2,9})[-/\s]+(\S+)", repaired)
    if match is None:
        raise FieldCoercionError(f"unrecognized month {text!r}", line=text)
    name = match.group(1).lower().translate(_MONTH_LETTER_REPAIRS)[:3]
    if name not in _MONTH_NUMBERS:
        name = _fuzzy_month(name)
    if name not in _MONTH_NUMBERS:
        raise FieldCoercionError(f"unknown month name {text!r}", line=text)
    year_text = repair_numeric_text(match.group(2))
    year_match = re.search(r"\d+", year_text)
    if year_match is None:
        raise FieldCoercionError(f"no year in {text!r}", line=text)
    year = int(year_match.group())
    if year < 100:
        year += 2000
    return f"{year:04d}-{_MONTH_NUMBERS[name]:02d}"


def _fuzzy_month(name: str) -> str:
    """Snap an OCR-damaged month abbreviation to the closest month.

    Accepts a single substitution ("dee" -> "dec") or a single dropped
    leading/trailing letter ("ug" -> "aug").
    """
    candidates = []
    for month in _MONTH_NUMBERS:
        if len(name) == 3:
            if sum(a != b for a, b in zip(name, month)) == 1:
                candidates.append(month)
        elif len(name) == 2 and (month[1:] == name or month[:2] == name):
            candidates.append(month)
    return candidates[0] if len(candidates) == 1 else name


def coerce_reaction_time(text: str) -> float | None:
    """Parse a reaction time in seconds; empty text means unreported."""
    stripped = text.strip().strip('"')
    if not stripped or stripped in {"-", "--", "n/a", "N/A"}:
        return None
    return parse_duration_seconds(repair_numeric_text(stripped))


def coerce_modality(text: str) -> Modality | None:
    """Map an initiator word to a modality, ``None`` when unknown."""
    return _MODALITY_WORDS.get(text.strip().strip('"').lower())


def coerce_road_type(text: str) -> str | None:
    """Normalize a road-type field to lowercase canonical text."""
    lowered = text.strip().strip('"').lower()
    if not lowered or lowered in {"unknown", "unknown road", "-"}:
        return None
    for road in _ROAD_TYPES:
        if road in lowered:
            return road if road not in ("street", "urban") else "city street"
    return lowered


def coerce_weather(text: str) -> str | None:
    """Normalize a weather field; unknowns map to ``None``."""
    stripped = text.strip().strip('"')
    if not stripped or stripped.lower() in {"unknown", "-", "n/a"}:
        return None
    return stripped


def split_fields(line: str, separator: str) -> list[str]:
    """Split a report row on its separator, trimming whitespace.

    Tolerates OCR damage to the separator itself: em-dash rows are also
    split on hyphen-with-spaces, and pipe rows on the broken-bar
    character.
    """
    if separator == "—":
        parts = re.split(r"\s+[—–-]{1,2}\s+", line)
    elif separator == "|":
        parts = re.split(r"\s*[|¦]\s*", line)
    else:
        parts = line.split(separator)
    return [p.strip() for p in parts]


def split_csv(line: str) -> list[str]:
    """Split a CSV row honoring double-quoted fields."""
    fields: list[str] = []
    current: list[str] = []
    in_quotes = False
    for char in line:
        if char == '"':
            in_quotes = not in_quotes
        elif char == "," and not in_quotes:
            fields.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    fields.append("".join(current).strip())
    return fields
