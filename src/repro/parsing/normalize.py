"""Schema normalization for parsed records (step 2 of the pipeline).

Parsers already coerce field types; this pass enforces the cross-
manufacturer invariants the analysis depends on: canonical month keys,
non-negative quantities, trimmed text, and consistent casing of
enumerated strings.  Records that violate a hard invariant are dropped
(and counted), mirroring the paper's filtering step.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .records import AccidentRecord, DisengagementRecord, MonthlyMileage

_MONTH_RE = re.compile(r"^\d{4}-\d{2}$")

#: Reaction times above this are kept but flagged (the paper keeps
#: Volkswagen's ~4 h outlier in Fig. 10 while excluding it from fits).
REACTION_TIME_SUSPECT_THRESHOLD_S = 600.0


@dataclass
class NormalizationStats:
    """Bookkeeping for the normalization pass."""

    disengagements_in: int = 0
    disengagements_dropped: int = 0
    mileage_in: int = 0
    mileage_dropped: int = 0
    suspect_reaction_times: int = 0
    reasons: dict[str, int] = field(default_factory=dict)

    def drop(self, reason: str) -> None:
        """Record a dropped-record reason."""
        self.reasons[reason] = self.reasons.get(reason, 0) + 1


def _valid_month(month: str) -> bool:
    if not _MONTH_RE.match(month):
        return False
    mon = int(month[5:7])
    return 1 <= mon <= 12


def normalize_disengagement(record: DisengagementRecord,
                            stats: NormalizationStats,
                            ) -> DisengagementRecord | None:
    """Normalize one disengagement; ``None`` when it must be dropped."""
    stats.disengagements_in += 1
    if not record.manufacturer:
        stats.disengagements_dropped += 1
        stats.drop("missing manufacturer")
        return None
    if not _valid_month(record.month):
        stats.disengagements_dropped += 1
        stats.drop("invalid month")
        return None
    record.description = " ".join(record.description.split())
    if not record.description:
        stats.disengagements_dropped += 1
        stats.drop("empty description")
        return None
    if record.road_type is not None:
        record.road_type = record.road_type.strip().lower() or None
    if record.weather is not None:
        record.weather = record.weather.strip() or None
    if record.reaction_time_s is not None:
        if record.reaction_time_s <= 0:
            record.reaction_time_s = None
        elif record.reaction_time_s > REACTION_TIME_SUSPECT_THRESHOLD_S:
            stats.suspect_reaction_times += 1
    return record


def normalize_mileage(cell: MonthlyMileage,
                      stats: NormalizationStats) -> MonthlyMileage | None:
    """Normalize one mileage cell; ``None`` when it must be dropped."""
    stats.mileage_in += 1
    if not _valid_month(cell.month):
        stats.mileage_dropped += 1
        stats.drop("invalid mileage month")
        return None
    if cell.miles < 0:
        stats.mileage_dropped += 1
        stats.drop("negative miles")
        return None
    return cell


def normalize_records(
        disengagements: list[DisengagementRecord],
        mileage: list[MonthlyMileage],
) -> tuple[list[DisengagementRecord], list[MonthlyMileage],
           NormalizationStats]:
    """Normalize parsed records, returning survivors and statistics."""
    stats = NormalizationStats()
    kept_d = []
    for record in disengagements:
        normalized = normalize_disengagement(record, stats)
        if normalized is not None:
            kept_d.append(normalized)
    kept_m = []
    for cell in mileage:
        normalized_cell = normalize_mileage(cell, stats)
        if normalized_cell is not None:
            kept_m.append(normalized_cell)
    return kept_d, kept_m, stats


def normalize_accident(record: AccidentRecord) -> AccidentRecord:
    """Normalize one accident record in place (speeds, text, month)."""
    record.description = " ".join(record.description.split())
    if record.av_speed_mph is not None and record.av_speed_mph < 0:
        record.av_speed_mph = None
    if record.other_speed_mph is not None and record.other_speed_mph < 0:
        record.other_speed_mph = None
    if record.month is None and record.event_date is not None:
        record.month = (f"{record.event_date.year:04d}-"
                        f"{record.event_date.month:02d}")
    return record
