"""OL-316 accident report parser.

Accident reports are one document per accident, in the labeled-field
layout of the DMV's OL 316 form.  Fields may be OCR-damaged or marked
UNKNOWN/[REDACTED]; every field is therefore optional.
"""

from __future__ import annotations

import re

from ..errors import ParseError
from ..units import month_key
from .fields import coerce_date, coerce_number
from .records import AccidentRecord

_FIELD_RE = re.compile(r"^\s*([A-Za-z][A-Za-z /]+?)\s*:\s*(.*)$")

_ACCIDENT_MARKERS = ("OL 316", "OL-316", "TRAFFIC ACCIDENT", "0L 316",
                     "TRAFFIC ACCIDENT".replace("I", "1"))

#: Canonical OL-316 field labels; OCR-damaged labels snap to the
#: closest one within edit distance 3.
_KNOWN_FIELDS = (
    "manufacturer", "date of accident", "location", "vehicle",
    "autonomous mode at time of collision", "av speed",
    "other vehicle speed", "collision type", "injuries", "description")


def is_accident_document(lines: list[str]) -> bool:
    """Whether ``lines`` look like an OL-316 accident report."""
    head = " ".join(lines[:4]).upper()
    return any(marker in head for marker in _ACCIDENT_MARKERS)


def _snap_field(key: str) -> str:
    from .base import _levenshtein

    if key in _KNOWN_FIELDS:
        return key
    best_key, best_distance = key, 4
    for known in _KNOWN_FIELDS:
        distance = _levenshtein(key, known, cap=3)
        if distance < best_distance:
            best_key, best_distance = known, distance
    return best_key


def _snap_manufacturer(name: str) -> str:
    """Snap an OCR-damaged manufacturer name to the known registry."""
    from ..calibration.manufacturers import MANUFACTURERS
    from .base import _levenshtein

    if name in MANUFACTURERS:
        return name
    best_name, best_distance = name, 4
    for known in MANUFACTURERS:
        distance = _levenshtein(name.lower(), known.lower(), cap=3)
        if distance < best_distance:
            best_name, best_distance = known, distance
    return best_name


def _field_map(lines: list[str]) -> dict[str, str]:
    fields: dict[str, str] = {}
    for line in lines:
        match = _FIELD_RE.match(line)
        if match:
            key = _snap_field(match.group(1).strip().lower())
            fields[key] = match.group(2).strip()
    return fields


def _maybe_speed(text: str | None) -> float | None:
    if not text or text.strip().upper().startswith("UNKNOWN"):
        return None
    try:
        return coerce_number(text)
    except ParseError:
        return None


def parse_accident_report(lines: list[str],
                          document_id: str) -> AccidentRecord:
    """Parse one OL-316 document into an :class:`AccidentRecord`."""
    if not is_accident_document(lines):
        raise ParseError(
            "document does not look like an OL-316 accident report",
            line=lines[0] if lines else None)
    fields = _field_map(lines)
    manufacturer = _snap_manufacturer(fields.get("manufacturer", "").strip())
    if not manufacturer:
        raise ParseError("accident report lacks a manufacturer field")

    event_date = None
    date_text = fields.get("date of accident", "")
    if date_text and not date_text.upper().startswith("UNKNOWN"):
        try:
            event_date = coerce_date(date_text)
        except ParseError:
            event_date = None

    vehicle_text = fields.get("vehicle", "")
    redacted = "REDACTED" in vehicle_text.upper()
    vehicle_id = None
    if vehicle_text and not redacted and vehicle_text.lower() != "unknown":
        vehicle_id = vehicle_text

    mode_text = fields.get(
        "autonomous mode at time of collision", "").upper()
    autonomous = None
    if mode_text.startswith("YES"):
        autonomous = True
    elif mode_text.startswith("NO"):
        autonomous = False

    description = fields.get("description", "")
    disengaged_before = bool(re.search(
        r"(?i)disengag\w+ autonomous mode prior to the collision",
        description))

    injuries_text = fields.get("injuries", "NONE").upper()
    injuries = injuries_text.startswith("YES")

    collision_type = fields.get("collision type") or None
    if collision_type and collision_type.lower() == "unknown":
        collision_type = None

    location = fields.get("location") or None
    if location and location.upper() == "UNKNOWN":
        location = None

    return AccidentRecord(
        manufacturer=manufacturer,
        event_date=event_date,
        month=month_key(event_date) if event_date else None,
        location=location,
        autonomous_at_collision=autonomous,
        disengaged_before_collision=disengaged_before,
        av_speed_mph=_maybe_speed(fields.get("av speed")),
        other_speed_mph=_maybe_speed(fields.get("other vehicle speed")),
        collision_type=collision_type,
        injuries=injuries,
        redacted=redacted,
        vehicle_id=vehicle_id,
        description=description,
        source_document=document_id,
    )
