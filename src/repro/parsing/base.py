"""Parser interface, registry, and document dispatch for Stage II.

Each manufacturer's report format gets a :class:`ReportParser`
subclass; the :class:`ParserRegistry` resolves the right parser from
the (possibly OCR-damaged) ``Manufacturer:`` header using fuzzy
matching, falling back to format sniffing when the header is
unreadable.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod

from ..errors import ParseError, UnknownFormatError
from ..units import month_key
from .records import DisengagementRecord, MonthlyMileage, ParsedReport

_HEADER_MARKERS = (
    "REPORT OF AUTONOMOUS VEHICLE DISENGAGEMENTS",
    "SECTION 1", "SECTION 2", "END OF REPORT", "Reporting period:",
)


def _levenshtein(a: str, b: str, cap: int = 4) -> int:
    """Edit distance with an early-exit cap (headers are short)."""
    if abs(len(a) - len(b)) > cap:
        return cap + 1
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        best = i
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            value = min(previous[j] + 1, current[j - 1] + 1,
                        previous[j - 1] + cost)
            current.append(value)
            best = min(best, value)
        if best > cap:
            return cap + 1
        previous = current
    return previous[-1]


class ReportParser(ABC):
    """Base class for per-manufacturer disengagement-report parsers."""

    #: Canonical manufacturer name this parser handles.
    manufacturer: str = ""

    @abstractmethod
    def parse_row(self, line: str) -> DisengagementRecord | None:
        """Parse one disengagement row, or ``None`` if not a row."""

    @abstractmethod
    def parse_mileage(self, line: str) -> MonthlyMileage | None:
        """Parse one mileage line, or ``None`` if not a mileage line."""

    def sniff(self, lines: list[str]) -> bool:
        """Whether this parser recognizes the body format of ``lines``.

        The default sniffs by attempting to parse rows; subclasses may
        override with cheaper checks.
        """
        hits = 0
        for line in lines:
            try:
                if self.parse_row(line) is not None:
                    hits += 1
            except ParseError:
                continue
            if hits >= 3:
                return True
        return hits > 0

    def _is_header(self, line: str) -> bool:
        stripped = line.strip()
        if not stripped:
            return True
        for marker in _HEADER_MARKERS:
            if marker.lower()[:12] in stripped.lower():
                return True
        if re.match(r"(?i)manufacturer\s*:", stripped):
            return True
        return False

    def parse(self, lines: list[str], document_id: str) -> ParsedReport:
        """Parse a whole report document into canonical records."""
        report = ParsedReport(
            manufacturer=self.manufacturer, document_id=document_id)
        for line_no, line in enumerate(lines):
            if self._is_header(line):
                continue
            try:
                mileage = self.parse_mileage(line)
            except ParseError:
                mileage = None
            if mileage is not None:
                report.mileage.append(mileage)
                continue
            try:
                record = self.parse_row(line)
            except ParseError:
                record = None
            if record is not None:
                record.source_document = document_id
                record.source_line = line_no
                report.disengagements.append(record)
                continue
            report.unparsed_lines.append(line)
        return report

    @staticmethod
    def _month_of(record: DisengagementRecord) -> str:
        if record.event_date is not None:
            return month_key(record.event_date)
        return record.month


class ParserRegistry:
    """Resolves a parser for a document by header name or by sniffing."""

    def __init__(self) -> None:
        self._parsers: dict[str, ReportParser] = {}

    def register(self, parser: ReportParser) -> None:
        """Register ``parser`` under its manufacturer name."""
        if not parser.manufacturer:
            raise ParseError("parser has no manufacturer name")
        self._parsers[parser.manufacturer.lower()] = parser

    def parsers(self) -> list[ReportParser]:
        """All registered parsers."""
        return list(self._parsers.values())

    def by_name(self, name: str) -> ReportParser | None:
        """Fuzzy lookup by manufacturer name (OCR-tolerant)."""
        lowered = name.strip().lower()
        if lowered in self._parsers:
            return self._parsers[lowered]
        best: tuple[int, ReportParser] | None = None
        for key, parser in self._parsers.items():
            distance = _levenshtein(lowered, key, cap=3)
            if distance <= 3 and (best is None or distance < best[0]):
                best = (distance, parser)
        return best[1] if best else None

    def resolve(self, lines: list[str]) -> ReportParser:
        """Pick the parser for a document: header first, then sniff."""
        for line in lines[:6]:
            match = re.match(r"(?i)\s*manufacturer\s*:\s*(.+)", line)
            if match:
                parser = self.by_name(match.group(1))
                if parser is not None:
                    return parser
        for parser in self._parsers.values():
            if parser.sniff(lines):
                return parser
        raise UnknownFormatError(
            "no registered parser recognizes this document",
            line=lines[0] if lines else None)


def default_registry() -> ParserRegistry:
    """Registry with all built-in per-manufacturer parsers."""
    # Imported here to avoid a cycle (formats import this module).
    from .formats import all_parsers

    registry = ParserRegistry()
    for parser in all_parsers():
        registry.register(parser)
    return registry


def parse_report(lines: list[str], document_id: str,
                 registry: ParserRegistry | None = None) -> ParsedReport:
    """Parse one disengagement report with the appropriate parser."""
    registry = registry or default_registry()
    parser = registry.resolve(lines)
    return parser.parse(lines, document_id)
