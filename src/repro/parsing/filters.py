"""Filtering rules applied after normalization.

The paper filters exact duplicates (scanning artifacts can duplicate
rows) and annotates planned-test disengagements (Bosch and GMCruise)
rather than discarding them — footnote 3 argues those disengagements
occurred naturally even though the tests were planned.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..taxonomy import Modality
from .records import DisengagementRecord


@dataclass
class FilterStats:
    """Bookkeeping for the filtering pass."""

    records_in: int = 0
    duplicates_dropped: int = 0
    planned_annotated: int = 0
    planned_dropped: int = 0

    @property
    def records_out(self) -> int:
        """Records surviving the filter."""
        return (self.records_in - self.duplicates_dropped
                - self.planned_dropped)


def _dedup_key(record: DisengagementRecord) -> tuple:
    return (
        record.manufacturer,
        record.month,
        record.event_date,
        record.time_of_day,
        record.vehicle_id,
        record.modality,
        record.description,
    )


def filter_records(records: list[DisengagementRecord],
                   drop_planned: bool = False,
                   ) -> tuple[list[DisengagementRecord], FilterStats]:
    """Deduplicate and optionally drop planned-test disengagements.

    ``drop_planned=False`` follows the paper's default (planned tests
    are kept and merely annotated); pass ``True`` for sensitivity
    analyses.
    """
    stats = FilterStats(records_in=len(records))
    seen: set[tuple] = set()
    kept: list[DisengagementRecord] = []
    for record in records:
        key = _dedup_key(record)
        if key in seen:
            stats.duplicates_dropped += 1
            continue
        seen.add(key)
        if record.modality is Modality.PLANNED:
            stats.planned_annotated += 1
            if drop_planned:
                stats.planned_dropped += 1
                continue
        kept.append(record)
    return kept, stats
