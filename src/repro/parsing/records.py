"""Canonical record types produced by Stage II.

Every manufacturer-specific parser emits these records, so Stages III
and IV operate on one uniform schema regardless of the source format.
Optional fields are ``None`` when the manufacturer does not report them
(the dashes of Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import Any

from ..taxonomy import FailureCategory, FaultTag, Modality


@dataclass
class DisengagementRecord:
    """One disengagement event in canonical form.

    ``tag`` and ``category`` are ``None`` until Stage III (NLP) assigns
    them; ``truth_tag`` carries the synthesizer's ground truth when the
    record originates from the synthetic corpus (out-of-band data that a
    real deployment would not have — used only for evaluation).
    """

    manufacturer: str
    #: Calendar month of the event, ``YYYY-MM``.
    month: str
    #: Exact event date when the manufacturer reports day granularity.
    event_date: date | None = None
    #: Wall-clock time as (hour, minute, second), when reported.
    time_of_day: tuple[int, int, int] | None = None
    #: Vehicle identifier (fleet-local name or VIN suffix), if reported.
    vehicle_id: str | None = None
    #: Who initiated the disengagement.
    modality: Modality | None = None
    #: Road type string, normalized lowercase, when reported.
    road_type: str | None = None
    #: Weather string, when reported.
    weather: str | None = None
    #: Driver reaction time in seconds, when reported.
    reaction_time_s: float | None = None
    #: The raw natural-language cause description.
    description: str = ""
    #: NLP-assigned fault tag / failure category (Stage III).
    tag: FaultTag | None = None
    category: FailureCategory | None = None
    #: Ground-truth tag attached by the synthesizer (evaluation only).
    truth_tag: FaultTag | None = None
    #: Provenance: source document id and line number.
    source_document: str | None = None
    source_line: int | None = None

    @property
    def year(self) -> int:
        """Calendar year of the event."""
        return int(self.month[:4])

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable dictionary form (enums/dates stringified).

        Built by hand rather than via :func:`dataclasses.asdict`: the
        checkpoint journal serializes every record as it completes,
        and ``asdict``'s recursive deep-copy dominates that cost.
        """
        return {
            "manufacturer": self.manufacturer,
            "month": self.month,
            "event_date": (self.event_date.isoformat()
                           if self.event_date else None),
            "time_of_day": (list(self.time_of_day)
                            if self.time_of_day else None),
            "vehicle_id": self.vehicle_id,
            "modality": self.modality.value if self.modality else None,
            "road_type": self.road_type,
            "weather": self.weather,
            "reaction_time_s": self.reaction_time_s,
            "description": self.description,
            "tag": self.tag.value if self.tag else None,
            "category": self.category.value if self.category else None,
            "truth_tag": (self.truth_tag.value
                          if self.truth_tag else None),
            "source_document": self.source_document,
            "source_line": self.source_line,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DisengagementRecord":
        """Inverse of :meth:`to_dict`."""
        kwargs = dict(data)
        if kwargs.get("event_date"):
            kwargs["event_date"] = date.fromisoformat(kwargs["event_date"])
        if kwargs.get("time_of_day"):
            kwargs["time_of_day"] = tuple(kwargs["time_of_day"])
        for key, enum_cls in (("modality", Modality), ("tag", FaultTag),
                              ("category", FailureCategory),
                              ("truth_tag", FaultTag)):
            if kwargs.get(key):
                kwargs[key] = enum_cls(kwargs[key])
        return cls(**kwargs)


@dataclass
class AccidentRecord:
    """One accident (OL-316) report in canonical form."""

    manufacturer: str
    event_date: date | None = None
    #: Calendar month, ``YYYY-MM``; derivable from ``event_date``.
    month: str | None = None
    #: Location description ("X St and Y Ave, Mountain View, CA").
    location: str | None = None
    #: Whether the AV was in autonomous mode at the moment of collision.
    autonomous_at_collision: bool | None = None
    #: Whether the safety driver disengaged before the collision.
    disengaged_before_collision: bool | None = None
    #: Speeds at collision, mph.
    av_speed_mph: float | None = None
    other_speed_mph: float | None = None
    #: Collision type ("rear-end", "side-swipe", ...).
    collision_type: str | None = None
    #: Whether any injury was reported.
    injuries: bool = False
    #: Whether the DMV redacted vehicle identification.
    redacted: bool = False
    vehicle_id: str | None = None
    #: Narrative description of the incident.
    description: str = ""
    source_document: str | None = None

    @property
    def relative_speed_mph(self) -> float | None:
        """Absolute speed difference of the colliding vehicles, mph."""
        if self.av_speed_mph is None or self.other_speed_mph is None:
            return None
        return abs(self.av_speed_mph - self.other_speed_mph)

    @property
    def year(self) -> int | None:
        """Calendar year of the accident, if dated."""
        if self.event_date is not None:
            return self.event_date.year
        if self.month is not None:
            return int(self.month[:4])
        return None

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable dictionary form."""
        return {
            "manufacturer": self.manufacturer,
            "event_date": (self.event_date.isoformat()
                           if self.event_date else None),
            "month": self.month,
            "location": self.location,
            "autonomous_at_collision": self.autonomous_at_collision,
            "disengaged_before_collision":
                self.disengaged_before_collision,
            "av_speed_mph": self.av_speed_mph,
            "other_speed_mph": self.other_speed_mph,
            "collision_type": self.collision_type,
            "injuries": self.injuries,
            "redacted": self.redacted,
            "vehicle_id": self.vehicle_id,
            "description": self.description,
            "source_document": self.source_document,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AccidentRecord":
        """Inverse of :meth:`to_dict`."""
        kwargs = dict(data)
        if kwargs.get("event_date"):
            kwargs["event_date"] = date.fromisoformat(kwargs["event_date"])
        return cls(**kwargs)


@dataclass
class MonthlyMileage:
    """Autonomous miles driven by one vehicle in one month."""

    manufacturer: str
    month: str
    miles: float
    vehicle_id: str | None = None

    @property
    def year(self) -> int:
        """Calendar year."""
        return int(self.month[:4])

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable dictionary form."""
        return {
            "manufacturer": self.manufacturer,
            "month": self.month,
            "miles": self.miles,
            "vehicle_id": self.vehicle_id,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MonthlyMileage":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


@dataclass
class ParsedReport:
    """Everything Stage II recovered from one raw report document."""

    manufacturer: str
    document_id: str
    disengagements: list[DisengagementRecord] = field(default_factory=list)
    mileage: list[MonthlyMileage] = field(default_factory=list)
    #: Lines that no parser rule matched (kept for audit).
    unparsed_lines: list[str] = field(default_factory=list)

    @property
    def total_miles(self) -> float:
        """Total autonomous miles in this report."""
        return sum(m.miles for m in self.mileage)
