"""Stage II: parsing, filtering, and normalization of raw DMV reports.

This package turns heterogeneous, per-manufacturer raw report text (as
recovered by the OCR substrate) into canonical, uniformly-schematized
records suitable for NLP tagging and statistical analysis.
"""

from .records import (
    AccidentRecord,
    DisengagementRecord,
    MonthlyMileage,
    ParsedReport,
)
from .base import ParserRegistry, ReportParser, default_registry, parse_report
from .normalize import normalize_records
from .filters import FilterStats, filter_records
from .accidents import parse_accident_report

__all__ = [
    "AccidentRecord",
    "DisengagementRecord",
    "MonthlyMileage",
    "ParsedReport",
    "ParserRegistry",
    "ReportParser",
    "default_registry",
    "parse_report",
    "normalize_records",
    "FilterStats",
    "filter_records",
    "parse_accident_report",
]
