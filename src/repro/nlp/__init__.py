"""Stage III: NLP labeling of disengagement causes.

Reproduces the paper's pipeline step 3: a *failure dictionary* of
phrases built by passes over the corpus (seeded from the Table III
definitions, expanded by co-occurrence), and a keyword-*voting* scheme
that assigns each narrative a fault tag — ``Unknown-T`` when no tag
wins — plus the STPA-derived ontology mapping tags to coarse failure
categories.
"""

from .tokenize import tokenize, sentences
from .normalize import normalize_tokens, STOPWORDS
from .ngrams import ngrams, phrase_candidates
from .dictionary import FailureDictionary, SEED_PHRASES
from .tagger import TagResult, VotingTagger, FirstMatchTagger
from .textcache import TokenCache, cached_tokens, token_cache
from .ontology import Ontology
from .evaluation import TaggingReport, evaluate_tagger

__all__ = [
    "tokenize",
    "sentences",
    "normalize_tokens",
    "STOPWORDS",
    "ngrams",
    "phrase_candidates",
    "FailureDictionary",
    "SEED_PHRASES",
    "TagResult",
    "VotingTagger",
    "FirstMatchTagger",
    "TokenCache",
    "cached_tokens",
    "token_cache",
    "Ontology",
    "TaggingReport",
    "evaluate_tagger",
]
