"""Fault-tag assignment by keyword voting.

The paper: "This dictionary is used to design a voting scheme (which is
based on the maximum number of shared keywords) to assign a
disengagement cause to a fault tag.  In the event that this procedure
is unsuccessful ... the disengagement cause is marked with the
'Unknown-T' tag."
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..taxonomy import FailureCategory, FaultTag, category_of
from .dictionary import DictionaryEntry, FailureDictionary
from .textcache import cached_tokens, cached_tokens_batch


@dataclass
class TagResult:
    """Outcome of tagging one narrative."""

    tag: FaultTag
    category: FailureCategory
    #: Vote weight per candidate tag.
    scores: dict[FaultTag, float] = field(default_factory=dict)
    #: Dictionary entries that matched.
    matches: list[DictionaryEntry] = field(default_factory=list)
    #: False when the result fell back to Unknown-T or broke a tie.
    confident: bool = True


class VotingTagger:
    """Weighted keyword-voting tagger over a failure dictionary."""

    def __init__(self, dictionary: FailureDictionary) -> None:
        self.dictionary = dictionary

    def tag(self, text: str) -> TagResult:
        """Assign a fault tag to one narrative."""
        tokens = cached_tokens(text)
        matches = self.dictionary.match(tokens)
        votes: Counter = Counter()
        for entry in matches:
            votes[entry.tag] += entry.weight
        if not votes:
            return TagResult(
                tag=FaultTag.UNKNOWN,
                category=category_of(FaultTag.UNKNOWN),
                scores={}, matches=[], confident=False)
        ranked = votes.most_common()
        best_tag, best_weight = ranked[0]
        confident = True
        if len(ranked) > 1 and ranked[1][1] == best_weight:
            # Tie: break in favor of the tag with more distinct
            # matching phrases; if still tied, the longer total match.
            tied = [tag for tag, weight in ranked if weight == best_weight]
            best_tag = _break_tie(tied, matches)
            confident = False
        return TagResult(
            tag=best_tag,
            category=category_of(best_tag),
            scores=dict(votes),
            matches=matches,
            confident=confident,
        )

    def tag_batch(self, texts: list[str]) -> list[TagResult]:
        """Tag a whole batch; equals ``[self.tag(t) for t in texts]``.

        The batch entrypoint backends amortize per-call overhead
        behind: one pass through the token cache, one pass through the
        dictionary index, and one vote per *distinct* narrative —
        duplicate narratives (a quarter of a real report corpus) share
        a single :class:`TagResult`.  Results must be treated as
        read-only; equality with the per-unit loop is enforced by the
        property tests in ``tests/test_nlp.py``.
        """
        token_lists = cached_tokens_batch(texts)
        match_lists = self.dictionary.match_batch(token_lists)
        memo: dict[int, TagResult] = {}
        out: list[TagResult] = []
        for matches in match_lists:
            key = id(matches)
            result = memo.get(key)
            if result is None:
                result = memo[key] = self._tag_matches(matches)
            out.append(result)
        return out

    def _tag_matches(self, matches: list[DictionaryEntry]) -> TagResult:
        """The voting scheme over one narrative's matches.

        Mirrors :meth:`tag` but accumulates votes in a plain dict and
        ranks with a stable sort: ``sorted(..., key=-weight)`` visits
        equal weights in insertion order, exactly like
        ``Counter.most_common`` — so the ranked order (which feeds the
        tie-break) is identical, at a fraction of the cost.
        """
        if not matches:
            return TagResult(
                tag=FaultTag.UNKNOWN,
                category=category_of(FaultTag.UNKNOWN),
                scores={}, matches=[], confident=False)
        votes: dict[FaultTag, float] = {}
        for entry in matches:
            tag = entry.tag
            votes[tag] = votes.get(tag, 0.0) + entry.weight
        ranked = sorted(votes.items(), key=lambda item: -item[1])
        best_tag, best_weight = ranked[0]
        confident = True
        if len(ranked) > 1 and ranked[1][1] == best_weight:
            tied = [tag for tag, weight in ranked if weight == best_weight]
            best_tag = _break_tie(tied, matches)
            confident = False
        return TagResult(
            tag=best_tag,
            category=category_of(best_tag),
            scores=votes,
            matches=matches,
            confident=confident,
        )


class FirstMatchTagger:
    """Ablation baseline: the first phrase hit in reading order wins.

    No voting, no weights — used by the ablation bench to quantify
    what the voting scheme buys.
    """

    def __init__(self, dictionary: FailureDictionary) -> None:
        self.dictionary = dictionary

    def tag(self, text: str) -> TagResult:
        """Assign the tag of the earliest phrase occurrence."""
        return self._tag_tokens(cached_tokens(text))

    def tag_batch(self, texts: list[str]) -> list[TagResult]:
        """Tag a whole batch; equals ``[self.tag(t) for t in texts]``.

        Shares the batch tokenization pass and dedupes duplicate
        narratives like :meth:`VotingTagger.tag_batch` (results are
        read-only).
        """
        token_lists = cached_tokens_batch(texts)
        memo: dict[int, TagResult] = {}
        out: list[TagResult] = []
        for tokens in token_lists:
            key = id(tokens)
            result = memo.get(key)
            if result is None:
                result = memo[key] = self._tag_tokens(tokens)
            out.append(result)
        return out

    def _tag_tokens(self, tokens: list[str]) -> TagResult:
        earliest: tuple[int, DictionaryEntry] | None = None
        for position in range(len(tokens)):
            here = self.dictionary.match_at(tokens, position)
            if here:
                earliest = (position, here[0])
                break
        if earliest is None:
            return TagResult(
                tag=FaultTag.UNKNOWN,
                category=category_of(FaultTag.UNKNOWN),
                confident=False)
        entry = earliest[1]
        return TagResult(
            tag=entry.tag, category=category_of(entry.tag),
            scores={entry.tag: entry.weight}, matches=[entry])


def _break_tie(tied: list[FaultTag],
               matches: list[DictionaryEntry]) -> FaultTag:
    """Deterministic tie-break: phrase count, then total phrase length,
    then tag name (for stability)."""
    def key(tag: FaultTag) -> tuple:
        tag_matches = [m for m in matches if m.tag == tag]
        return (-len(tag_matches),
                -sum(len(m.phrase) for m in tag_matches),
                tag.value)
    return sorted(tied, key=key)[0]
