"""The failure dictionary: phrases that identify fault tags.

The paper: "we make several passes over the dataset to construct a
'Failure Dictionary' that contains a sequence of phrases (keywords)
extracted from the raw disengagement reports".  We reproduce that as a
two-pass construction:

1. **Seed pass** — a hand-curated seed set per tag derived from the
   Table III definitions (the authors' domain knowledge).
2. **Expansion pass** — narratives that the seed set tags univocally
   donate their frequent n-grams; phrases that co-occur almost
   exclusively (purity >= 0.8) with a single tag and are not corpus
   boilerplate are added with idf-scaled weights.

Phrases are stored normalized (stemmed, stopword-free) so they match
the same narratives regardless of inflection.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field

from ..taxonomy import FaultTag
from .ngrams import all_ngrams
from .normalize import normalize_tokens
from .textcache import cached_tokens
from .tokenize import tokenize

#: Hand-curated seed phrases per tag (surface form; normalized at
#: build time).  Derived from Table III definitions and the published
#: example log lines, not from our generator's templates.
SEED_PHRASES: dict[FaultTag, tuple[str, ...]] = {
    FaultTag.ENVIRONMENT: (
        "construction zone", "emergency vehicle", "recklessly behaving",
        "reckless road user", "heavy rain", "sun glare", "debris",
        "lane closure", "weather conditions", "ran a red light",
        "accident blocking", "external factor",
    ),
    FaultTag.COMPUTER_SYSTEM: (
        "processor overload", "compute unit", "compute platform",
        "memory exhaustion", "onboard computer", "ecu",
        "thermal limits", "disk subsystem", "hardware fault",
        "rebooted",
    ),
    FaultTag.RECOGNITION_SYSTEM: (
        "didn't see", "failed to detect", "perception",
        "recognition system", "misclassified", "false obstacle",
        "failed to track", "low confidence", "traffic light",
        "lane markings",
    ),
    FaultTag.PLANNER: (
        "planner", "motion planning", "infeasible trajectory",
        "hesitated", "unwanted maneuver", "path planner",
        "incorrect lane", "anticipate the other driver",
    ),
    FaultTag.SENSOR: (
        "lidar", "radar", "gps", "camera", "sonar", "imu",
        "localize", "calibration drift", "sensor dropout",
        "signal lost", "returns degraded", "wheel-speed",
    ),
    FaultTag.NETWORK: (
        "network", "can bus", "data rate", "latency", "packets",
        "network switch", "bus saturation",
    ),
    FaultTag.DESIGN_BUG: (
        "not designed to handle", "operational design domain",
        "unforeseen situation", "feature gap", "no behavior for",
    ),
    FaultTag.SOFTWARE: (
        "software module froze", "software crash", "software bug",
        "software hang", "terminated unexpectedly",
        "unhandled exception", "stack trace",
    ),
    FaultTag.AV_CONTROLLER_UNRESPONSIVE: (
        "did not respond to commands", "command timeout",
        "not executed by the controller", "stopped acknowledging",
    ),
    FaultTag.AV_CONTROLLER_DECISION: (
        "wrong deceleration decision", "incorrect throttle",
        "wrong control decision", "incorrect gap",
    ),
    FaultTag.HANG_CRASH: (
        "watchdog",
    ),
    FaultTag.INCORRECT_BEHAVIOR_PREDICTION: (
        "behavior prediction", "incorrect prediction",
        "predicted cut-in", "prediction missed",
    ),
}


@dataclass(frozen=True)
class DictionaryEntry:
    """One phrase known to indicate one fault tag."""

    phrase: tuple[str, ...]
    tag: FaultTag
    weight: float
    source: str  # "seed" or "learned"


#: One inverted-index slot: the phrase as a list (so a candidate test
#: is a plain list-slice comparison, no per-probe tuple allocation),
#: its length, and the entry it belongs to.
_Candidate = tuple[list[str], int, DictionaryEntry]


@dataclass
class FailureDictionary:
    """Phrase -> tag dictionary with match weights.

    Matching runs through an inverted index built once per dictionary
    (first phrase token -> candidate entries), so :meth:`match` costs
    O(tokens) plus the handful of candidates that share a first token —
    instead of the O(tokens x entries) full scan that
    :meth:`match_linear` preserves as the reference implementation.
    """

    entries: list[DictionaryEntry] = field(default_factory=list)
    #: Inverted index: first phrase token -> candidates.
    _index: dict[str, list[_Candidate]] = field(
        default_factory=dict, repr=False, compare=False)
    #: O(1) ``add`` dedupe on (phrase, tag).
    _seen: set[tuple[tuple[str, ...], FaultTag]] = field(
        default_factory=set, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._reindex()

    def _reindex(self) -> None:
        self._index = {}
        self._seen = {(e.phrase, e.tag) for e in self.entries}
        for entry in self.entries:
            self._index.setdefault(entry.phrase[0], []).append(
                (list(entry.phrase), len(entry.phrase), entry))

    def add(self, entry: DictionaryEntry) -> None:
        """Add one entry (idempotent on (phrase, tag))."""
        key = (entry.phrase, entry.tag)
        if key in self._seen:
            return
        self._seen.add(key)
        self.entries.append(entry)
        self._index.setdefault(entry.phrase[0], []).append(
            (list(entry.phrase), len(entry.phrase), entry))

    def __len__(self) -> int:
        return len(self.entries)

    def phrases_for(self, tag: FaultTag) -> list[tuple[str, ...]]:
        """All phrases registered for ``tag``."""
        return [e.phrase for e in self.entries if e.tag == tag]

    def match(self, tokens: list[str]) -> list[DictionaryEntry]:
        """All entries whose phrase occurs in ``tokens``.

        One list element per occurrence, ordered by occurrence
        position then entry insertion order — identical to
        :meth:`match_linear` output (the voting weights depend on it).
        """
        matches: list[DictionaryEntry] = []
        index = self._index
        for position, token in enumerate(tokens):
            candidates = index.get(token)
            if candidates is None:
                continue
            for phrase, n, entry in candidates:
                if n == 1 or tokens[position:position + n] == phrase:
                    matches.append(entry)
        return matches

    def match_batch(self, token_lists: list[list[str]],
                    ) -> list[list[DictionaryEntry]]:
        """``[self.match(tokens) for tokens in token_lists]`` in bulk.

        Token lists that are the *same object* — which is what the
        shared token cache hands every consumer of a duplicate
        narrative — are matched once and share one result list, so
        the returned lists must be treated as read-only.
        """
        out: list[list[DictionaryEntry]] = []
        memo: dict[int, list[DictionaryEntry]] = {}
        match = self.match
        for tokens in token_lists:
            key = id(tokens)
            found = memo.get(key)
            if found is None:
                found = memo[key] = match(tokens)
            out.append(found)
        return out

    def match_at(self, tokens: list[str],
                 position: int) -> list[DictionaryEntry]:
        """Entries whose phrase starts exactly at ``position``."""
        candidates = self._index.get(tokens[position])
        if candidates is None:
            return []
        return [entry for phrase, n, entry in candidates
                if n == 1 or tokens[position:position + n] == phrase]

    def match_linear(self, tokens: list[str]) -> list[DictionaryEntry]:
        """Reference full-scan matcher (pre-index implementation).

        Kept for the parity tests and as the benchmark baseline that
        quantifies what the inverted index buys; output is identical
        to :meth:`match`, element for element.
        """
        matches: list[DictionaryEntry] = []
        for position in range(len(tokens)):
            for entry in self.entries:
                n = len(entry.phrase)
                if tuple(tokens[position:position + n]) == entry.phrase:
                    matches.append(entry)
        return matches

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the dictionary to JSON."""
        import json

        return json.dumps([
            {"phrase": list(entry.phrase), "tag": entry.tag.value,
             "weight": entry.weight, "source": entry.source}
            for entry in self.entries])

    @classmethod
    def from_json(cls, text: str) -> "FailureDictionary":
        """Inverse of :meth:`to_json`."""
        import json

        dictionary = cls()
        for item in json.loads(text):
            dictionary.add(DictionaryEntry(
                phrase=tuple(item["phrase"]),
                tag=FaultTag(item["tag"]),
                weight=float(item["weight"]),
                source=item["source"]))
        return dictionary

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @staticmethod
    def _normalize_phrase(phrase: str) -> tuple[str, ...]:
        return tuple(normalize_tokens(tokenize(phrase)))

    @classmethod
    def from_seeds(cls, seeds: dict[FaultTag, tuple[str, ...]] | None = None,
                   ) -> "FailureDictionary":
        """Dictionary containing only the hand-curated seed phrases."""
        seeds = seeds if seeds is not None else SEED_PHRASES
        dictionary = cls()
        for tag, phrases in seeds.items():
            for phrase in phrases:
                normalized = cls._normalize_phrase(phrase)
                if not normalized:
                    continue
                dictionary.add(DictionaryEntry(
                    phrase=normalized, tag=tag,
                    weight=float(len(normalized) * 2.0), source="seed"))
        return dictionary

    @classmethod
    def build(cls, texts: list[str],
              seeds: dict[FaultTag, tuple[str, ...]] | None = None,
              max_n: int = 3, min_count: int = 5, purity: float = 0.8,
              boilerplate_df: float = 0.2) -> "FailureDictionary":
        """Two-pass construction: seed tagging, then phrase expansion.

        ``boilerplate_df`` drops phrases occurring in more than that
        fraction of all narratives (shared boilerplate like "took
        immediate manual control" carries no causal signal).
        """
        dictionary = cls.from_seeds(seeds)
        # Memoized: the tagging stage re-tokenizes the same narratives.
        token_lists = [cached_tokens(t) for t in texts]
        total = max(len(token_lists), 1)

        # Pass 1: tag each narrative with the seed dictionary alone.
        pass1_tags: list[FaultTag | None] = []
        for tokens in token_lists:
            votes: Counter = Counter()
            for entry in dictionary.match(tokens):
                votes[entry.tag] += entry.weight
            if votes:
                best, second = _top_two(votes)
                pass1_tags.append(best if best != second else None)
            else:
                pass1_tags.append(None)

        # Pass 2: harvest phrases that co-occur purely with one tag.
        phrase_tag_counts: dict[tuple[str, ...], Counter] = defaultdict(
            Counter)
        phrase_df: Counter = Counter()
        for tokens, tag in zip(token_lists, pass1_tags):
            seen = set(all_ngrams(tokens, max_n))
            for phrase in seen:
                phrase_df[phrase] += 1
                if tag is not None:
                    phrase_tag_counts[phrase][tag] += 1

        for phrase, tag_counts in phrase_tag_counts.items():
            df = phrase_df[phrase]
            count = sum(tag_counts.values())
            if count < min_count or df / total > boilerplate_df:
                continue
            tag, tag_count = tag_counts.most_common(1)[0]
            if tag_count / count < purity:
                continue
            idf = math.log(total / df)
            dictionary.add(DictionaryEntry(
                phrase=phrase, tag=tag,
                weight=float(len(phrase)) * idf / 3.0,
                source="learned"))
        return dictionary


def _top_two(votes: Counter) -> tuple[FaultTag, FaultTag | None]:
    """Best and runner-up tags by weight (runner-up None if absent).

    Returns ``(best, best)`` on an exact tie so callers can detect it.
    """
    ranked = votes.most_common()
    best_tag, best_weight = ranked[0]
    if len(ranked) > 1 and ranked[1][1] == best_weight:
        return best_tag, best_tag  # signal: tie
    return best_tag, ranked[1][0] if len(ranked) > 1 else None
