"""Token normalization: stopwords and light suffix stemming.

A full stemmer is overkill for this vocabulary; we strip plural and
gerund suffixes so "disengagements"/"disengagement" and
"yielding"/"yield" unify, which is what the phrase matching needs.
"""

from __future__ import annotations

STOPWORDS = frozenset((
    "a an the and or of to in on at for with by from as is was were are "
    "be been being it its this that these those there then than so such "
    "did do does done not no nor own other out over under up down "
    "driver drivers test vehicle vehicles car cars av "
    "safely resumed took take taken immediate manual control mode "
    "disengage disengaged disengagement disengagements result "
    "autonomous").split())

_SUFFIXES = ("ings", "ing", "edly", "ed", "es", "s")

#: Words short enough that stripping a suffix destroys them.
_MIN_STEM_LENGTH = 4


def stem(token: str) -> str:
    """Strip one common suffix from ``token`` (light stemming)."""
    for suffix in _SUFFIXES:
        if token.endswith(suffix):
            candidate = token[: -len(suffix)]
            if len(candidate) >= _MIN_STEM_LENGTH - 1:
                return candidate
    return token


def normalize_tokens(tokens: list[str],
                     drop_stopwords: bool = True) -> list[str]:
    """Stem tokens and optionally drop stopwords.

    Stopword filtering removes the boilerplate that appears in nearly
    every report row ("driver safely disengaged and resumed manual
    control") so it cannot vote for any tag.
    """
    out = []
    for token in tokens:
        if drop_stopwords and token in STOPWORDS:
            continue
        out.append(stem(token))
    return out
