"""Tokenization for disengagement narratives."""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:'[a-z]+)?")
_SENTENCE_RE = re.compile(r"[.!?]+\s+|[.!?]+$")


def tokenize(text: str) -> list[str]:
    """Lowercase word tokens of ``text`` (apostrophes kept in-word)."""
    return _TOKEN_RE.findall(text.lower())


def sentences(text: str) -> list[str]:
    """Split ``text`` into sentences on terminal punctuation."""
    parts = _SENTENCE_RE.split(text)
    return [p.strip() for p in parts if p and p.strip()]
