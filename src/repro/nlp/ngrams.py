"""N-gram extraction for the failure dictionary."""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable


def ngrams(tokens: list[str], n: int) -> list[tuple[str, ...]]:
    """All contiguous ``n``-grams of ``tokens``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return [tuple(tokens[i:i + n]) for i in range(len(tokens) - n + 1)]


def all_ngrams(tokens: list[str],
               max_n: int = 3) -> list[tuple[str, ...]]:
    """All 1..max_n-grams of ``tokens``."""
    out: list[tuple[str, ...]] = []
    for n in range(1, max_n + 1):
        out.extend(ngrams(tokens, n))
    return out


def phrase_candidates(documents: Iterable[list[str]], max_n: int = 3,
                      min_count: int = 3) -> Counter:
    """Frequent phrases across tokenized ``documents``.

    Returns a Counter of phrase tuples appearing at least
    ``min_count`` times — the raw material of the failure dictionary.
    """
    counts: Counter = Counter()
    for tokens in documents:
        counts.update(set(all_ngrams(tokens, max_n)))
    return Counter({phrase: count for phrase, count in counts.items()
                    if count >= min_count})
