"""TF-IDF centroid classifier: a supervised baseline for the tagger.

The paper's dictionary-voting approach needs no labels; the natural
question is how much a *supervised* bag-of-words classifier (trained
on labeled examples) would gain.  This nearest-centroid model over
TF-IDF vectors answers it in the ablation bench: it needs hundreds of
labels to match what the dictionary gets for free.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field

from ..errors import NlpError
from ..taxonomy import FailureCategory, FaultTag, category_of
from .normalize import normalize_tokens
from .tagger import TagResult
from .tokenize import tokenize


def _vectorize(tokens: list[str], idf: dict[str, float],
               ) -> dict[str, float]:
    counts = Counter(tokens)
    total = sum(counts.values()) or 1
    return {token: (count / total) * idf.get(token, 0.0)
            for token, count in counts.items()}


def _cosine(a: dict[str, float], b: dict[str, float]) -> float:
    if not a or not b:
        return 0.0
    dot = sum(value * b.get(token, 0.0) for token, value in a.items())
    norm_a = math.sqrt(sum(v * v for v in a.values()))
    norm_b = math.sqrt(sum(v * v for v in b.values()))
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return dot / (norm_a * norm_b)


@dataclass
class TfidfTagger:
    """Nearest-centroid TF-IDF classifier over fault tags."""

    #: Minimum cosine similarity to assign a tag at all.
    min_similarity: float = 0.05
    _idf: dict[str, float] = field(default_factory=dict, repr=False)
    _centroids: dict[FaultTag, dict[str, float]] = field(
        default_factory=dict, repr=False)

    @property
    def trained(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return bool(self._centroids)

    def fit(self, texts: list[str],
            labels: list[FaultTag]) -> "TfidfTagger":
        """Train on labeled narratives."""
        if len(texts) != len(labels):
            raise NlpError(
                f"{len(texts)} texts vs {len(labels)} labels")
        if not texts:
            raise NlpError("no training examples")
        token_lists = [normalize_tokens(tokenize(t)) for t in texts]
        document_frequency: Counter = Counter()
        for tokens in token_lists:
            document_frequency.update(set(tokens))
        total = len(token_lists)
        self._idf = {token: math.log(total / df)
                     for token, df in document_frequency.items()}

        sums: dict[FaultTag, dict[str, float]] = defaultdict(
            lambda: defaultdict(float))
        counts: Counter = Counter()
        for tokens, label in zip(token_lists, labels):
            vector = _vectorize(tokens, self._idf)
            counts[label] += 1
            for token, value in vector.items():
                sums[label][token] += value
        self._centroids = {
            label: {token: value / counts[label]
                    for token, value in vector.items()}
            for label, vector in sums.items()}
        return self

    def tag(self, text: str) -> TagResult:
        """Classify one narrative (same interface as VotingTagger)."""
        if not self.trained:
            raise NlpError("classifier is not trained; call fit()")
        tokens = normalize_tokens(tokenize(text))
        vector = _vectorize(tokens, self._idf)
        scores = {label: _cosine(vector, centroid)
                  for label, centroid in self._centroids.items()}
        best_tag, best_score = max(
            scores.items(), key=lambda item: (item[1], item[0].value))
        if best_score < self.min_similarity:
            return TagResult(
                tag=FaultTag.UNKNOWN,
                category=FailureCategory.UNKNOWN,
                scores=scores, confident=False)
        return TagResult(
            tag=best_tag, category=category_of(best_tag),
            scores=scores, confident=True)
