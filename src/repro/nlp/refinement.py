"""Dictionary refinement from low-confidence records.

The paper's authors manually verified the failure dictionary over
several passes.  This module mechanizes one pass: find the records the
tagger is least confident about, obtain labels for them (from an
oracle — ground truth in our corpus, a human in a real deployment),
and distill new discriminative phrases from the labeled examples into
the dictionary.  Repeating until the label budget is spent converges
the dictionary the way the authors' manual passes did.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Callable

from ..parsing.records import DisengagementRecord
from ..taxonomy import FaultTag
from .dictionary import DictionaryEntry, FailureDictionary
from .ngrams import all_ngrams
from .normalize import normalize_tokens
from .tagger import VotingTagger
from .tokenize import tokenize

#: An oracle maps a record to its true tag (or None to decline).
LabelOracle = Callable[[DisengagementRecord], FaultTag | None]


def truth_oracle(record: DisengagementRecord) -> FaultTag | None:
    """Oracle backed by the synthetic corpus ground truth."""
    return record.truth_tag


@dataclass
class RefinementRound:
    """Bookkeeping for one refinement pass."""

    labeled: int = 0
    phrases_added: int = 0
    accuracy_before: float = 0.0
    accuracy_after: float = 0.0

    @property
    def improved(self) -> bool:
        """Whether the pass improved accuracy."""
        return self.accuracy_after > self.accuracy_before


@dataclass
class RefinementResult:
    """Outcome of a full refinement run."""

    dictionary: FailureDictionary
    rounds: list[RefinementRound] = field(default_factory=list)

    @property
    def total_labeled(self) -> int:
        """Labels consumed across all rounds."""
        return sum(r.labeled for r in self.rounds)


def _uncertain_records(tagger: VotingTagger,
                       records: list[DisengagementRecord],
                       budget: int) -> list[DisengagementRecord]:
    """The ``budget`` records the tagger is least confident about."""
    scored = []
    for record in records:
        result = tagger.tag(record.description)
        if not result.confident:
            margin = 0.0
        else:
            ranked = sorted(result.scores.values(), reverse=True)
            margin = (ranked[0] - ranked[1]
                      if len(ranked) > 1 else ranked[0])
        scored.append((margin, record))
    scored.sort(key=lambda item: item[0])
    return [record for _, record in scored[:budget]]


def _distill_phrases(labeled: list[tuple[DisengagementRecord, FaultTag]],
                     dictionary: FailureDictionary,
                     min_count: int = 2,
                     purity: float = 0.9) -> list[DictionaryEntry]:
    """Extract discriminative phrases from labeled examples."""
    phrase_tags: dict[tuple[str, ...], Counter] = defaultdict(Counter)
    for record, tag in labeled:
        tokens = normalize_tokens(tokenize(record.description))
        for phrase in set(all_ngrams(tokens, max_n=3)):
            phrase_tags[phrase][tag] += 1
    known = {entry.phrase for entry in dictionary.entries}
    entries = []
    total = max(len(labeled), 1)
    for phrase, tags in phrase_tags.items():
        if phrase in known:
            continue
        count = sum(tags.values())
        if count < min_count:
            continue
        tag, tag_count = tags.most_common(1)[0]
        if tag is FaultTag.UNKNOWN or tag_count / count < purity:
            continue
        weight = float(len(phrase)) * math.log(1 + total / count)
        entries.append(DictionaryEntry(
            phrase=phrase, tag=tag, weight=weight, source="refined"))
    return entries


def refine_dictionary(dictionary: FailureDictionary,
                      records: list[DisengagementRecord],
                      oracle: LabelOracle = truth_oracle,
                      rounds: int = 3,
                      budget_per_round: int = 50,
                      ) -> RefinementResult:
    """Run ``rounds`` of uncertainty-driven dictionary refinement.

    Accuracy before/after is measured over the records the oracle can
    label (in a real deployment: a held-out manually-labeled set).
    """
    from .evaluation import evaluate_tagger

    result = RefinementResult(dictionary=dictionary)
    labelable = [r for r in records if oracle(r) is not None]
    for _ in range(rounds):
        tagger = VotingTagger(dictionary)
        round_stats = RefinementRound(
            accuracy_before=evaluate_tagger(
                tagger, labelable).tag_accuracy)
        uncertain = _uncertain_records(
            tagger, labelable, budget_per_round)
        labeled = []
        for record in uncertain:
            tag = oracle(record)
            if tag is not None:
                labeled.append((record, tag))
        round_stats.labeled = len(labeled)
        for entry in _distill_phrases(labeled, dictionary):
            dictionary.add(entry)
            round_stats.phrases_added += 1
        round_stats.accuracy_after = evaluate_tagger(
            VotingTagger(dictionary), labelable).tag_accuracy
        result.rounds.append(round_stats)
        if round_stats.phrases_added == 0:
            break
    return result
