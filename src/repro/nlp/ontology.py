"""STPA-derived failure ontology (Table III).

A thin object wrapper over :mod:`repro.taxonomy` that the pipeline and
reporting layers use: tags, their categories, the Table IV ML/Design
subcategory split, and the human-readable definitions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import OntologyError
from ..taxonomy import (
    ML_SUBCATEGORY,
    TAG_CATEGORY,
    TAG_DEFINITIONS,
    FailureCategory,
    FaultTag,
    MlSubcategory,
)


@dataclass(frozen=True)
class Ontology:
    """The fault-tag / failure-category ontology of the study."""

    def tags(self) -> list[FaultTag]:
        """All fault tags, in Table III order."""
        return list(FaultTag)

    def categories(self) -> list[FailureCategory]:
        """All coarse failure categories."""
        return list(FailureCategory)

    def category(self, tag: FaultTag) -> FailureCategory:
        """Coarse category of ``tag``."""
        try:
            return TAG_CATEGORY[tag]
        except KeyError:
            raise OntologyError(f"tag {tag!r} not in ontology") from None

    def ml_subcategory(self, tag: FaultTag) -> MlSubcategory | None:
        """Table IV ML/Design split of ``tag`` (None outside ML)."""
        return ML_SUBCATEGORY.get(tag)

    def definition(self, tag: FaultTag) -> str:
        """Human-readable Table III definition of ``tag``."""
        try:
            return TAG_DEFINITIONS[tag]
        except KeyError:
            raise OntologyError(f"tag {tag!r} has no definition") from None

    def tags_in(self, category: FailureCategory) -> list[FaultTag]:
        """All tags whose coarse category is ``category``."""
        return [tag for tag in FaultTag
                if TAG_CATEGORY[tag] is category]

    def validate(self) -> None:
        """Check internal consistency (every tag categorized/defined)."""
        for tag in FaultTag:
            if tag not in TAG_CATEGORY:
                raise OntologyError(f"tag {tag} lacks a category")
            if tag not in TAG_DEFINITIONS:
                raise OntologyError(f"tag {tag} lacks a definition")
        for tag, subcategory in ML_SUBCATEGORY.items():
            if TAG_CATEGORY[tag] is not FailureCategory.ML_DESIGN:
                raise OntologyError(
                    f"{tag} has ML subcategory {subcategory} but is "
                    f"categorized {TAG_CATEGORY[tag]}")
