"""Unsupervised clustering of disengagement narratives.

The Table III tag set is fixed; a real deployment also needs to notice
*emergent* failure modes the dictionary does not know yet.  This
module implements leader clustering over TF-IDF vectors: one pass
assigns each narrative to the first cluster whose leader is within the
similarity threshold (or founds a new cluster), a second pass
re-assigns against the final leader set for stability.  Clusters are
summarized by their most characteristic phrases, ready to be reviewed
and promoted into dictionary entries.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

from ..errors import NlpError
from .ngrams import all_ngrams
from .normalize import normalize_tokens
from .tokenize import tokenize


def _tfidf(tokens: list[str], idf: dict[str, float]) -> dict[str, float]:
    counts = Counter(tokens)
    total = sum(counts.values()) or 1
    return {token: (count / total) * idf.get(token, 0.0)
            for token, count in counts.items()}


def _cosine(a: dict[str, float], b: dict[str, float]) -> float:
    if not a or not b:
        return 0.0
    dot = sum(value * b.get(token, 0.0) for token, value in a.items())
    norm_a = math.sqrt(sum(v * v for v in a.values()))
    norm_b = math.sqrt(sum(v * v for v in b.values()))
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return dot / (norm_a * norm_b)


@dataclass
class Cluster:
    """One narrative cluster."""

    cluster_id: int
    leader: dict[str, float] = field(repr=False, default_factory=dict)
    member_indices: list[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of member narratives."""
        return len(self.member_indices)


@dataclass
class ClusteringResult:
    """Outcome of a clustering run."""

    clusters: list[Cluster]
    #: narrative index -> cluster id.
    assignments: dict[int, int]
    texts: list[str] = field(repr=False, default_factory=list)

    def cluster_of(self, index: int) -> Cluster:
        """The cluster containing narrative ``index``."""
        cluster_id = self.assignments[index]
        return self.clusters[cluster_id]

    def top_clusters(self, k: int = 10) -> list[Cluster]:
        """The ``k`` largest clusters."""
        return sorted(self.clusters, key=lambda c: -c.size)[:k]

    def characteristic_phrases(self, cluster: Cluster,
                               k: int = 5) -> list[tuple[str, ...]]:
        """Phrases over-represented in a cluster vs. the corpus."""
        inside: Counter = Counter()
        for index in cluster.member_indices:
            tokens = normalize_tokens(tokenize(self.texts[index]))
            inside.update(set(all_ngrams(tokens, max_n=3)))
        outside: Counter = Counter()
        member_set = set(cluster.member_indices)
        for index, text in enumerate(self.texts):
            if index in member_set:
                continue
            tokens = normalize_tokens(tokenize(text))
            outside.update(set(all_ngrams(tokens, max_n=3)))
        scored = []
        for phrase, count in inside.items():
            if count < max(2, cluster.size // 4):
                continue
            lift = (count / cluster.size) / (
                (outside.get(phrase, 0) + 1)
                / max(len(self.texts) - cluster.size, 1))
            scored.append((lift * len(phrase), phrase))
        scored.sort(reverse=True)
        return [phrase for _, phrase in scored[:k]]


def cluster_narratives(texts: list[str],
                       threshold: float = 0.35) -> ClusteringResult:
    """Leader-cluster ``texts`` at the given cosine threshold."""
    if not texts:
        raise NlpError("no narratives to cluster")
    if not 0.0 < threshold < 1.0:
        raise NlpError(f"threshold {threshold} outside (0, 1)")

    token_lists = [normalize_tokens(tokenize(t)) for t in texts]
    document_frequency: Counter = Counter()
    for tokens in token_lists:
        document_frequency.update(set(tokens))
    total = len(token_lists)
    idf = {token: math.log(total / df)
           for token, df in document_frequency.items()}
    vectors = [_tfidf(tokens, idf) for tokens in token_lists]

    # Pass 1: found leaders.
    clusters: list[Cluster] = []
    for index, vector in enumerate(vectors):
        best_id, best_similarity = -1, threshold
        for cluster in clusters:
            similarity = _cosine(vector, cluster.leader)
            if similarity >= best_similarity:
                best_id, best_similarity = cluster.cluster_id, similarity
        if best_id < 0:
            clusters.append(Cluster(cluster_id=len(clusters),
                                    leader=dict(vector)))

    # Pass 2: assign everything against the final leader set.
    assignments: dict[int, int] = {}
    for cluster in clusters:
        cluster.member_indices = []
    for index, vector in enumerate(vectors):
        best_id, best_similarity = 0, -1.0
        for cluster in clusters:
            similarity = _cosine(vector, cluster.leader)
            if similarity > best_similarity:
                best_id, best_similarity = cluster.cluster_id, similarity
        assignments[index] = best_id
        clusters[best_id].member_indices.append(index)

    return ClusteringResult(clusters=clusters, assignments=assignments,
                            texts=list(texts))


def cluster_purity(result: ClusteringResult,
                   labels: list) -> float:
    """Weighted purity of clusters against reference labels."""
    if len(labels) != len(result.texts):
        raise NlpError(
            f"{len(labels)} labels for {len(result.texts)} narratives")
    agreeing = 0
    for cluster in result.clusters:
        if not cluster.member_indices:
            continue
        counts = Counter(labels[i] for i in cluster.member_indices)
        agreeing += counts.most_common(1)[0][1]
    return agreeing / len(result.texts)
