"""Bounded memo for the tokenize -> normalize hot path.

Every NLP consumer — the voting tagger, the ablation tagger, the
dictionary builder, and the evaluation re-tag pass — needs the same
``normalize_tokens(tokenize(text))`` preprocessing.  Narratives are
re-tokenized several times per run (dictionary pass 1, tagging,
evaluation), so a small memo keyed by the raw text removes the
repeated stemming work entirely.

The cache is a thread-safe LRU with a hard capacity bound, so memory
stays flat however many pipelines a process runs.  Entries are pure
functions of the text (tokenization draws no randomness and has no
config knobs), which makes sharing one process-global cache across
runs — and across the threaded worker pool — safe.

Contract: callers must treat a returned token list as **read-only**;
it is shared with every other caller that asks about the same text.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from .normalize import normalize_tokens
from .tokenize import tokenize

#: Default memo capacity.  The full synthetic corpus holds ~5-6k
#: distinct narratives, so this keeps a whole run resident while
#: bounding the worst case to a few MB of short token lists.
DEFAULT_CAPACITY = 8192


class TokenCache:
    """Thread-safe bounded LRU of normalized token lists."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: OrderedDict[str, list[str]] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def tokens(self, text: str) -> list[str]:
        """The normalized tokens of ``text`` (cached; do not mutate)."""
        with self._lock:
            cached = self._items.get(text)
            if cached is not None:
                self.hits += 1
                self._items.move_to_end(text)
                return cached
            self.misses += 1
        # Tokenize outside the lock: the work is pure, so a racing
        # duplicate computation is wasteful but harmless.
        computed = normalize_tokens(tokenize(text))
        with self._lock:
            self._items[text] = computed
            self._items.move_to_end(text)
            while len(self._items) > self.capacity:
                self._items.popitem(last=False)
        return computed

    def tokens_batch(self, texts: list[str]) -> list[list[str]]:
        """Normalized tokens for a whole batch (cached; do not mutate).

        Equivalent to ``[self.tokens(t) for t in texts]`` — including
        the hit/miss accounting: the first occurrence of an uncached
        text counts one miss, every later duplicate in the batch
        counts a hit, exactly as N sequential calls would.  The win is
        one lock round-trip for all cached lookups plus one for all
        insertions, instead of two per text.
        """
        out: list[list[str] | None] = [None] * len(texts)
        missing: dict[str, list[int]] = {}
        with self._lock:
            for index, text in enumerate(texts):
                cached = self._items.get(text)
                if cached is not None:
                    self.hits += 1
                    self._items.move_to_end(text)
                    out[index] = cached
                    continue
                slots = missing.get(text)
                if slots is None:
                    self.misses += 1
                    missing[text] = [index]
                else:
                    self.hits += 1
                    slots.append(index)
        if missing:
            computed = {text: normalize_tokens(tokenize(text))
                        for text in missing}
            with self._lock:
                for text, tokens in computed.items():
                    held = self._items.get(text)
                    if held is None:
                        held = self._items[text] = tokens
                    self._items.move_to_end(text)
                    for index in missing[text]:
                        out[index] = held
                while len(self._items) > self.capacity:
                    self._items.popitem(last=False)
        return out

    def stats(self) -> dict[str, int]:
        """A consistent ``{hits, misses, size, capacity}`` snapshot."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._items),
                "capacity": self.capacity,
            }

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        with self._lock:
            self._items.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._items)


#: Process-global memo shared by all taggers and dictionary builds.
_CACHE = TokenCache()


def cached_tokens(text: str) -> list[str]:
    """Normalized tokens of ``text`` via the shared memo (read-only)."""
    return _CACHE.tokens(text)


def cached_tokens_batch(texts: list[str]) -> list[list[str]]:
    """Batch variant of :func:`cached_tokens` (read-only lists)."""
    return _CACHE.tokens_batch(texts)


def token_cache() -> TokenCache:
    """The shared :class:`TokenCache` (for stats and tests)."""
    return _CACHE
