"""Evaluation of the tagger against ground-truth labels.

The paper's authors validated their dictionary manually; with the
synthetic corpus we can score the tagger mechanically against the
generator's ground-truth tags, at both tag and category granularity.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from ..parsing.records import DisengagementRecord
from ..taxonomy import FaultTag, category_of


@dataclass
class TaggingReport:
    """Accuracy summary of a tagging run."""

    total: int = 0
    correct_tag: int = 0
    correct_category: int = 0
    #: (truth, predicted) -> count.
    confusion: Counter = field(default_factory=Counter)
    per_tag_truth: Counter = field(default_factory=Counter)
    per_tag_hits: Counter = field(default_factory=Counter)
    per_tag_predicted: Counter = field(default_factory=Counter)

    @property
    def tag_accuracy(self) -> float:
        """Fraction of records whose fine tag was recovered."""
        return self.correct_tag / self.total if self.total else 0.0

    @property
    def category_accuracy(self) -> float:
        """Fraction of records whose coarse category was recovered."""
        return self.correct_category / self.total if self.total else 0.0

    def recall(self, tag: FaultTag) -> float:
        """Per-tag recall."""
        truth = self.per_tag_truth[tag]
        return self.per_tag_hits[tag] / truth if truth else 0.0

    def precision(self, tag: FaultTag) -> float:
        """Per-tag precision."""
        predicted = self.per_tag_predicted[tag]
        return self.per_tag_hits[tag] / predicted if predicted else 0.0

    def f1(self, tag: FaultTag) -> float:
        """Per-tag F1 score."""
        p, r = self.precision(tag), self.recall(tag)
        return 2 * p * r / (p + r) if p + r else 0.0

    def top_confusions(self, k: int = 5) -> list[tuple[tuple, int]]:
        """The ``k`` most frequent (truth, predicted) mistakes."""
        mistakes = Counter({pair: count
                            for pair, count in self.confusion.items()
                            if pair[0] != pair[1]})
        return mistakes.most_common(k)


def evaluate_tagger(tagger, records: list[DisengagementRecord],
                    ) -> TaggingReport:
    """Score ``tagger`` against records carrying ground-truth tags.

    ``tagger`` is anything with a ``tag(text) -> TagResult`` method; a
    batch-native ``tag_batch`` (see :class:`~repro.nlp.tagger.
    VotingTagger`) is used when present so the evaluation re-tag pass
    amortizes tokenization across the corpus.  Records without ground
    truth are skipped.
    """
    report = TaggingReport()
    scored = [r for r in records if r.truth_tag is not None]
    tag_batch = getattr(tagger, "tag_batch", None)
    if tag_batch is not None:
        results = tag_batch([r.description for r in scored])
    else:
        results = [tagger.tag(r.description) for r in scored]
    for record, result in zip(scored, results):
        truth = record.truth_tag
        report.total += 1
        report.per_tag_truth[truth] += 1
        report.per_tag_predicted[result.tag] += 1
        report.confusion[(truth, result.tag)] += 1
        if result.tag == truth:
            report.correct_tag += 1
            report.per_tag_hits[truth] += 1
        if category_of(result.tag) is category_of(truth):
            report.correct_category += 1
    return report


def per_manufacturer_accuracy(tagger,
                              records: list[DisengagementRecord],
                              ) -> dict[str, float]:
    """Tag accuracy split by manufacturer."""
    grouped: dict[str, list[DisengagementRecord]] = defaultdict(list)
    for record in records:
        grouped[record.manufacturer].append(record)
    return {name: evaluate_tagger(tagger, group).tag_accuracy
            for name, group in sorted(grouped.items())}
