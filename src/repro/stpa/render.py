"""Rendering of the control structure: Graphviz DOT and text outline.

``to_dot`` emits a DOT document (no graphviz dependency — the string
is valid input for any renderer); ``to_outline`` prints the structure
as an indented text tree for terminals.
"""

from __future__ import annotations

from .components import ComponentKind
from .structure import ControlStructure, EdgeKind

_KIND_SHAPES = {
    ComponentKind.HUMAN: "ellipse",
    ComponentKind.CONTROLLER: "box",
    ComponentKind.SENSOR: "parallelogram",
    ComponentKind.ACTUATOR: "trapezium",
    ComponentKind.PROCESS: "box3d",
    ComponentKind.SUBSTRATE: "component",
}

_EDGE_STYLES = {
    EdgeKind.CONTROL: "solid",
    EdgeKind.FEEDBACK: "dashed",
    EdgeKind.OBSERVATION: "dotted",
    EdgeKind.HOSTING: "bold",
}


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def to_dot(structure: ControlStructure,
           highlight: dict[str, int] | None = None) -> str:
    """Render the structure as a Graphviz DOT digraph.

    ``highlight`` optionally maps component names to failure counts;
    highlighted nodes are filled with an intensity proportional to
    their share.
    """
    highlight = highlight or {}
    peak = max(highlight.values()) if highlight else 0
    lines = ["digraph control_structure {",
             "  rankdir=TB;",
             "  node [fontname=\"Helvetica\"];"]
    for component in structure.components():
        attrs = [f"shape={_KIND_SHAPES[component.kind]}",
                 f"label={_quote(component.name)}"]
        count = highlight.get(component.name, 0)
        if peak > 0 and count > 0:
            # Grayscale fill: heavier failure sites are darker.
            intensity = int(90 - 50 * count / peak)
            attrs.append("style=filled")
            attrs.append(f'fillcolor="gray{intensity}"')
        lines.append(f"  {component.name} [{', '.join(attrs)}];")
    for kind in EdgeKind:
        for source, target, label in structure.edges_of_kind(kind):
            lines.append(
                f"  {source} -> {target} "
                f"[style={_EDGE_STYLES[kind]}, "
                f"label={_quote(label)}];")
    lines.append("}")
    return "\n".join(lines)


def to_outline(structure: ControlStructure) -> str:
    """Indented text outline: each component with its in/out edges."""
    lines = []
    for component in structure.components():
        lines.append(f"{component.name} [{component.kind}]")
        for _, target, data in structure.graph.out_edges(
                component.name, data=True):
            lines.append(f"  -> {target}  ({data['kind']}: "
                         f"{data['label']})")
        for source, _, data in structure.graph.in_edges(
                component.name, data=True):
            lines.append(f"  <- {source}  ({data['kind']}: "
                         f"{data['label']})")
    return "\n".join(lines)
