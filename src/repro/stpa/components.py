"""Components of the AV hierarchical control structure (Fig. 3)."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ComponentKind(enum.Enum):
    """Role of a component in the control hierarchy."""

    HUMAN = "human"
    CONTROLLER = "controller"
    SENSOR = "sensor"
    ACTUATOR = "actuator"
    PROCESS = "controlled process"
    SUBSTRATE = "computing substrate"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Component:
    """One box of the Fig. 3 control structure."""

    name: str
    kind: ComponentKind
    description: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


#: The components of Fig. 3.  Names are stable identifiers used as
#: graph nodes and in causal-factor mappings.
STANDARD_COMPONENTS: dict[str, Component] = {
    c.name: c for c in [
        Component(
            "driver", ComponentKind.HUMAN,
            "The AV safety driver: the fall-back controller that takes "
            "over at a disengagement."),
        Component(
            "non_av_driver", ComponentKind.HUMAN,
            "Drivers of surrounding conventional vehicles, observed by "
            "the sensors and signaled via brake lights/indicators."),
        Component(
            "sensors", ComponentKind.SENSOR,
            "GPS, RADAR, LIDAR, cameras, SONAR: collect environment "
            "data."),
        Component(
            "recognition", ComponentKind.CONTROLLER,
            "Perception system: identifies objects and environment "
            "changes from sensor data."),
        Component(
            "planner_controller", ComponentKind.CONTROLLER,
            "Plans the next motion from vehicle and environment state; "
            "issues control actions."),
        Component(
            "follower", ComponentKind.CONTROLLER,
            "Signals the actuators to track the planned path."),
        Component(
            "actuators", ComponentKind.ACTUATOR,
            "Steering, throttle, and brake actuation."),
        Component(
            "mechanical", ComponentKind.PROCESS,
            "Mechanical components of the vehicle: the controlled "
            "process."),
        Component(
            "compute", ComponentKind.SUBSTRATE,
            "Onboard computing platform (hardware and software) that "
            "hosts the autonomy stack."),
        Component(
            "network", ComponentKind.SUBSTRATE,
            "In-vehicle network carrying sensor and actuation "
            "traffic."),
    ]
}
