"""The control loops highlighted in Fig. 3 (CL-1, CL-2, CL-3)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ControlLoop:
    """One highlighted control loop of the Fig. 3 structure."""

    name: str
    description: str
    #: Ordered node names; the loop closes from last back to first.
    nodes: tuple[str, ...]


#: CL-1 is the most complex loop: autonomous control, the mechanical
#: system, and surrounding human drivers.  CL-2 is the safety-driver
#: loop.  CL-3 is the inner autonomy loop (plan -> act -> sense).
CONTROL_LOOPS: dict[str, ControlLoop] = {
    "CL-1": ControlLoop(
        name="CL-1",
        description=(
            "Interaction among autonomous control, the mechanical "
            "system, and non-AV drivers: the loop implicated in both "
            "case-study accidents."),
        nodes=("sensors", "recognition", "planner_controller",
               "follower", "actuators", "mechanical", "non_av_driver"),
    ),
    "CL-2": ControlLoop(
        name="CL-2",
        description=(
            "The safety-driver fall-back loop: the driver monitors the "
            "vehicle and takes control at a disengagement."),
        nodes=("driver", "mechanical"),
    ),
    "CL-3": ControlLoop(
        name="CL-3",
        description=(
            "The inner autonomy loop: plan, actuate, and sense the "
            "vehicle's own state."),
        nodes=("sensors", "recognition", "planner_controller",
               "follower", "actuators", "mechanical"),
    ),
}
