"""Unsafe control actions and causal-factor localization.

STPA classifies unsafe control actions (UCAs) into four kinds; each
fault tag of Table III localizes to a component of the control
structure and a characteristic UCA kind.  This is the machinery behind
the paper's statement that tags "localize faults in the computing
system ... and in the machine learning algorithms/design".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import StpaError
from ..taxonomy import FaultTag


class UnsafeControlAction(enum.Enum):
    """STPA's four kinds of unsafe control action."""

    NOT_PROVIDED = "required action not provided"
    PROVIDED_UNSAFE = "unsafe action provided"
    WRONG_TIMING = "action provided too early/late or out of order"
    STOPPED_TOO_SOON = "action stopped too soon / applied too long"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class CausalFactor:
    """Localization of a fault tag onto the control structure."""

    tag: FaultTag
    component: str
    uca: UnsafeControlAction
    rationale: str


#: Tag -> causal factor.  Environment faults localize to the
#: recognition system (footnote 5: external factors are perception
#: problems — the system failed to interpret them in time).
_CAUSAL_FACTORS: dict[FaultTag, CausalFactor] = {
    factor.tag: factor for factor in [
        CausalFactor(
            FaultTag.ENVIRONMENT, "recognition",
            UnsafeControlAction.WRONG_TIMING,
            "External change not interpreted from sensor data in time."),
        CausalFactor(
            FaultTag.RECOGNITION_SYSTEM, "recognition",
            UnsafeControlAction.PROVIDED_UNSAFE,
            "Incorrect scene state fed to the planner."),
        CausalFactor(
            FaultTag.PLANNER, "planner_controller",
            UnsafeControlAction.PROVIDED_UNSAFE,
            "Inadequate control algorithm: wrong plan for the "
            "situation."),
        CausalFactor(
            FaultTag.DESIGN_BUG, "planner_controller",
            UnsafeControlAction.NOT_PROVIDED,
            "No behavior designed for the encountered situation."),
        CausalFactor(
            FaultTag.INCORRECT_BEHAVIOR_PREDICTION, "planner_controller",
            UnsafeControlAction.PROVIDED_UNSAFE,
            "Process model mispredicts other agents' behavior."),
        CausalFactor(
            FaultTag.AV_CONTROLLER_DECISION, "planner_controller",
            UnsafeControlAction.PROVIDED_UNSAFE,
            "Controller issues a wrong decision."),
        CausalFactor(
            FaultTag.AV_CONTROLLER_UNRESPONSIVE, "follower",
            UnsafeControlAction.NOT_PROVIDED,
            "Controller fails to execute commanded actions."),
        CausalFactor(
            FaultTag.SENSOR, "sensors",
            UnsafeControlAction.WRONG_TIMING,
            "Measurement missing or late (localization failure)."),
        CausalFactor(
            FaultTag.NETWORK, "network",
            UnsafeControlAction.WRONG_TIMING,
            "Feedback path saturated: data late or dropped."),
        CausalFactor(
            FaultTag.COMPUTER_SYSTEM, "compute",
            UnsafeControlAction.STOPPED_TOO_SOON,
            "Hosting substrate degrades or halts the controllers."),
        CausalFactor(
            FaultTag.SOFTWARE, "compute",
            UnsafeControlAction.STOPPED_TOO_SOON,
            "Software defect halts or corrupts a control process."),
        CausalFactor(
            FaultTag.HANG_CRASH, "compute",
            UnsafeControlAction.NOT_PROVIDED,
            "Watchdog detects a stalled control cycle."),
    ]
}


def causal_factor_for_tag(tag: FaultTag) -> CausalFactor | None:
    """Causal factor for ``tag`` (None for Unknown-T)."""
    if tag is FaultTag.UNKNOWN:
        return None
    factor = _CAUSAL_FACTORS.get(tag)
    if factor is None:
        raise StpaError(f"tag {tag} has no causal-factor mapping")
    return factor


def all_causal_factors() -> list[CausalFactor]:
    """Every registered causal factor."""
    return list(_CAUSAL_FACTORS.values())
