"""Stochastic fault injection over the control structure.

The paper's conclusion calls for assessing the ML systems "under fault
conditions via stochastic modeling and fault injection to augment data
collection".  This module provides that instrument: inject faults at a
component of the Fig. 3 structure, propagate them along the control and
feedback edges with per-edge-kind probabilities, model detection (which
raises a takeover request to the safety driver) and driver mitigation
(success depends on the action window), and measure how often a fault
becomes a hazard at the controlled process.

The campaign's observable — which components' faults most often become
hazards — is directly comparable to the disengagement overlay of
:mod:`repro.stpa.mapping`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..errors import StpaError
from ..rng import generator
from .structure import ControlStructure, EdgeKind, build_control_structure

#: Probability a fault crosses an edge, by edge kind.  Control and
#: hosting paths propagate aggressively; feedback errors are partially
#: absorbed by downstream sanity checks; observation edges model other
#: road users misreading the AV (Case Study II).
DEFAULT_PROPAGATION: dict[EdgeKind, float] = {
    EdgeKind.CONTROL: 0.9,
    EdgeKind.FEEDBACK: 0.6,
    EdgeKind.HOSTING: 0.8,
    EdgeKind.OBSERVATION: 0.3,
}

#: Per-component probability that an arriving fault is detected there
#: (raising a takeover request).  Watchdogged substrates detect well;
#: ML components detect their own errors poorly — the paper's central
#: observation.
DEFAULT_DETECTION: dict[str, float] = {
    "sensors": 0.5,
    "recognition": 0.2,
    "planner_controller": 0.25,
    "follower": 0.6,
    "actuators": 0.7,
    "compute": 0.8,
    "network": 0.7,
    "mechanical": 0.1,
    "driver": 0.0,
    "non_av_driver": 0.0,
}

#: The component whose compromise constitutes a hazard.
HAZARD_COMPONENT = "mechanical"


@dataclass(frozen=True)
class InjectionOutcome:
    """Result of one injected fault."""

    origin: str
    reached: frozenset[str]
    detected_at: str | None
    mitigated: bool

    @property
    def hazardous(self) -> bool:
        """Whether the fault reached the controlled process
        unmitigated."""
        return HAZARD_COMPONENT in self.reached and not self.mitigated


@dataclass
class CampaignResult:
    """Aggregated fault-injection campaign results."""

    injections_per_component: int
    outcomes: list[InjectionOutcome] = field(default_factory=list)

    def hazard_rate(self, origin: str) -> float:
        """P(hazard | fault injected at ``origin``)."""
        relevant = [o for o in self.outcomes if o.origin == origin]
        if not relevant:
            return 0.0
        return sum(o.hazardous for o in relevant) / len(relevant)

    def detection_rate(self, origin: str) -> float:
        """P(detected somewhere | fault injected at ``origin``)."""
        relevant = [o for o in self.outcomes if o.origin == origin]
        if not relevant:
            return 0.0
        return sum(o.detected_at is not None
                   for o in relevant) / len(relevant)

    def hazard_ranking(self) -> list[tuple[str, float]]:
        """Components ranked by hazard rate, worst first.

        Ties break alphabetically by component name so the ranking is
        deterministic (the origins come out of a set).
        """
        origins = {o.origin for o in self.outcomes}
        ranked = [(origin, self.hazard_rate(origin))
                  for origin in origins]
        return sorted(ranked, key=lambda item: (-item[1], item[0]))

    def detection_sites(self) -> Counter:
        """Where faults get detected (component -> count)."""
        return Counter(o.detected_at for o in self.outcomes
                       if o.detected_at is not None)


class FaultInjector:
    """Monte-Carlo fault injection over a control structure."""

    def __init__(self, structure: ControlStructure | None = None,
                 propagation: dict[EdgeKind, float] | None = None,
                 detection: dict[str, float] | None = None,
                 driver_mitigation: float = 0.85) -> None:
        self.structure = structure or build_control_structure()
        self.propagation = propagation or dict(DEFAULT_PROPAGATION)
        self.detection = detection or dict(DEFAULT_DETECTION)
        if not 0.0 <= driver_mitigation <= 1.0:
            raise StpaError(
                f"driver mitigation {driver_mitigation} outside [0, 1]")
        #: P(driver takes over successfully | fault detected) — the
        #: action-window success probability of Sec. V-A4.
        self.driver_mitigation = driver_mitigation

    def inject(self, origin: str,
               rng: np.random.Generator) -> InjectionOutcome:
        """Inject one fault at ``origin`` and propagate it."""
        graph = self.structure.graph
        if origin not in graph:
            raise StpaError(f"unknown component {origin!r}")
        reached = {origin}
        frontier = [origin]
        detected_at: str | None = None
        while frontier:
            node = frontier.pop()
            if detected_at is None \
                    and rng.random() < self.detection.get(node, 0.0):
                detected_at = node
            for _, successor, data in graph.out_edges(node, data=True):
                if successor in reached:
                    continue
                if rng.random() < self.propagation[data["kind"]]:
                    reached.add(successor)
                    frontier.append(successor)
        mitigated = (detected_at is not None
                     and rng.random() < self.driver_mitigation)
        return InjectionOutcome(
            origin=origin, reached=frozenset(reached),
            detected_at=detected_at, mitigated=mitigated)

    def run_campaign(self, injections_per_component: int = 1000,
                     origins: list[str] | None = None,
                     seed: int | None = None) -> CampaignResult:
        """Inject ``injections_per_component`` faults at each origin."""
        if injections_per_component <= 0:
            raise StpaError("injections_per_component must be positive")
        rng = generator(seed)
        if origins is None:
            origins = [name for name in self.structure.graph.nodes
                       if name not in ("driver", "non_av_driver",
                                       HAZARD_COMPONENT)]
        result = CampaignResult(
            injections_per_component=injections_per_component)
        for origin in origins:
            for _ in range(injections_per_component):
                result.outcomes.append(self.inject(origin, rng))
        return result
