"""The hierarchical control structure as a typed directed graph."""

from __future__ import annotations

import enum

import networkx as nx

from ..errors import StpaError
from .components import STANDARD_COMPONENTS, Component


class EdgeKind(enum.Enum):
    """Kind of interaction an edge models."""

    CONTROL = "control action"
    FEEDBACK = "feedback"
    OBSERVATION = "observation"
    HOSTING = "hosting"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Edges of Fig. 3: (source, target, kind, label).
_EDGES: tuple[tuple[str, str, EdgeKind, str], ...] = (
    # The autonomy pipeline (CL-1 forward path).
    ("sensors", "recognition", EdgeKind.FEEDBACK,
     "environment measurements"),
    ("recognition", "planner_controller", EdgeKind.FEEDBACK,
     "object/scene state"),
    ("planner_controller", "follower", EdgeKind.CONTROL,
     "planned trajectory"),
    ("follower", "actuators", EdgeKind.CONTROL, "actuation commands"),
    ("actuators", "mechanical", EdgeKind.CONTROL, "physical actuation"),
    ("mechanical", "sensors", EdgeKind.FEEDBACK, "vehicle state"),
    # Safety-driver loop (CL-2).
    ("driver", "mechanical", EdgeKind.CONTROL,
     "manual steering/braking"),
    ("mechanical", "driver", EdgeKind.FEEDBACK, "vehicle behavior"),
    ("planner_controller", "driver", EdgeKind.FEEDBACK,
     "takeover request / disengagement alert"),
    ("driver", "planner_controller", EdgeKind.CONTROL,
     "engage/disengage autonomy"),
    # Interaction with other road users (CL-3).
    ("non_av_driver", "sensors", EdgeKind.OBSERVATION,
     "observed non-AV behavior"),
    ("mechanical", "non_av_driver", EdgeKind.OBSERVATION,
     "brake signals, indicators, motion cues"),
    # Substrate hosting.
    ("compute", "recognition", EdgeKind.HOSTING, "hosts perception"),
    ("compute", "planner_controller", EdgeKind.HOSTING, "hosts planner"),
    ("compute", "follower", EdgeKind.HOSTING, "hosts follower"),
    ("network", "compute", EdgeKind.HOSTING, "sensor/actuation traffic"),
    ("sensors", "network", EdgeKind.FEEDBACK, "raw sensor streams"),
)


class ControlStructure:
    """Typed wrapper over the Fig. 3 graph."""

    def __init__(self, graph: nx.DiGraph) -> None:
        self._graph = graph

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying networkx graph (nodes carry ``component``)."""
        return self._graph

    def component(self, name: str) -> Component:
        """Look up a component by node name."""
        try:
            return self._graph.nodes[name]["component"]
        except KeyError:
            raise StpaError(f"unknown component {name!r}") from None

    def components(self) -> list[Component]:
        """All components."""
        return [data["component"]
                for _, data in self._graph.nodes(data=True)]

    def edges_of_kind(self, kind: EdgeKind) -> list[tuple[str, str, str]]:
        """All (source, target, label) edges of the given kind."""
        return [(u, v, data["label"])
                for u, v, data in self._graph.edges(data=True)
                if data["kind"] is kind]

    def controllers_of(self, name: str) -> list[str]:
        """Components issuing control actions to ``name``."""
        return [u for u, v, data in self._graph.in_edges(name, data=True)
                if data["kind"] is EdgeKind.CONTROL]

    def feedback_sources(self, name: str) -> list[str]:
        """Components providing feedback to ``name``."""
        return [u for u, v, data in self._graph.in_edges(name, data=True)
                if data["kind"] is EdgeKind.FEEDBACK]

    def loop_exists(self, nodes: list[str]) -> bool:
        """Whether the node sequence closes a cycle in the structure."""
        cycle = list(nodes) + [nodes[0]]
        return all(self._graph.has_edge(u, v)
                   for u, v in zip(cycle, cycle[1:]))

    def validate(self) -> None:
        """Structural sanity checks (every node typed, no orphans)."""
        for node, data in self._graph.nodes(data=True):
            if "component" not in data:
                raise StpaError(f"node {node} lacks component metadata")
            if self._graph.degree(node) == 0:
                raise StpaError(f"component {node} is disconnected")


def build_control_structure() -> ControlStructure:
    """Construct the Fig. 3 control structure."""
    graph = nx.DiGraph()
    for name, component in STANDARD_COMPONENTS.items():
        graph.add_node(name, component=component)
    for source, target, kind, label in _EDGES:
        graph.add_edge(source, target, kind=kind, label=label)
    structure = ControlStructure(graph)
    structure.validate()
    return structure
