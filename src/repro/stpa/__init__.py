"""STPA (Systems-Theoretic Process Analysis) model of the ADS.

Reproduces Section III-B: the hierarchical control structure of Fig. 3
as a typed graph, the highlighted control loops CL-1/CL-2/CL-3, the
unsafe-control-action taxonomy, and the overlay that localizes each
tagged failure record onto the structure.
"""

from .components import Component, ComponentKind, STANDARD_COMPONENTS
from .structure import ControlStructure, EdgeKind, build_control_structure
from .control_loops import CONTROL_LOOPS, ControlLoop
from .hazards import (
    CausalFactor,
    UnsafeControlAction,
    causal_factor_for_tag,
)
from .mapping import FailureOverlay, overlay_failures

__all__ = [
    "Component",
    "ComponentKind",
    "STANDARD_COMPONENTS",
    "ControlStructure",
    "EdgeKind",
    "build_control_structure",
    "CONTROL_LOOPS",
    "ControlLoop",
    "CausalFactor",
    "UnsafeControlAction",
    "causal_factor_for_tag",
    "FailureOverlay",
    "overlay_failures",
]
