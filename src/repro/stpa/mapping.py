"""Overlay of failure records onto the control structure.

"Accidents and disengagements seen in the data were overlaid on this
structure" (Sec. III-B): each tagged disengagement localizes to a
component and an unsafe-control-action kind; the overlay aggregates
counts per component, per control loop, and per UCA kind.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..parsing.records import DisengagementRecord
from .control_loops import CONTROL_LOOPS
from .hazards import UnsafeControlAction, causal_factor_for_tag


@dataclass
class FailureOverlay:
    """Aggregated localization of failures onto the structure."""

    total: int = 0
    unlocalized: int = 0
    by_component: Counter = field(default_factory=Counter)
    by_uca: Counter = field(default_factory=Counter)
    #: (component, uca) -> count.
    by_component_uca: Counter = field(default_factory=Counter)

    def component_share(self, component: str) -> float:
        """Fraction of localized failures at ``component``."""
        localized = self.total - self.unlocalized
        if localized == 0:
            return 0.0
        return self.by_component[component] / localized

    def loop_counts(self) -> dict[str, int]:
        """Failures whose component participates in each control loop."""
        out = {}
        for name, loop in CONTROL_LOOPS.items():
            out[name] = sum(count for component, count
                            in self.by_component.items()
                            if component in loop.nodes)
        return out

    def dominant_component(self) -> str | None:
        """The component absorbing the most failures."""
        if not self.by_component:
            return None
        return self.by_component.most_common(1)[0][0]


def overlay_failures(records: list[DisengagementRecord],
                     use_truth: bool = False) -> FailureOverlay:
    """Overlay tagged records onto the control structure.

    Uses the NLP-assigned ``tag`` by default; ``use_truth=True``
    overlays the generator's ground truth instead (for validation).
    """
    overlay = FailureOverlay()
    for record in records:
        tag = record.truth_tag if use_truth else record.tag
        overlay.total += 1
        if tag is None:
            overlay.unlocalized += 1
            continue
        factor = causal_factor_for_tag(tag)
        if factor is None:
            overlay.unlocalized += 1
            continue
        overlay.by_component[factor.component] += 1
        overlay.by_uca[factor.uca] += 1
        overlay.by_component_uca[(factor.component, factor.uca)] += 1
    return overlay


__all__ = ["FailureOverlay", "overlay_failures", "UnsafeControlAction"]
