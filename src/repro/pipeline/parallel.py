"""Deterministic multi-worker fan-out for Stage II-III (perf layer).

The per-document Stage II work (OCR -> parse -> filter) and the
per-record Stage III tagging are embarrassingly parallel: every unit
draws its randomness from its own child stream of the pipeline seed
(see :mod:`repro.rng`), so no unit's output depends on when — or in
which worker — it runs.  This module exploits that:

* Workers compute each unit in isolation and return its **journal
  body** — the exact JSON-serializable outcome record the checkpoint
  layer already defines — plus sidecar deltas (OCR stats, resilience
  health, wall time) that never touch the journal format.
* The **coordinator** merges results strictly in original corpus
  order: records enter the database, quarantine entries are adopted,
  health counters accumulate, and checkpoint journals are appended in
  exactly the sequence the serial pipeline would have produced them.
  The saved :class:`~repro.pipeline.store.FailureDatabase` is
  byte-identical to a serial run — under quarantine, chaos
  injection, and crash -> resume alike.

Worker pools come from :mod:`concurrent.futures`: a process pool for
real CPU parallelism, with a thread pool as the low-worker-count
fallback (one worker, or an explicit ``worker_mode="thread"``) where
process spawn cost would dominate.  Checkpoint journals are written
only by the coordinator, and :class:`~repro.pipeline.chaos.CrashPoint`
kill points fire in the coordinator's merge loop, so ``--resume`` and
``--crash-at`` semantics are unchanged under N workers.

Failure-policy semantics are preserved per unit:

* ``quarantine`` — a worker dead-letters the unit locally and ships
  the quarantine entry home inside the journal body.
* ``threshold``  — workers capture failures like ``quarantine``; the
  coordinator re-enforces the stage error-rate threshold on the
  *merged* counters after each unit, so the run aborts at the same
  unit (with the same message) as a serial run.
* ``fail_fast``  — the worker converts the
  :class:`~repro.errors.PipelineError` verdict into a marker that the
  coordinator re-raises when the failing unit's turn comes up in
  corpus order.
"""

from __future__ import annotations

import math
import pickle
import threading
import time
import warnings
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner
    from .config import PipelineConfig  # imports this module)

#: Recognized executor selection modes for ``PipelineConfig.worker_mode``.
WORKER_MODES = ("auto", "thread", "process")

#: ``auto`` mode uses a process pool from this many workers up; below
#: it (i.e. a single worker) the threaded fallback avoids process
#: spawn + transfer cost that parallelism could never repay.
PROCESS_POOL_MIN_WORKERS = 2

#: ``auto`` batch sizing spreads a stage over about this many chunks
#: per worker: enough slack for the pool to balance unevenly sized
#: units, few enough tasks that per-task overhead stays amortized.
BATCH_AUTO_CHUNKS_PER_WORKER = 4

#: Upper clamp for auto-resolved batch sizes, bounding both the
#: payload a single task pickles and the journal window a crash can
#: lose (buffered appends flush at chunk boundaries).
BATCH_SIZE_CLAMP = 256


def resolve_batch_size(batch_size: int | None, n_units: int,
                       workers: int) -> int:
    """Units per dispatched chunk for one stage's fan-out.

    An explicit ``batch_size`` wins as-is; ``None`` (the ``auto``
    default) targets :data:`BATCH_AUTO_CHUNKS_PER_WORKER` chunks per
    worker, clamped to ``[1, BATCH_SIZE_CLAMP]``.  Pure function of
    its inputs so the resolved size is reproducible from the run
    report.
    """
    if batch_size is not None:
        return max(1, batch_size)
    if n_units <= 0:
        return 1
    return max(1, min(
        BATCH_SIZE_CLAMP,
        math.ceil(n_units / (workers * BATCH_AUTO_CHUNKS_PER_WORKER))))


# ----------------------------------------------------------------------
# Diagnostics.
# ----------------------------------------------------------------------

@dataclass
class ParallelStats:
    """What the parallel layer observed about one run.

    Lives on :class:`~repro.pipeline.stages.PipelineDiagnostics`;
    stage wall times are recorded for serial runs too (they cost a
    handful of ``perf_counter`` calls), the worker fields only when a
    pool was actually used.
    """

    #: Configured worker count (0 = serial).
    workers: int = 0
    #: Resolved executor kind: ``serial``, ``thread``, or ``process``.
    mode: str = "serial"
    #: Stage name -> coordinator wall-clock seconds.
    stage_wall_s: dict[str, float] = field(default_factory=dict)
    #: Units of work computed by the pool (not restored, not serial).
    parallel_units: int = 0
    #: Summed worker-side compute seconds across those units — the
    #: serial-time estimate for the fanned-out portion of the run.
    unit_compute_s: float = 0.0
    #: Coordinator wall-clock seconds spent in fanned-out stages.
    parallel_wall_s: float = 0.0
    #: Dispatch chunks shipped to the pool (0 for serial runs).
    batch_tasks: int = 0
    #: Stage name -> resolved units-per-chunk batch size.
    batch_size: dict[str, int] = field(default_factory=dict)

    @property
    def enabled(self) -> bool:
        """Whether this run actually fanned work out."""
        return self.mode != "serial"

    @property
    def speedup_estimate(self) -> float | None:
        """Estimated speedup of the fanned-out stages vs serial.

        The ratio of summed per-unit worker compute time (what a
        serial run would have spent) to the coordinator wall time of
        the parallel stages.  ``None`` for serial runs.
        """
        if not self.enabled or self.parallel_wall_s <= 0.0:
            return None
        return self.unit_compute_s / self.parallel_wall_s

    def summary(self) -> dict[str, Any]:
        """JSON-friendly digest (mirrors the health summaries)."""
        return {
            "workers": self.workers,
            "mode": self.mode,
            "parallel_units": self.parallel_units,
            "unit_compute_s": self.unit_compute_s,
            "parallel_wall_s": self.parallel_wall_s,
            "speedup_estimate": self.speedup_estimate,
            "stage_wall_s": dict(self.stage_wall_s),
            "batch_tasks": self.batch_tasks,
            "batch_size": dict(self.batch_size),
        }


# ----------------------------------------------------------------------
# Worker-side state.
# ----------------------------------------------------------------------

@dataclass(slots=True)
class UnitOutcome:
    """One unit of work's outcome, as the merge loop consumes it.

    ``body`` is the unit's checkpoint-journal body (``None`` only when
    ``error`` carries a ``fail_fast`` verdict); the remaining fields
    are coordinator-side sidecars that never enter the journal, so the
    journal format stays identical to serial runs.

    Since chunked dispatch, units cross the process-pool pipe inside a
    :class:`BatchOutcome` and the coordinator unpacks them into these
    per-unit views (``health`` is ``None`` when the chunk shipped one
    merged delta; chunk-level sidecars ride the chunk, so unpacked
    units carry ``elapsed=0``/``injected=0``/``metrics=None``).  The
    compact pickle state is kept: it is the per-unit wire baseline the
    payload benchmark measures chunking against.
    """

    body: dict[str, Any] | None
    #: Per-stage resilience counter deltas + degradation events, as
    #: the ``(stages, events)`` pair :func:`_health_delta` builds —
    #: ``None`` when the delta was merged at chunk level instead.
    health: tuple | None
    #: ``fail_fast`` verdict to re-raise at merge time (the serialized
    #: :class:`~repro.errors.PipelineError` message).
    error: str | None = None
    #: OCR stage deltas (``None`` when the unit never entered OCR).
    ocr: dict[str, Any] | None = None
    #: Worker-side wall seconds spent computing the unit.
    elapsed: float = 0.0
    #: Chaos faults injected while computing the unit.
    injected: int = 0
    #: Per-unit :meth:`~repro.obs.MetricsRegistry.dump` delta
    #: (``None`` unless the run has ``metrics_enabled``).
    metrics: dict[str, Any] | None = None

    def __getstate__(self) -> tuple:
        return (self.body, self.health, self.error, self.ocr,
                self.elapsed, self.injected, self.metrics)

    def __setstate__(self, state: tuple) -> None:
        (self.body, self.health, self.error, self.ocr,
         self.elapsed, self.injected, self.metrics) = state


@dataclass(slots=True)
class BatchOutcome:
    """What one worker computed for one dispatched chunk of units.

    ``bodies`` holds the checkpoint-journal bodies of the chunk's
    completed units in task (corpus) order.  Everything the per-unit
    encoding shipped once per unit — health delta, metrics dump, chaos
    count, wall time — rides once per chunk here, which is where the
    payload and per-task-overhead win comes from (measured in
    ``benchmarks/bench_parallel.py``).  The coordinator unpacks a
    chunk back into :class:`UnitOutcome` views strictly in corpus
    order, so every merge-side state transition — and therefore every
    output byte — is identical to per-unit dispatch and to serial.

    Health granularity is adaptive: normally one merged delta for the
    whole chunk suffices, but when any unit in the chunk quarantined,
    per-unit deltas are shipped instead (``unit_health``) because the
    coordinator's threshold re-check must see the merged counters
    exactly as they stood at each quarantined unit's turn.
    """

    #: Journal bodies of completed units, in task order.  A unit that
    #: raised a ``fail_fast`` verdict contributes no body; the chunk
    #: stops at it, exactly where a serial run would have.
    bodies: list[dict[str, Any] | None]
    #: One merged ``(stages, events)`` delta for the chunk, or ``None``
    #: when ``unit_health`` carries per-unit deltas.
    health: tuple | None
    #: Per-unit ``(stages, events)`` deltas, aligned with ``bodies``
    #: plus the error unit (if any); shipped only when a unit in the
    #: chunk quarantined.
    unit_health: list[tuple] | None = None
    #: ``fail_fast`` verdict raised by the unit after the last body.
    error: str | None = None
    #: Per-unit OCR deltas aligned with ``bodies`` (entries ``None``
    #: for units that never entered OCR; the whole field ``None`` when
    #: no unit did).
    ocr: list[dict[str, Any] | None] | None = None
    #: Worker-side wall seconds spent computing the whole chunk.
    elapsed: float = 0.0
    #: Chaos faults injected across the chunk.
    injected: int = 0
    #: One merged :meth:`~repro.obs.MetricsRegistry.dump` delta for
    #: the chunk (``None`` unless the run has ``metrics_enabled``).
    metrics: dict[str, Any] | None = None

    @property
    def units(self) -> int:
        """Units this chunk accounts for (bodies + the error unit)."""
        return len(self.bodies) + (1 if self.error is not None else 0)

    def __getstate__(self) -> tuple:
        return (self.bodies, self.health, self.unit_health, self.error,
                self.ocr, self.elapsed, self.injected, self.metrics)

    def __setstate__(self, state: tuple) -> None:
        (self.bodies, self.health, self.unit_health, self.error,
         self.ocr, self.elapsed, self.injected, self.metrics) = state


#: Pickled ``(config, dictionary_json | None, pool_mode)`` for the
#: current pool, set by the pool initializer (per process, shared
#: across threads).
_WORKER_PAYLOAD: bytes | None = None

#: Per-thread lazily built worker state.  Thread pools need the
#: isolation (the OCR stage carries mutable accounting state); in a
#: process pool each single-threaded worker simply gets one.
_TLS = threading.local()


def _init_worker(payload: bytes) -> None:
    """Pool initializer: stash the run payload for lazy state builds."""
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload
    _TLS.__dict__.pop("state", None)


class _WorkerState:
    """Everything a worker builds once and reuses across its units."""

    def __init__(self, config: "PipelineConfig",
                 dictionary_json: str | None,
                 pool_mode: str = "process") -> None:
        from ..parsing import default_registry
        from .resilience import FailurePolicy
        from .stages import OcrStage

        self.config = config
        #: ``thread`` workers share the coordinator's process-global
        #: token cache (the coordinator's own start/end sampling
        #: already covers them); ``process`` workers own a private
        #: cache, so only they ship token-cache deltas home.
        self.pool_mode = pool_mode
        # ``threshold`` enforcement needs run-global counters, which
        # only the coordinator has: workers capture failures like
        # ``quarantine`` and the coordinator re-checks the threshold
        # on the merged stats.
        mode = config.failure_policy
        self.policy = FailurePolicy(
            mode=("quarantine" if mode == "threshold" else mode),
            max_error_rate=config.max_error_rate,
            max_retries=config.max_retries)
        self.registry = default_registry()
        self.ocr_stage = (OcrStage(config.scanner_profile,
                                   config.correction_enabled,
                                   config.fallback_threshold)
                          if config.ocr_enabled else None)
        self.tagger = None
        if dictionary_json is not None:
            from ..nlp.dictionary import FailureDictionary
            from ..nlp.tagger import VotingTagger

            self.tagger = VotingTagger(
                FailureDictionary.from_json(dictionary_json))

    def guard(self, quarantine, metrics=None):
        """A fresh per-unit guard (so health deltas are per unit)."""
        from .chaos import ChaosInjector
        from .resilience import StageGuard

        chaos = (ChaosInjector(self.config.chaos, self.config.seed)
                 if self.config.chaos is not None else None)
        return StageGuard(policy=self.policy, seed=self.config.seed,
                          quarantine=quarantine, chaos=chaos,
                          metrics=metrics)

    def unit_metrics(self):
        """A fresh per-unit registry (``None`` when metrics are off)."""
        if not self.config.metrics_enabled:
            return None
        from ..obs.metrics import MetricsRegistry

        return MetricsRegistry()


def _worker_state() -> _WorkerState:
    state = getattr(_TLS, "state", None)
    if state is None:
        if _WORKER_PAYLOAD is None:  # pragma: no cover - misuse guard
            raise RuntimeError("worker used outside an initialized pool")
        config, dictionary_json, pool_mode = pickle.loads(
            _WORKER_PAYLOAD)
        state = _WorkerState(config, dictionary_json, pool_mode)
        _TLS.state = state
    return state


def _health_delta(guard) -> tuple:
    """A worker guard's counters as a mergeable, picklable delta.

    A bare ``(stages, events)`` pair rather than a keyed dict: the
    delta rides home once per unit, and dropping the two string keys
    (and their dict) from every pickle is measurable at Stage III
    volumes (see ``benchmarks/bench_parallel.py``).
    """
    return (
        {
            name: (s.attempts, s.errors, s.retries,
                   s.degradations, s.quarantined)
            for name, s in guard.health.stages.items()
            if s.attempts or s.errors or s.retries
        },
        list(guard.health.degradation_events),
    )


def _snapshot_health(guard) -> dict[str, tuple]:
    """All stage counters as plain tuples (for per-unit diffing)."""
    return {
        name: (s.attempts, s.errors, s.retries,
               s.degradations, s.quarantined)
        for name, s in guard.health.stages.items()
    }


def _per_unit_deltas(snaps: list[dict], events: list,
                     events_at: list[int]) -> list[tuple]:
    """Per-unit ``(stages, events)`` deltas from counter snapshots."""
    deltas: list[tuple] = []
    for i in range(len(snaps) - 1):
        before, after = snaps[i], snaps[i + 1]
        stages = {}
        for name, counters in after.items():
            prev = before.get(name)
            if prev is None:
                if any(counters):
                    stages[name] = counters
            elif prev != counters:
                stages[name] = tuple(
                    now - was for now, was in zip(counters, prev))
        deltas.append((stages, events[events_at[i]:events_at[i + 1]]))
    return deltas


def _stage2_batch(tasks: list[tuple[str, Any]]) -> BatchOutcome:
    """Compute one chunk of Stage II documents with shared context.

    One guard / database / metrics registry serves the whole chunk —
    their per-task setup and shipping cost is exactly what chunking
    amortizes — while the per-unit isolation that shapes output is
    preserved: OCR stats are reset per document (one document's
    running mean IS its confidence, which the coordinator's merge
    replay depends on), and health counters are snapshotted per unit
    so a quarantine anywhere in the chunk ships unit-aligned deltas
    for the coordinator's threshold re-check.  A ``fail_fast``
    verdict stops the chunk at the failing unit, exactly where a
    serial run would have stopped.
    """
    from ..errors import PipelineError
    from . import runner
    from .stages import OcrStageStats, PipelineDiagnostics
    from .store import FailureDatabase

    state = _worker_state()
    started = time.perf_counter()
    diagnostics = PipelineDiagnostics()
    database = FailureDatabase()
    metrics = state.unit_metrics()
    guard = state.guard(database.quarantine, metrics=metrics)
    queue = (state.ocr_stage.queue if state.ocr_stage is not None
             else None)
    bodies: list = []
    ocr_deltas: list = []
    any_ocr = False
    any_quarantine = False
    error = None
    events = guard.health.degradation_events
    snaps = [_snapshot_health(guard)]
    events_at = [0]
    for kind, document in tasks:
        diagnostics.ocr = OcrStageStats()
        pages_before = (queue.pages_transcribed
                        if queue is not None else 0)
        lines_before = (queue.lines_transcribed
                        if queue is not None else 0)
        quarantined_before = len(database.quarantine)
        try:
            if kind == "disengagement":
                body = runner._process_disengagement(
                    document, state.config, diagnostics, database,
                    guard, state.ocr_stage, state.registry, [], [],
                    journal=True)
            else:
                body = runner._process_accident(
                    document, state.config, diagnostics, database,
                    guard, state.ocr_stage, journal=True)
        except PipelineError as exc:
            error = str(exc)
            snaps.append(_snapshot_health(guard))
            events_at.append(len(events))
            break
        bodies.append(body)
        snaps.append(_snapshot_health(guard))
        events_at.append(len(events))
        if len(database.quarantine) > quarantined_before:
            any_quarantine = True
        if diagnostics.ocr.documents:
            any_ocr = True
            ocr_deltas.append({
                "pages": diagnostics.ocr.pages,
                "lines": diagnostics.ocr.lines,
                # One document: the running mean IS its confidence.
                "confidence": diagnostics.ocr.mean_confidence,
                "fallback_pages":
                    queue.pages_transcribed - pages_before,
                "fallback_lines":
                    queue.lines_transcribed - lines_before,
            })
        else:
            ocr_deltas.append(None)
    if any_quarantine:
        health, unit_health = None, _per_unit_deltas(
            snaps, list(events), events_at)
    else:
        health, unit_health = _health_delta(guard), None
    return BatchOutcome(
        bodies=bodies, health=health, unit_health=unit_health,
        error=error, ocr=ocr_deltas if any_ocr else None,
        elapsed=time.perf_counter() - started,
        injected=guard.chaos.injected if guard.chaos is not None else 0,
        metrics=metrics.dump() if metrics is not None else None)


def _stage3_batch(tasks: list[tuple[str, str]]) -> BatchOutcome:
    """Tag one chunk of records with shared context.

    The chunk's narratives go through the batch-native
    :meth:`~repro.nlp.tagger.VotingTagger.tag_batch` in one call —
    one tokenization/index pass for the whole chunk — and each
    precomputed result is then adopted under the record's own guarded
    stage run, so retries, chaos injection (decisions are drawn per
    ``(stage, unit)``, independent of the compute), and fallbacks
    fire exactly as they would per unit.  The tag stage always has a
    fallback, so outside ``fail_fast`` a failure degrades rather than
    quarantines — one merged health delta is always sufficient here.
    """
    from ..errors import PipelineError
    from . import runner
    from .resilience import Quarantine

    state = _worker_state()
    started = time.perf_counter()
    metrics = state.unit_metrics()
    guard = state.guard(Quarantine(), metrics=metrics)
    cache_before = None
    if metrics is not None and state.pool_mode == "process":
        # A process worker owns a private token cache; its delta must
        # ride home with the chunk.  Thread workers share the
        # coordinator's cache, which the runner samples globally.
        from ..nlp.textcache import token_cache

        cache_before = token_cache().stats()
    results = state.tagger.tag_batch([text for _, text in tasks])
    bodies: list = []
    error = None
    for (record_id, _), precomputed in zip(tasks, results):
        try:
            result = guard.run("tag", record_id,
                               lambda precomputed=precomputed:
                               precomputed,
                               fallback=runner._unknown_tag)
            bodies.append({"tag": result.tag.value,
                           "category": result.category.value})
        except PipelineError as exc:
            error = str(exc)
            break
    if cache_before is not None:
        from ..nlp.textcache import token_cache
        from ..obs.metrics import TOKEN_CACHE_HITS, TOKEN_CACHE_MISSES

        after = token_cache().stats()
        metrics.counter(
            TOKEN_CACHE_HITS, "Token-memo hits").inc(
            after["hits"] - cache_before["hits"])
        metrics.counter(
            TOKEN_CACHE_MISSES, "Token-memo misses").inc(
            after["misses"] - cache_before["misses"])
    return BatchOutcome(
        bodies=bodies, health=_health_delta(guard), error=error,
        elapsed=time.perf_counter() - started,
        injected=guard.chaos.injected if guard.chaos is not None else 0,
        metrics=metrics.dump() if metrics is not None else None)


def iter_units(batches: Iterator[BatchOutcome],
               on_batch: Callable[[BatchOutcome], None],
               ) -> Iterator[UnitOutcome]:
    """Flatten chunk outcomes back into per-unit outcomes.

    ``on_batch`` fires once per chunk, before its units are yielded —
    the coordinator folds the chunk-level sidecars (merged health,
    metrics, chaos count, batch accounting, journal-buffer flush)
    there, exactly once, at the position in corpus order where the
    chunk's first unit is merged.  Unpacked views carry
    ``health=None`` when the chunk shipped one merged delta, and zero
    ``elapsed``/``injected`` (those ride the chunk).
    """
    for batch in batches:
        on_batch(batch)
        unit_health = batch.unit_health
        ocr = batch.ocr
        for i, body in enumerate(batch.bodies):
            yield UnitOutcome(
                body=body,
                health=None if unit_health is None else unit_health[i],
                ocr=None if ocr is None else ocr[i])
        if batch.error is not None:
            yield UnitOutcome(
                body=None,
                health=(None if unit_health is None
                        else unit_health[len(batch.bodies)]),
                error=batch.error)


# ----------------------------------------------------------------------
# Coordinator-side pool management.
# ----------------------------------------------------------------------

def worker_config(config: "PipelineConfig") -> "PipelineConfig":
    """The slice of the run config a worker needs.

    Crash points, checkpointing, tracing, and nested parallelism are
    coordinator concerns; stripping them keeps the worker payload
    small and makes it impossible for a worker to journal, crash the
    run, write a trace file, or spawn its own pool.
    (``metrics_enabled`` survives: workers collect per-chunk metric
    deltas the coordinator merges.)  ``batch_size`` is stripped too:
    chunking is decided coordinator-side, so the worker payload is
    identical at every batch size.
    """
    return replace(config, crash=None, checkpoint_dir=None,
                   resume=False, workers=0, worker_mode="auto",
                   batch_size=None, trace_enabled=False, trace_dir=None)


class ParallelExecutor:
    """Owns the worker pool(s) for one pipeline run.

    Stage II and Stage III need different worker payloads (the tagging
    pool carries the built failure dictionary), so the pool is rebuilt
    whenever the payload changes; within a stage it is reused across
    ``map`` calls.  ``close`` is idempotent and safe mid-exception —
    the runner calls it from a ``finally`` so a
    :class:`~repro.pipeline.chaos.SimulatedCrash` or a policy abort
    still tears the pool down.
    """

    def __init__(self, config: "PipelineConfig",
                 stats: ParallelStats) -> None:
        self.workers, self.mode = config.resolved_parallelism()
        if self.mode == "serial":  # pragma: no cover - misuse guard
            raise ValueError("ParallelExecutor needs workers >= 1")
        self._config = worker_config(config)
        self._batch_size = config.batch_size
        self.stats = stats
        stats.workers = self.workers
        stats.mode = self.mode
        self._pool: Executor | None = None
        self._payload: bytes | None = None

    def _ensure_pool(self, dictionary_json: str | None) -> Executor:
        payload = pickle.dumps(
            (self._config, dictionary_json, self.mode))
        if self._pool is not None and payload == self._payload:
            return self._pool
        self.close()
        self._payload = payload
        if self.mode == "thread":
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-worker",
                initializer=_init_worker, initargs=(payload,))
        else:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker, initargs=(payload,))
        return self._pool

    def _chunk(self, tasks: list, stage: str) -> list[list]:
        """Split a stage's pending units into dispatch chunks.

        Records the resolved batch size on the run stats (so reports
        and benchmarks can attribute speedups to it) and warns — once
        per stage, without failing — when an explicit ``batch_size``
        exceeds the unit count, because the whole stage then rides in
        a single task and the pool cannot balance at all.
        """
        size = resolve_batch_size(self._batch_size, len(tasks),
                                  self.workers)
        self.stats.batch_size[stage] = size
        if (self._batch_size is not None and tasks
                and self._batch_size > len(tasks)):
            warnings.warn(
                f"batch_size {self._batch_size} exceeds the "
                f"{len(tasks)} dispatched unit(s) of stage {stage!r}; "
                "the whole stage rides in one task", stacklevel=4)
        return [tasks[i:i + size] for i in range(0, len(tasks), size)]

    def map_documents(self, tasks: list[tuple[str, Any]], stage: str,
                      ) -> Iterator[BatchOutcome]:
        """Fan Stage II documents out in chunks; yields chunk outcomes
        in submission order (documents are coarse units, so ``auto``
        resolves to small chunks that keep the pool load-balanced).
        """
        return self._ensure_pool(None).map(
            _stage2_batch, self._chunk(tasks, stage), chunksize=1)

    def map_tags(self, dictionary_json: str,
                 tasks: list[tuple[str, str]],
                 ) -> Iterator[BatchOutcome]:
        """Fan Stage III tagging out in chunks; yields chunk outcomes
        in submission order.  Records are tiny uniform units — the
        chunk is also the tagger's batch, so per-task overhead *and*
        per-record tagging overhead amortize together.
        """
        return self._ensure_pool(dictionary_json).map(
            _stage3_batch, self._chunk(tasks, "tag"), chunksize=1)

    def close(self) -> None:
        """Tear the pool down, dropping queued (not yet running) work.

        ``cancel_futures`` bounds the teardown after an abort
        (``fail_fast``, threshold, :class:`SimulatedCrash`); waiting
        for the in-flight units keeps interpreter shutdown clean.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
