"""Pipeline configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..ocr.fallback import DEFAULT_CONFIDENCE_THRESHOLD
from ..ocr.scanner import ScannerProfile
from ..rng import DEFAULT_SEED
from .chaos import ChaosConfig, CrashPoint
from .parallel import PROCESS_POOL_MIN_WORKERS, WORKER_MODES
from .resilience import POLICY_MODES, FailurePolicy

#: Database layouts a run may select.  Names only — the columnar
#: implementation lives in :mod:`repro.storage` and is imported
#: lazily by its consumers (a config import must stay dependency-free).
STORAGE_BACKENDS = ("dict", "columnar")


@dataclass
class PipelineConfig:
    """Knobs for one end-to-end pipeline run.

    The defaults reproduce the paper's setup; the switches exist for
    the ablation benches (OCR channel off, correction off, seed-only
    dictionary, generic parser).
    """

    #: Seed for corpus synthesis and the OCR channel.
    seed: int = DEFAULT_SEED
    #: Restrict to a subset of manufacturers (None = all of Table I).
    manufacturers: list[str] | None = None
    #: Scan-quality regime.
    scanner_profile: ScannerProfile = field(default_factory=ScannerProfile)
    #: Disable the OCR noise channel entirely (documents pass through
    #: clean) — ablation only.
    ocr_enabled: bool = True
    #: Disable the post-OCR correction pass — ablation only.
    correction_enabled: bool = True
    #: Mean page confidence below which a page is manually transcribed.
    fallback_threshold: float = DEFAULT_CONFIDENCE_THRESHOLD
    #: "expanded" builds the failure dictionary from the corpus (the
    #: paper's multi-pass construction); "seed" uses only the
    #: hand-curated seeds.
    dictionary_mode: str = "expanded"
    #: Drop planned-test disengagements instead of annotating them.
    drop_planned: bool = False
    #: Attach ground-truth tags to parsed records for evaluation.
    attach_truth: bool = True
    #: How the run reacts to unexpected per-unit failures
    #: (``fail_fast`` / ``quarantine`` / ``threshold``).
    failure_policy: str = "quarantine"
    #: ``threshold`` mode: abort once a stage's error rate exceeds
    #: this fraction.
    max_error_rate: float = 0.1
    #: Bounded retries for transient stage faults.
    max_retries: int = 2
    #: Optional pipeline-level fault injection (testing/chaos runs).
    chaos: ChaosConfig | None = None
    #: Checkpoint directory for crash-safe incremental progress
    #: (None disables checkpointing entirely).
    checkpoint_dir: str | Path | None = None
    #: Resume from ``checkpoint_dir``: restore completed units and
    #: stage artifacts instead of recomputing them.
    resume: bool = False
    #: Master switch: ``False`` ignores ``checkpoint_dir`` without
    #: having to clear it (the CLI's ``--no-checkpoint``).
    checkpoint_enabled: bool = True
    #: Optional kill-point injection: die hard at a named pipeline
    #: boundary (crash-recovery testing only).
    crash: CrashPoint | None = None
    #: Fan Stage II-III out across this many workers (0 = serial, the
    #: historical behavior; any count produces byte-identical output).
    workers: int = 0
    #: Executor selection: ``auto`` picks a process pool from
    #: :data:`~repro.pipeline.parallel.PROCESS_POOL_MIN_WORKERS`
    #: workers up and the threaded fallback below it; ``thread`` /
    #: ``process`` force one kind.
    worker_mode: str = "auto"
    #: Units per dispatched chunk in the parallel fan-out.  ``None``
    #: resolves per stage to ``ceil(n_units / (workers * 4))``,
    #: clamped (see :func:`~repro.pipeline.parallel.resolve_batch_size`);
    #: output is byte-identical at any size.  Like ``workers``, it
    #: picks an execution strategy, never an output, so it is excluded
    #: from the checkpoint config fingerprint — a run journaled
    #: unbatched resumes under batching and vice versa.
    batch_size: int | None = None
    #: Record hierarchical spans (run → stage → unit) for this run.
    #: Off by default; tracing never alters pipeline output bytes.
    trace_enabled: bool = False
    #: Where the JSONL trace is published (``trace.jsonl`` inside).
    #: Setting a directory implies tracing, mirroring
    #: ``checkpoint_dir``; ``trace_enabled`` alone writes under the
    #: working directory.
    trace_dir: str | Path | None = None
    #: Collect run metrics (stage durations, unit/retry/quarantine
    #: counters, cache hit rates) into the process-global
    #: :func:`repro.obs.default_registry`.  Off by default.
    metrics_enabled: bool = False
    #: In-memory layout of the consolidated database: ``"dict"`` (the
    #: historical record-object lists) or ``"columnar"``
    #: (struct-of-arrays tables from :mod:`repro.storage`).  Purely a
    #: representation choice — both backends produce byte-identical
    #: JSON, fingerprints, and analysis results — so, like
    #: ``workers``, it is excluded from the checkpoint config
    #: fingerprint.
    storage_backend: str = "dict"

    def __post_init__(self) -> None:
        if self.dictionary_mode not in ("seed", "expanded"):
            raise ValueError(
                f"dictionary_mode must be 'seed' or 'expanded', got "
                f"{self.dictionary_mode!r}")
        if self.failure_policy not in POLICY_MODES:
            raise ValueError(
                f"failure_policy must be one of {POLICY_MODES}, got "
                f"{self.failure_policy!r}")
        if not 0.0 <= self.max_error_rate <= 1.0:
            raise ValueError(
                f"max_error_rate {self.max_error_rate} outside [0, 1]")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if not 0.0 <= self.fallback_threshold <= 1.0:
            raise ValueError(
                f"fallback_threshold {self.fallback_threshold} "
                "outside [0, 1]")
        if self.resume and self.checkpoint_dir is None:
            raise ValueError(
                "resume=True requires a checkpoint_dir to resume from")
        if self.workers < 0:
            raise ValueError(
                f"workers must be >= 0, got {self.workers}")
        if self.worker_mode not in WORKER_MODES:
            raise ValueError(
                f"worker_mode must be one of {WORKER_MODES}, got "
                f"{self.worker_mode!r}")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}")
        if self.storage_backend not in STORAGE_BACKENDS:
            raise ValueError(
                f"storage_backend must be one of {STORAGE_BACKENDS}, "
                f"got {self.storage_backend!r}")

    @property
    def checkpointing_active(self) -> bool:
        """Whether this run journals (and may restore) checkpoints."""
        return self.checkpoint_dir is not None and self.checkpoint_enabled

    @property
    def tracing_active(self) -> bool:
        """Whether this run records spans (flag or directory set).

        Like ``workers``, the observability knobs are excluded from
        the checkpoint config fingerprint: they observe the run, they
        never shape a unit's output, so a traced run may resume an
        untraced checkpoint (and vice versa).
        """
        return self.trace_enabled or self.trace_dir is not None

    @property
    def trace_path(self) -> Path | None:
        """The JSONL trace file this run writes (None when inactive)."""
        if not self.tracing_active:
            return None
        return Path(self.trace_dir or ".") / "trace.jsonl"

    def resolved_parallelism(self) -> tuple[int, str]:
        """``(worker count, executor mode)`` for this run.

        ``workers=0`` resolves to ``(0, "serial")`` — the historical
        single-process path, untouched.  Worker count and mode are
        deliberately excluded from the checkpoint
        :func:`~repro.pipeline.checkpoint.config_fingerprint`: they
        choose an execution strategy, never an output, so a run
        crashed under 4 workers may resume serially (or vice versa)
        and still reproduce the uninterrupted database byte for byte.
        """
        if self.workers <= 0:
            return 0, "serial"
        if self.worker_mode == "auto":
            return self.workers, (
                "process" if self.workers >= PROCESS_POOL_MIN_WORKERS
                else "thread")
        return self.workers, self.worker_mode

    def resolved_policy(self) -> FailurePolicy:
        """The :class:`FailurePolicy` these knobs describe."""
        return FailurePolicy(
            mode=self.failure_policy,
            max_error_rate=self.max_error_rate,
            max_retries=self.max_retries)
