"""Pipeline configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..ocr.fallback import DEFAULT_CONFIDENCE_THRESHOLD
from ..ocr.scanner import ScannerProfile
from ..rng import DEFAULT_SEED
from .chaos import ChaosConfig, CrashPoint
from .resilience import POLICY_MODES, FailurePolicy


@dataclass
class PipelineConfig:
    """Knobs for one end-to-end pipeline run.

    The defaults reproduce the paper's setup; the switches exist for
    the ablation benches (OCR channel off, correction off, seed-only
    dictionary, generic parser).
    """

    #: Seed for corpus synthesis and the OCR channel.
    seed: int = DEFAULT_SEED
    #: Restrict to a subset of manufacturers (None = all of Table I).
    manufacturers: list[str] | None = None
    #: Scan-quality regime.
    scanner_profile: ScannerProfile = field(default_factory=ScannerProfile)
    #: Disable the OCR noise channel entirely (documents pass through
    #: clean) — ablation only.
    ocr_enabled: bool = True
    #: Disable the post-OCR correction pass — ablation only.
    correction_enabled: bool = True
    #: Mean page confidence below which a page is manually transcribed.
    fallback_threshold: float = DEFAULT_CONFIDENCE_THRESHOLD
    #: "expanded" builds the failure dictionary from the corpus (the
    #: paper's multi-pass construction); "seed" uses only the
    #: hand-curated seeds.
    dictionary_mode: str = "expanded"
    #: Drop planned-test disengagements instead of annotating them.
    drop_planned: bool = False
    #: Attach ground-truth tags to parsed records for evaluation.
    attach_truth: bool = True
    #: How the run reacts to unexpected per-unit failures
    #: (``fail_fast`` / ``quarantine`` / ``threshold``).
    failure_policy: str = "quarantine"
    #: ``threshold`` mode: abort once a stage's error rate exceeds
    #: this fraction.
    max_error_rate: float = 0.1
    #: Bounded retries for transient stage faults.
    max_retries: int = 2
    #: Optional pipeline-level fault injection (testing/chaos runs).
    chaos: ChaosConfig | None = None
    #: Checkpoint directory for crash-safe incremental progress
    #: (None disables checkpointing entirely).
    checkpoint_dir: str | Path | None = None
    #: Resume from ``checkpoint_dir``: restore completed units and
    #: stage artifacts instead of recomputing them.
    resume: bool = False
    #: Master switch: ``False`` ignores ``checkpoint_dir`` without
    #: having to clear it (the CLI's ``--no-checkpoint``).
    checkpoint_enabled: bool = True
    #: Optional kill-point injection: die hard at a named pipeline
    #: boundary (crash-recovery testing only).
    crash: CrashPoint | None = None

    def __post_init__(self) -> None:
        if self.dictionary_mode not in ("seed", "expanded"):
            raise ValueError(
                f"dictionary_mode must be 'seed' or 'expanded', got "
                f"{self.dictionary_mode!r}")
        if self.failure_policy not in POLICY_MODES:
            raise ValueError(
                f"failure_policy must be one of {POLICY_MODES}, got "
                f"{self.failure_policy!r}")
        if not 0.0 <= self.max_error_rate <= 1.0:
            raise ValueError(
                f"max_error_rate {self.max_error_rate} outside [0, 1]")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if not 0.0 <= self.fallback_threshold <= 1.0:
            raise ValueError(
                f"fallback_threshold {self.fallback_threshold} "
                "outside [0, 1]")
        if self.resume and self.checkpoint_dir is None:
            raise ValueError(
                "resume=True requires a checkpoint_dir to resume from")

    @property
    def checkpointing_active(self) -> bool:
        """Whether this run journals (and may restore) checkpoints."""
        return self.checkpoint_dir is not None and self.checkpoint_enabled

    def resolved_policy(self) -> FailurePolicy:
        """The :class:`FailurePolicy` these knobs describe."""
        return FailurePolicy(
            mode=self.failure_policy,
            max_error_rate=self.max_error_rate,
            max_retries=self.max_retries)
