"""Fault-tolerant execution for the Stage II-IV pipeline.

The paper's conclusion calls for assessing AV stacks "under fault
conditions via stochastic modeling and fault injection"; this module
gives the reproduction pipeline the same failure-isolation discipline
the paper studies in vehicles.  Every per-document and per-record step
runs through a :class:`StageGuard`, which applies a
:class:`FailurePolicy`:

* ``fail_fast``   — any unexpected stage exception aborts the run as a
  :class:`~repro.errors.PipelineError` (the pre-resilience behaviour,
  made explicit).
* ``quarantine``  — the failing unit of work is captured in a
  :class:`Quarantine` dead-letter store and the run continues.
* ``threshold``   — like ``quarantine``, but the run aborts once a
  stage's observed error rate exceeds ``max_error_rate`` (after
  ``min_samples`` attempts, so one early failure cannot trip it).

Transient faults (:class:`~repro.errors.TransientError`) are retried
with :func:`retry_with_backoff` before the policy is consulted; steps
that declare a fallback degrade instead of being quarantined (e.g. a
tagger crash degrades the record to the UNKNOWN tag).  On a clean run
none of this draws randomness or perturbs any seeded stream, so the
resilient pipeline is byte-identical to the unguarded one.
"""

from __future__ import annotations

import time
import traceback
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import Any, TypeVar

from ..errors import (
    PipelineError,
    QuarantinedError,
    TransientError,
)
from ..rng import child_generator

T = TypeVar("T")

#: Recognized failure-policy modes.
POLICY_MODES = ("fail_fast", "quarantine", "threshold")

#: Quarantine entries keep at most this many characters of traceback.
TRACEBACK_LIMIT = 2000


@dataclass(frozen=True)
class FailurePolicy:
    """How the pipeline reacts to unexpected per-unit failures."""

    #: One of :data:`POLICY_MODES`.
    mode: str = "quarantine"
    #: ``threshold`` mode: abort when a stage's error rate (errors /
    #: attempts) exceeds this fraction.
    max_error_rate: float = 0.1
    #: ``threshold`` mode: attempts a stage must accumulate before the
    #: rate is enforced.
    min_samples: int = 20
    #: Bounded retries for :class:`~repro.errors.TransientError`.
    max_retries: int = 2
    #: Base backoff delay in seconds (0 keeps the pipeline fast; the
    #: exponential schedule and jitter scale from it).
    retry_base_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in POLICY_MODES:
            raise ValueError(
                f"failure policy mode must be one of {POLICY_MODES}, "
                f"got {self.mode!r}")
        if not 0.0 <= self.max_error_rate <= 1.0:
            raise ValueError(
                f"max_error_rate {self.max_error_rate} outside [0, 1]")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")


# ----------------------------------------------------------------------
# Dead-letter store.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class QuarantineEntry:
    """One failed unit of work, captured instead of lost."""

    unit_id: str
    stage: str
    error_type: str
    message: str
    traceback: str

    def to_dict(self) -> dict[str, str]:
        """JSON-friendly form (inverse of :meth:`from_dict`)."""
        return {
            "unit_id": self.unit_id,
            "stage": self.stage,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
        }

    @classmethod
    def from_dict(cls, data: dict[str, str]) -> "QuarantineEntry":
        """Rebuild an entry from its :meth:`to_dict` form."""
        return cls(
            unit_id=data["unit_id"],
            stage=data["stage"],
            error_type=data["error_type"],
            message=data["message"],
            traceback=data["traceback"],
        )

    @classmethod
    def from_exception(cls, unit_id: str, stage: str,
                       exc: BaseException) -> "QuarantineEntry":
        """Capture a live exception (with truncated traceback)."""
        tb = "".join(traceback.format_exception(
            type(exc), exc, exc.__traceback__))
        return cls(
            unit_id=unit_id, stage=stage,
            error_type=type(exc).__name__, message=str(exc),
            traceback=tb[-TRACEBACK_LIMIT:])


@dataclass
class Quarantine:
    """Dead-letter store for units of work the pipeline gave up on."""

    entries: list[QuarantineEntry] = field(default_factory=list)

    def add(self, entry: QuarantineEntry) -> None:
        """Append one dead-lettered unit of work."""
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __iter__(self) -> Iterable[QuarantineEntry]:
        return iter(self.entries)

    def by_stage(self) -> dict[str, int]:
        """Stage -> number of quarantined units."""
        counts: dict[str, int] = {}
        for entry in self.entries:
            counts[entry.stage] = counts.get(entry.stage, 0) + 1
        return dict(sorted(counts.items()))

    def unit_ids(self, stage: str | None = None) -> list[str]:
        """Ids of quarantined units, optionally for one stage."""
        return [e.unit_id for e in self.entries
                if stage is None or e.stage == stage]


# ----------------------------------------------------------------------
# Run health.
# ----------------------------------------------------------------------

@dataclass
class StageHealth:
    """Per-stage resilience counters."""

    attempts: int = 0
    errors: int = 0
    retries: int = 0
    degradations: int = 0
    quarantined: int = 0

    @property
    def error_rate(self) -> float:
        """Fraction of attempts that ultimately failed."""
        if self.attempts == 0:
            return 0.0
        return self.errors / self.attempts


@dataclass
class CheckpointHealth:
    """What the durability layer observed about one run.

    Populated by :class:`~repro.pipeline.checkpoint.CheckpointStore`
    and the runner's restore path; surfaced through
    :class:`RunHealth` and the CLI ``health:`` section.
    """

    #: Whether checkpointing was active for the run.
    enabled: bool = False
    #: Whether the run was started with resume requested.
    resumed: bool = False
    #: Units restored from the checkpoint instead of recomputed.
    restored_units: int = 0
    #: Units computed live (fresh, missing, or failed integrity).
    recomputed_units: int = 0
    #: Stage-level artifacts restored from the checkpoint.
    artifacts_restored: int = 0
    #: Journal lines / artifacts dropped for failing their checksum.
    corrupt_entries: int = 0
    #: The checkpoint directory was discarded as unusable on resume.
    stale: bool = False
    #: Why the directory was discarded (config change, version, ...).
    stale_reason: str | None = None
    #: Human-readable durability events (staleness, corruption).
    notes: list[str] = field(default_factory=list)

    def summary(self) -> dict[str, Any]:
        """JSON-friendly digest (mirrors :meth:`RunHealth.summary`)."""
        return {
            "enabled": self.enabled,
            "resumed": self.resumed,
            "restored_units": self.restored_units,
            "recomputed_units": self.recomputed_units,
            "artifacts_restored": self.artifacts_restored,
            "corrupt_entries": self.corrupt_entries,
            "stale": self.stale,
            "stale_reason": self.stale_reason,
            "notes": list(self.notes),
        }


@dataclass
class RunHealth:
    """Everything the resilience layer observed about one run."""

    stages: dict[str, StageHealth] = field(default_factory=dict)
    #: Human-readable descriptions of degraded-mode fallbacks.
    degradation_events: list[str] = field(default_factory=list)
    #: What the crash-safe checkpoint layer observed (disabled unless
    #: the run was given a checkpoint directory).
    checkpoint: CheckpointHealth = field(
        default_factory=CheckpointHealth)

    def stage(self, name: str) -> StageHealth:
        """The (auto-created) counters for one stage."""
        if name not in self.stages:
            self.stages[name] = StageHealth()
        return self.stages[name]

    @property
    def total_errors(self) -> int:
        return sum(s.errors for s in self.stages.values())

    @property
    def total_retries(self) -> int:
        return sum(s.retries for s in self.stages.values())

    @property
    def total_degradations(self) -> int:
        return sum(s.degradations for s in self.stages.values())

    @property
    def total_quarantined(self) -> int:
        return sum(s.quarantined for s in self.stages.values())

    @property
    def clean(self) -> bool:
        """Whether the run saw no errors and no degradations."""
        return self.total_errors == 0 and self.total_degradations == 0

    def summary(self) -> dict[str, Any]:
        """A JSON-friendly digest (used by the CLI health section)."""
        return {
            "clean": self.clean,
            "errors": self.total_errors,
            "retries": self.total_retries,
            "degradations": self.total_degradations,
            "quarantined": self.total_quarantined,
            "stages": {
                name: {
                    "attempts": s.attempts,
                    "errors": s.errors,
                    "retries": s.retries,
                    "degradations": s.degradations,
                    "quarantined": s.quarantined,
                    "error_rate": s.error_rate,
                }
                for name, s in sorted(self.stages.items())
            },
            "degradation_events": list(self.degradation_events),
            "checkpoint": self.checkpoint.summary(),
        }


# ----------------------------------------------------------------------
# Bounded retry.
# ----------------------------------------------------------------------

def retry_with_backoff(func: Callable[[], T], *,
                       retries: int,
                       seed: int,
                       stream: str,
                       base_delay: float = 0.0,
                       retry_on: tuple[type[BaseException], ...] = (
                           TransientError,),
                       sleep: Callable[[float], None] = time.sleep,
                       on_retry: Callable[[int, BaseException],
                                          None] | None = None) -> T:
    """Call ``func`` with up to ``retries`` retries on transient faults.

    The backoff schedule is exponential with deterministic jitter: the
    jitter generator is derived from ``(seed, stream)`` via
    :mod:`repro.rng`, and is only instantiated after the first failure,
    so a clean call consumes no randomness at all.  Non-``retry_on``
    exceptions propagate immediately.
    """
    rng = None
    attempt = 0
    while True:
        try:
            return func()
        except retry_on as exc:
            if attempt >= retries:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            if rng is None:
                rng = child_generator(seed, f"retry:{stream}")
            if base_delay > 0.0:
                delay = base_delay * (2 ** attempt)
                delay *= 1.0 + rng.random()  # full jitter in [1, 2)
                sleep(delay)
            else:
                rng.random()  # keep the stream position deterministic
            attempt += 1


# ----------------------------------------------------------------------
# The guard.
# ----------------------------------------------------------------------

class StageGuard:
    """Runs per-unit work under a :class:`FailurePolicy`.

    One guard instance spans a pipeline run; it owns the
    :class:`RunHealth` counters and the :class:`Quarantine` store that
    the runner surfaces through diagnostics and the database.
    """

    def __init__(self, policy: FailurePolicy | None = None,
                 seed: int = 0,
                 health: RunHealth | None = None,
                 quarantine: Quarantine | None = None,
                 chaos: "Any | None" = None,
                 metrics: "Any | None" = None) -> None:
        self.policy = policy or FailurePolicy()
        self.seed = seed
        self.health = health if health is not None else RunHealth()
        self.quarantine = (quarantine if quarantine is not None
                           else Quarantine())
        #: Optional :class:`repro.pipeline.chaos.ChaosInjector`.
        self.chaos = chaos
        #: Optional :class:`repro.obs.MetricsRegistry`.  ``None`` (the
        #: default) keeps the failure paths metric-free; counters are
        #: pre-registered here so the failure handlers only pay a
        #: label lookup, and only when something actually fails.
        self.metrics = metrics
        self._retries_c = self._errors_c = None
        self._degradations_c = self._quarantined_c = None
        if metrics is not None:
            from ..obs.metrics import (
                DEGRADATIONS_TOTAL,
                QUARANTINED_TOTAL,
                RETRIES_TOTAL,
                STAGE_ERRORS_TOTAL,
            )

            self._retries_c = metrics.counter(
                RETRIES_TOTAL, "Transient faults retried", ("stage",))
            self._errors_c = metrics.counter(
                STAGE_ERRORS_TOTAL,
                "Unexpected per-unit stage failures", ("stage",))
            self._degradations_c = metrics.counter(
                DEGRADATIONS_TOTAL,
                "Degraded-mode fallbacks taken", ("stage",))
            self._quarantined_c = metrics.counter(
                QUARANTINED_TOTAL,
                "Units dead-lettered to quarantine", ("stage",))

    def run(self, stage: str, unit_id: str, func: Callable[[], T], *,
            fallback: Callable[[], T] | None = None,
            expected: tuple[type[BaseException], ...] = ()) -> T:
        """Execute one unit of work under the failure policy.

        ``expected`` exceptions are domain outcomes (e.g.
        :class:`~repro.errors.ParseError` for an unparseable report):
        they propagate unchanged and are not counted as resilience
        failures.  Everything else is retried if transient, then
        degraded via ``fallback`` if one is given, then handled per the
        policy mode — ``quarantine``/``threshold`` raise
        :class:`~repro.errors.QuarantinedError` for the caller to skip
        the unit, ``fail_fast`` raises
        :class:`~repro.errors.PipelineError`.
        """
        stats = self.health.stage(stage)
        stats.attempts += 1
        if self.chaos is not None:
            func = self.chaos.wrap(stage, unit_id, func)
        try:
            return retry_with_backoff(
                func,
                retries=self.policy.max_retries,
                seed=self.seed,
                stream=f"{stage}:{unit_id}",
                base_delay=self.policy.retry_base_delay,
                on_retry=lambda attempt, exc: self._count_retry(
                    stats, stage))
        except expected:
            stats.attempts -= 1  # domain outcome, not a failure
            raise
        except Exception as exc:  # noqa: BLE001 - the whole point
            return self._handle_failure(stage, unit_id, exc, stats,
                                        fallback)

    def _count_retry(self, stats: StageHealth,
                     stage: str | None = None) -> None:
        stats.retries += 1
        if self._retries_c is not None and stage is not None:
            self._retries_c.labels(stage).inc()

    def _handle_failure(self, stage: str, unit_id: str,
                        exc: Exception, stats: StageHealth,
                        fallback: Callable[[], T] | None) -> T:
        stats.errors += 1
        if self._errors_c is not None:
            self._errors_c.labels(stage).inc()
        if fallback is not None and self.policy.mode != "fail_fast":
            stats.degradations += 1
            if self._degradations_c is not None:
                self._degradations_c.labels(stage).inc()
            self.health.degradation_events.append(
                f"{stage}: {unit_id} degraded after "
                f"{type(exc).__name__}: {exc}")
            return fallback()
        if self.policy.mode == "fail_fast":
            raise PipelineError(
                f"stage {stage!r} failed on {unit_id!r} under "
                f"fail_fast policy: {exc}") from exc
        stats.quarantined += 1
        if self._quarantined_c is not None:
            self._quarantined_c.labels(stage).inc()
        self.quarantine.add(
            QuarantineEntry.from_exception(unit_id, stage, exc))
        if self.policy.mode == "threshold":
            self._enforce_threshold(stage, stats)
        raise QuarantinedError(
            f"stage {stage!r} quarantined {unit_id!r}: "
            f"{type(exc).__name__}: {exc}",
            unit_id=unit_id, stage=stage) from exc

    def check_threshold(self, stage: str) -> None:
        """Enforce the ``threshold`` policy on ``stage``'s counters.

        The serial path enforces the threshold inside
        :meth:`run` as each failure lands; the parallel coordinator
        calls this after merging a worker's health delta so the merged
        (run-global) counters — not any worker's local view — decide
        when the run aborts, at the same unit a serial run would.
        A non-``threshold`` policy makes this a no-op.
        """
        if self.policy.mode == "threshold":
            self._enforce_threshold(stage, self.health.stage(stage))

    def _enforce_threshold(self, stage: str,
                           stats: StageHealth) -> None:
        if stats.attempts < self.policy.min_samples:
            return
        if stats.error_rate > self.policy.max_error_rate:
            raise PipelineError(
                f"stage {stage!r} error rate "
                f"{stats.error_rate:.1%} exceeds the "
                f"{self.policy.max_error_rate:.1%} threshold after "
                f"{stats.attempts} attempts "
                f"({stats.errors} errors)")
