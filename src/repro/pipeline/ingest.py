"""Incremental ingestion: process only what changed, prove parity.

The CA DMV corpus is a living stream — a new report drop adds (or
amends) a handful of documents among thousands of already-processed
ones.  A full rebuild re-runs the expensive per-document Stage II
work (OCR channel, parsing) on every document; this module re-runs it
**only on the delta** and still produces a database *byte-identical*
to a full from-scratch rebuild of the combined corpus.

How: checkpoint-journal surgery plus an ordinary resume run.

1. Detect the delta.  Each raw document's content digest (lines +
   ground truth, see :func:`document_digest`) is remembered in an
   ``ingest.json`` state file inside the checkpoint directory.  A
   document whose digest changed — or that has no journal entry — is
   *stale*; everything else is *reusable*.
2. Surgery.  Stale (and removed) documents' entries are dropped from
   the ``documents``/``accidents`` journals; the corpus-dependent
   stage artifacts (``normalized``, ``dictionary``) are always
   deleted — they are functions of the whole corpus, never of one
   document.  The ``tags`` journal is reusable only under
   ``dictionary_mode="seed"`` (the seed dictionary is corpus
   independent); under ``"expanded"`` it is deleted wholesale, since
   a grown corpus can shift the dictionary and with it any tag.
3. Resume.  :func:`~repro.pipeline.runner.process_corpus` runs over
   the **combined** corpus with ``resume=True``: reusable units are
   restored from their journal entries, stale/new units are computed
   live, and the corpus-wide stages (normalize, filter, dictionary,
   tags under ``expanded``) recompute over everything.

Why that is byte-identical to a full rebuild: every per-document
Stage II outcome is a deterministic function of (document content,
config, seed) — the OCR channel draws from
``child_generator(seed, f"ocr:{document_id}")``, chaos injection is
keyed by ``(stage, unit_id)`` — so a restored journal entry is
exactly what recomputing the unchanged document would have produced.
Anything that is *not* such a function is never reused.  The config
fingerprint in the checkpoint manifest enforces the "same config,
same seed" half: a mismatch makes
:class:`~repro.pipeline.checkpoint.CheckpointStore` discard the
directory and the ingest degrades to a full rebuild, correct by
construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from ..synth.dataset import SyntheticCorpus
from ..synth.reports import RawDocument
from .checkpoint import (
    CheckpointStore,
    atomic_write_text,
    canonical_json,
    config_fingerprint,
    journal_line,
    read_journal,
    sha256_text,
)
from .config import PipelineConfig
from .runner import PipelineResult, process_corpus

#: Name of the ingest state file inside the checkpoint directory.
INGEST_STATE = "ingest.json"

#: Format version of the state file (mismatch = ignore, full delta).
INGEST_FORMAT = 1


def _plain(value: Any) -> Any:
    """Strip numpy scalar types out of a truth-record payload.

    Ground-truth records carry values straight from the synthesizer's
    numpy draws (``numpy.float64`` reaction times, ...), which the
    canonical JSON encoder rejects; the digest must also be identical
    whether a value arrived as a numpy scalar or a Python number.
    """
    if isinstance(value, dict):
        return {key: _plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):   # covers numpy.float64 (a subclass)
        return float(value)
    if isinstance(value, int):
        return int(value)
    item = getattr(value, "item", None)   # other numpy scalars
    if callable(item) and getattr(value, "shape", None) == ():
        return value.item()
    return value


def document_digest(document: RawDocument) -> str:
    """Content digest of one raw document, for change detection.

    Covers everything a journal body can depend on: the rendered
    lines (what OCR/parsing consume) **and** the ground-truth records
    — ``attach_truth`` copies truth tags into parsed records, so a
    truth-only change must invalidate the document's journal entry
    even though its lines are identical.
    """
    payload = {
        "kind": document.kind,
        "manufacturer": document.manufacturer,
        "lines": document.lines,
        "truth_disengagements": [
            r.to_dict() for r in document.truth_disengagements],
        "truth_mileage": [m.to_dict() for m in document.truth_mileage],
        "truth_accidents": [
            r.to_dict() for r in document.truth_accidents],
    }
    return sha256_text(canonical_json(_plain(payload)))


@dataclass
class IngestReport:
    """What one incremental ingest did (JSON-able)."""

    total_documents: int = 0
    #: Documents with no prior journal entry.
    new_documents: int = 0
    #: Documents whose content digest changed since last ingest.
    changed_documents: int = 0
    #: Journal entries dropped for documents no longer in the corpus.
    removed_documents: int = 0
    #: Documents whose Stage II journal entries were reused.
    reused_documents: int = 0
    #: Whether the checkpoint directory could not be reused at all.
    full_rebuild: bool = False
    #: Why a full rebuild happened (``None`` when incremental).
    reason: str | None = None
    #: Whether the tags journal was reusable (seed dictionary only).
    tags_reused: bool = False
    elapsed_s: float = 0.0
    notes: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (the CLI ``--json`` ingest section)."""
        return {
            "total_documents": self.total_documents,
            "new_documents": self.new_documents,
            "changed_documents": self.changed_documents,
            "removed_documents": self.removed_documents,
            "reused_documents": self.reused_documents,
            "full_rebuild": self.full_rebuild,
            "reason": self.reason,
            "tags_reused": self.tags_reused,
            "elapsed_s": self.elapsed_s,
            "notes": list(self.notes),
        }


@dataclass
class IngestResult:
    """An incremental run's pipeline result plus the ingest report."""

    result: PipelineResult
    report: IngestReport

    @property
    def database(self):
        """The (parity-guaranteed) combined database."""
        return self.result.database


def ingest_corpus(corpus: SyntheticCorpus,
                  config: PipelineConfig) -> IngestResult:
    """Incrementally process ``corpus`` against its checkpoint dir.

    ``corpus`` is the **combined** corpus (everything that should be
    in the database, not just the delta — the delta is detected, not
    declared).  ``config`` must name a ``checkpoint_dir``; the same
    directory carries state from ingest to ingest.  The returned
    database is byte-identical to
    ``process_corpus(corpus, config)`` from scratch.
    """
    if not config.checkpointing_active:
        raise ValueError(
            "ingest requires a checkpoint_dir (and checkpointing "
            "enabled): the checkpoint journals are what make "
            "incremental processing possible")
    started = time.perf_counter()
    report = IngestReport(total_documents=len(corpus.documents))
    directory = Path(config.checkpoint_dir)
    fingerprint = config_fingerprint(config)

    digests = {document.document_id: document_digest(document)
               for document in corpus.documents}
    reason = _reuse_problem(directory, fingerprint)
    if reason is None:
        _surgery(directory, config, corpus, digests, report)
    else:
        report.full_rebuild = True
        report.reason = reason
        report.new_documents = report.total_documents

    # The resume run restores every surviving journal entry and
    # computes the rest; on a full rebuild the store resets itself
    # (manifest mismatch) and this is an ordinary from-scratch run.
    result = process_corpus(corpus, replace(config, resume=True))

    _write_state(directory, fingerprint, digests,
                 durable=_durable(config))
    report.elapsed_s = time.perf_counter() - started
    return IngestResult(result=result, report=report)


# ----------------------------------------------------------------------
# Delta detection + journal surgery.
# ----------------------------------------------------------------------


def _reuse_problem(directory: Path, fingerprint: str) -> str | None:
    """Why the checkpoint directory cannot be reused (None = can).

    Delegates the manifest rules to :class:`CheckpointStore` — the
    same format/version/config-fingerprint checks that guard an
    ordinary ``--resume``.
    """
    if not directory.is_dir():
        return "no checkpoint directory yet (first ingest)"
    return CheckpointStore(
        directory, fingerprint)._manifest_problem()


def _surgery(directory: Path, config: PipelineConfig,
             corpus: SyntheticCorpus, digests: dict[str, str],
             report: IngestReport) -> None:
    """Drop stale journal state so the resume run recomputes it.

    Stale = a document whose content digest changed, or one that left
    the corpus.  The corpus-dependent artifacts are always deleted;
    the tags journal survives only in seed-dictionary mode.
    """
    previous = _read_state(directory, config)
    stale: set[str] = set()
    for document in corpus.documents:
        known = previous.get(document.document_id)
        if known is None:
            # No prior digest.  If the journals know the id anyway
            # (state file lost, or pre-ingest checkpoints), the entry
            # is trusted exactly as a plain --resume would trust it.
            report.new_documents += 1
        elif known != digests[document.document_id]:
            stale.add(document.document_id)
            report.changed_documents += 1
        else:
            report.reused_documents += 1

    current_ids = set(digests)
    for name in ("documents", "accidents"):
        removed = _rewrite_journal(
            directory / f"{name}.jsonl", stale, current_ids,
            durable=_durable(config))
        report.removed_documents += removed

    # Corpus-wide artifacts are functions of the *whole* corpus —
    # never reusable across an ingest that changed it.  The columnar
    # database blob is one too: it snapshots the finished database.
    (directory / "normalized.json").unlink(missing_ok=True)
    (directory / "dictionary.json").unlink(missing_ok=True)
    (directory / "database.bin").unlink(missing_ok=True)
    (directory / "database.bin.sha256").unlink(missing_ok=True)

    tags_path = directory / "tags.jsonl"
    if config.dictionary_mode == "seed":
        # The seed dictionary is corpus-independent, so a tag result
        # depends only on the record's description — reusable, except
        # for records of stale documents (unit ids are
        # ``<document_id>:<line>`` for provenance-carrying records).
        _rewrite_tags(tags_path, stale, current_ids,
                      durable=_durable(config))
        report.tags_reused = True
    else:
        tags_path.unlink(missing_ok=True)
        report.notes.append(
            "expanded dictionary mode: tags journal dropped (the "
            "dictionary — and with it any tag — can shift with the "
            "corpus)")


def _rewrite_journal(path: Path, stale: set[str],
                     current_ids: set[str], *,
                     durable: bool) -> int:
    """Keep only live entries of ``path``; returns removed-doc count.

    Entries for stale documents are dropped (recomputed by the resume
    run); entries for documents no longer in the corpus are dropped
    too (the runner would ignore them, but carrying them forever
    would grow the journal without bound).
    """
    if not path.exists():
        return 0
    entries, _corrupt = read_journal(path)
    removed = sum(1 for unit in entries if unit not in current_ids)
    if removed == 0 and not (stale & set(entries)):
        return 0
    kept = [journal_line(unit, body)
            for unit, body in entries.items()
            if unit in current_ids and unit not in stale]
    atomic_write_text(path, "".join(line + "\n" for line in kept),
                      durable=durable)
    return removed


def _rewrite_tags(path: Path, stale: set[str],
                  current_ids: set[str], *, durable: bool) -> None:
    """Drop tag entries belonging to stale or removed documents.

    A tag unit id is ``<document_id>:<line>`` when the record carries
    provenance, or ``record:<content-hash>`` otherwise.  The latter
    is content-derived, so it stays valid regardless of which
    document produced it (same description ⇒ same deterministic tag
    under the seed dictionary).
    """
    if not path.exists():
        return
    entries, _corrupt = read_journal(path)

    def live(unit: str) -> bool:
        if unit.startswith("record:"):
            return True
        doc_id = unit.rsplit(":", 1)[0]
        return doc_id in current_ids and doc_id not in stale

    kept = [journal_line(unit, body)
            for unit, body in entries.items() if live(unit)]
    if len(kept) == len(entries):
        return
    atomic_write_text(path, "".join(line + "\n" for line in kept),
                      durable=durable)


# ----------------------------------------------------------------------
# The ingest state file.
# ----------------------------------------------------------------------


def _state_path(directory: Path) -> Path:
    return directory / INGEST_STATE


def _read_state(directory: Path,
                config: PipelineConfig) -> dict[str, str]:
    """Digest map from the previous ingest (empty when unusable).

    An absent, corrupt, or other-config state file yields an empty
    map: every document then counts as *new*, and its journal entries
    are trusted by id exactly as a plain ``--resume`` trusts them —
    losing the map can only cost recompute, never correctness.
    """
    import json

    path = _state_path(directory)
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        if (data.get("format") != INGEST_FORMAT
                or data.get("fingerprint")
                != config_fingerprint(config)):
            return {}
        digests = data["digests"]
        if not isinstance(digests, dict):
            return {}
        return {str(k): str(v) for k, v in digests.items()}
    except (OSError, ValueError, KeyError, TypeError):
        return {}


def _write_state(directory: Path, fingerprint: str,
                 digests: dict[str, str], *, durable: bool) -> None:
    """Atomically publish the digest map — only after a successful
    run, so a crashed ingest re-detects (and redoes) its delta."""
    atomic_write_text(
        _state_path(directory),
        canonical_json({
            "format": INGEST_FORMAT,
            "fingerprint": fingerprint,
            "digests": digests,
        }),
        durable=durable)


def _durable(config: PipelineConfig) -> bool:
    # Journals rewritten by surgery follow the same durability the
    # store itself uses (always durable today; kept as one knob).
    return True
