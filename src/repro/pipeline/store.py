"""The consolidated AV failure database (pipeline step 4).

Holds the tagged disengagement records, accident records, and monthly
mileage cells, with the grouping helpers every Stage IV analysis
needs, plus a JSON round-trip for persistence.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path

from ..parsing.records import (
    AccidentRecord,
    DisengagementRecord,
    MonthlyMileage,
)
from .resilience import Quarantine, QuarantineEntry


@dataclass
class FailureDatabase:
    """Consolidated, analysis-ready failure data."""

    disengagements: list[DisengagementRecord] = field(default_factory=list)
    accidents: list[AccidentRecord] = field(default_factory=list)
    mileage: list[MonthlyMileage] = field(default_factory=list)
    #: Dead-letter store of units the pipeline failed on (empty on a
    #: clean run; carried in the JSON only when non-empty so clean
    #: databases stay byte-identical across library versions).
    quarantine: Quarantine = field(default_factory=Quarantine)

    # ------------------------------------------------------------------
    # Grouping helpers.
    # ------------------------------------------------------------------

    def manufacturers(self) -> list[str]:
        """Manufacturers present, sorted."""
        names = {r.manufacturer for r in self.disengagements}
        names.update(r.manufacturer for r in self.accidents)
        names.update(m.manufacturer for m in self.mileage)
        return sorted(names)

    def disengagements_by_manufacturer(
            self) -> dict[str, list[DisengagementRecord]]:
        """Manufacturer -> its disengagement records."""
        grouped: dict[str, list[DisengagementRecord]] = defaultdict(list)
        for record in self.disengagements:
            grouped[record.manufacturer].append(record)
        return dict(grouped)

    def accidents_by_manufacturer(self) -> dict[str, list[AccidentRecord]]:
        """Manufacturer -> its accident records."""
        grouped: dict[str, list[AccidentRecord]] = defaultdict(list)
        for record in self.accidents:
            grouped[record.manufacturer].append(record)
        return dict(grouped)

    def miles_by_manufacturer(self) -> dict[str, float]:
        """Manufacturer -> total autonomous miles."""
        totals: dict[str, float] = defaultdict(float)
        for cell in self.mileage:
            totals[cell.manufacturer] += cell.miles
        return dict(totals)

    def monthly_miles(self, manufacturer: str) -> dict[str, float]:
        """Month -> miles for one manufacturer."""
        totals: dict[str, float] = defaultdict(float)
        for cell in self.mileage:
            if cell.manufacturer == manufacturer:
                totals[cell.month] += cell.miles
        return dict(sorted(totals.items()))

    def monthly_disengagements(self, manufacturer: str) -> dict[str, int]:
        """Month -> disengagement count for one manufacturer."""
        counts: dict[str, int] = defaultdict(int)
        for record in self.disengagements:
            if record.manufacturer == manufacturer:
                counts[record.month] += 1
        return dict(sorted(counts.items()))

    def vehicle_miles(self, manufacturer: str) -> dict[str, float]:
        """Vehicle id -> miles for one manufacturer."""
        totals: dict[str, float] = defaultdict(float)
        for cell in self.mileage:
            if cell.manufacturer == manufacturer and cell.vehicle_id:
                totals[cell.vehicle_id] += cell.miles
        return dict(totals)

    def vehicle_disengagements(self, manufacturer: str) -> dict[str, int]:
        """Vehicle id -> disengagement count for one manufacturer."""
        counts: dict[str, int] = defaultdict(int)
        for record in self.disengagements:
            if record.manufacturer == manufacturer and record.vehicle_id:
                counts[record.vehicle_id] += 1
        return dict(counts)

    def reaction_times(self, manufacturer: str | None = None,
                       ) -> list[float]:
        """Reported reaction times (seconds), optionally filtered."""
        return [r.reaction_time_s for r in self.disengagements
                if r.reaction_time_s is not None
                and (manufacturer is None
                     or r.manufacturer == manufacturer)]

    @property
    def total_miles(self) -> float:
        """Total autonomous miles in the database."""
        return sum(cell.miles for cell in self.mileage)

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the database to a JSON string."""
        payload = {
            "disengagements": [r.to_dict() for r in self.disengagements],
            "accidents": [r.to_dict() for r in self.accidents],
            "mileage": [m.to_dict() for m in self.mileage],
        }
        if self.quarantine:
            payload["quarantine"] = [e.to_dict()
                                     for e in self.quarantine]
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "FailureDatabase":
        """Inverse of :meth:`to_json`."""
        data = json.loads(text)
        return cls(
            disengagements=[DisengagementRecord.from_dict(d)
                            for d in data["disengagements"]],
            accidents=[AccidentRecord.from_dict(d)
                       for d in data["accidents"]],
            mileage=[MonthlyMileage.from_dict(d)
                     for d in data["mileage"]],
            quarantine=Quarantine(
                entries=[QuarantineEntry.from_dict(d)
                         for d in data.get("quarantine", [])]),
        )

    def save(self, path: str | Path) -> None:
        """Write the database to ``path`` as JSON."""
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "FailureDatabase":
        """Read a database previously written with :meth:`save`."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
