"""The consolidated AV failure database (pipeline step 4).

Holds the tagged disengagement records, accident records, and monthly
mileage cells, with the grouping helpers every Stage IV analysis
needs, plus a JSON round-trip for persistence.

Persistence is crash-safe: :meth:`FailureDatabase.save` commits via
write-to-temp + fsync + ``os.replace`` (a crash mid-write can never
tear an existing database file) and publishes a sha256 sidecar that
:meth:`FailureDatabase.load` verifies; any integrity failure raises
:class:`~repro.errors.CorruptDatabaseError` with the offending path
and reason.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import CorruptDatabaseError
from ..parsing.records import (
    AccidentRecord,
    DisengagementRecord,
    MonthlyMileage,
)
from .checkpoint import atomic_write_text, canonical_json, sha256_text
from .resilience import Quarantine, QuarantineEntry


def manufacturer_names(*collections) -> set[str]:
    """The set of manufacturer names across record collections.

    The one shared implementation behind every "which manufacturers
    are present?" question — each element of ``collections`` is any
    iterable of objects with a ``manufacturer`` attribute.
    """
    return {record.manufacturer
            for collection in collections
            for record in collection}


def group_by_manufacturer(records) -> dict[str, list]:
    """Group records (anything with ``.manufacturer``) by manufacturer."""
    grouped: dict[str, list] = defaultdict(list)
    for record in records:
        grouped[record.manufacturer].append(record)
    return dict(grouped)


@dataclass
class FailureDatabase:
    """Consolidated, analysis-ready failure data."""

    disengagements: list[DisengagementRecord] = field(default_factory=list)
    accidents: list[AccidentRecord] = field(default_factory=list)
    mileage: list[MonthlyMileage] = field(default_factory=list)
    #: Dead-letter store of units the pipeline failed on (empty on a
    #: clean run; carried in the JSON only when non-empty so clean
    #: databases stay byte-identical across library versions).
    quarantine: Quarantine = field(default_factory=Quarantine)
    #: Memoized ``(content token, fingerprint)`` pair — see
    #: :meth:`fingerprint` / :meth:`touch`.
    _fp_cache: tuple | None = field(
        default=None, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Grouping helpers.
    # ------------------------------------------------------------------

    def manufacturers(self) -> list[str]:
        """Manufacturers present, sorted."""
        return sorted(manufacturer_names(
            self.disengagements, self.accidents, self.mileage))

    def disengagements_by_manufacturer(
            self) -> dict[str, list[DisengagementRecord]]:
        """Manufacturer -> its disengagement records."""
        return group_by_manufacturer(self.disengagements)

    def accidents_by_manufacturer(self) -> dict[str, list[AccidentRecord]]:
        """Manufacturer -> its accident records."""
        return group_by_manufacturer(self.accidents)

    def miles_by_manufacturer(self) -> dict[str, float]:
        """Manufacturer -> total autonomous miles."""
        totals: dict[str, float] = defaultdict(float)
        for cell in self.mileage:
            totals[cell.manufacturer] += cell.miles
        return dict(totals)

    def monthly_miles(self, manufacturer: str) -> dict[str, float]:
        """Month -> miles for one manufacturer."""
        totals: dict[str, float] = defaultdict(float)
        for cell in self.mileage:
            if cell.manufacturer == manufacturer:
                totals[cell.month] += cell.miles
        return dict(sorted(totals.items()))

    def monthly_disengagements(self, manufacturer: str) -> dict[str, int]:
        """Month -> disengagement count for one manufacturer."""
        counts: dict[str, int] = defaultdict(int)
        for record in self.disengagements:
            if record.manufacturer == manufacturer:
                counts[record.month] += 1
        return dict(sorted(counts.items()))

    def vehicle_miles(self, manufacturer: str) -> dict[str, float]:
        """Vehicle id -> miles for one manufacturer."""
        totals: dict[str, float] = defaultdict(float)
        for cell in self.mileage:
            if cell.manufacturer == manufacturer and cell.vehicle_id:
                totals[cell.vehicle_id] += cell.miles
        return dict(totals)

    def vehicle_disengagements(self, manufacturer: str) -> dict[str, int]:
        """Vehicle id -> disengagement count for one manufacturer."""
        counts: dict[str, int] = defaultdict(int)
        for record in self.disengagements:
            if record.manufacturer == manufacturer and record.vehicle_id:
                counts[record.vehicle_id] += 1
        return dict(counts)

    def reaction_times(self, manufacturer: str | None = None,
                       ) -> list[float]:
        """Reported reaction times (seconds), optionally filtered."""
        return [r.reaction_time_s for r in self.disengagements
                if r.reaction_time_s is not None
                and (manufacturer is None
                     or r.manufacturer == manufacturer)]

    @property
    def total_miles(self) -> float:
        """Total autonomous miles in the database."""
        return sum(cell.miles for cell in self.mileage)

    # ------------------------------------------------------------------
    # Scan hooks.
    #
    # Narrow, data-shaped questions Stage IV asks in hot loops.  The
    # base implementations scan the record lists; the columnar backend
    # (``repro.storage``) overrides them with struct-of-arrays scans
    # that return the *same* values in the *same* order — analysis
    # code calls the hook and never needs to know the layout.
    # ------------------------------------------------------------------

    def vehicle_attribution_counts(self, manufacturer: str,
                                   ) -> tuple[int, int]:
        """``(vehicle-attributed, total)`` disengagement counts."""
        attributed = 0
        total = 0
        for record in self.disengagements:
            if record.manufacturer == manufacturer:
                total += 1
                if record.vehicle_id:
                    attributed += 1
        return attributed, total

    def vehicle_year_miles(self, manufacturer: str,
                           ) -> dict[tuple[str, int], float]:
        """(vehicle id, year) -> miles for one manufacturer.

        Key order is first-occurrence order over the mileage cells —
        downstream per-year distributions depend on it.
        """
        totals: dict[tuple[str, int], float] = defaultdict(float)
        for cell in self.mileage:
            if cell.manufacturer == manufacturer and cell.vehicle_id:
                totals[(cell.vehicle_id, cell.year)] += cell.miles
        return dict(totals)

    def vehicle_year_disengagements(self, manufacturer: str,
                                    ) -> dict[tuple[str, int], int]:
        """(vehicle id, year) -> disengagement count."""
        counts: dict[tuple[str, int], int] = defaultdict(int)
        for record in self.disengagements:
            if record.manufacturer == manufacturer and record.vehicle_id:
                counts[(record.vehicle_id, record.year)] += 1
        return dict(counts)

    def tag_values(self, manufacturer: str,
                   use_truth: bool = False) -> list:
        """Non-``None`` fault tags of one manufacturer, in row order."""
        if use_truth:
            return [r.truth_tag for r in self.disengagements
                    if r.manufacturer == manufacturer
                    and r.truth_tag is not None]
        return [r.tag for r in self.disengagements
                if r.manufacturer == manufacturer
                and r.tag is not None]

    def modality_values(self, manufacturer: str) -> list:
        """Non-``None`` modalities of one manufacturer, in row order."""
        return [r.modality for r in self.disengagements
                if r.manufacturer == manufacturer
                and r.modality is not None]

    def disengagement_index_rows(self):
        """``(record, manufacturer, month, tag)`` rows for index builds.

        :class:`~repro.query.index.DatabaseIndex` groups on these three
        keys; yielding them alongside the record lets the columnar
        backend serve the keys from its packed arrays while the index
        keeps one build implementation.
        """
        for record in self.disengagements:
            yield record, record.manufacturer, record.month, record.tag

    def accident_index_rows(self):
        """``(record, manufacturer)`` rows for index builds."""
        for record in self.accidents:
            yield record, record.manufacturer

    def mileage_index_rows(self):
        """``(cell, manufacturer, month, miles)`` rows for index builds."""
        for cell in self.mileage:
            yield cell, cell.manufacturer, cell.month, cell.miles

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------

    def _payload(self) -> dict[str, Any]:
        """JSON-serializable dictionary form (shared by
        :meth:`to_json` and :meth:`fingerprint`)."""
        payload = {
            "disengagements": [r.to_dict() for r in self.disengagements],
            "accidents": [r.to_dict() for r in self.accidents],
            "mileage": [m.to_dict() for m in self.mileage],
        }
        if self.quarantine:
            payload["quarantine"] = [e.to_dict()
                                     for e in self.quarantine]
        return payload

    def to_json(self) -> str:
        """Serialize the database to a JSON string."""
        return json.dumps(self._payload())

    def _content_token(self) -> tuple:
        """Cheap mutation witness guarding the fingerprint memo.

        Record additions and removals (the mutations the pipeline,
        ingestion, and the serving layer actually perform) all change
        a collection length; in-place *field* edits on an existing
        record do not, and callers doing that must :meth:`touch`.
        """
        return (len(self.disengagements), len(self.accidents),
                len(self.mileage), len(self.quarantine))

    def touch(self) -> None:
        """Invalidate the fingerprint memo after in-place mutation.

        Only needed when editing fields of existing records —
        length-changing mutations are detected automatically.
        """
        self._fp_cache = None

    def fingerprint(self) -> str:
        """Stable content hash of the database.

        The hex sha256 of the canonical JSON encoding (sorted keys,
        compact separators — the same :func:`canonical_json` the
        checkpoint sidecars use), so two databases with identical
        content always fingerprint identically regardless of in-memory
        construction order of equal JSON texts.  The query layer keys
        its caches and indexes on this value.

        Memoized: snapshot swaps and cache lookups hit this on every
        request, so re-hashing the whole corpus each time is pure
        waste.  The memo is invalidated by any length-changing
        mutation (see :meth:`_content_token`) or an explicit
        :meth:`touch`.
        """
        token = self._content_token()
        cached = self._fp_cache
        if cached is not None and cached[0] == token:
            return cached[1]
        value = sha256_text(canonical_json(self._payload()))
        self._fp_cache = (token, value)
        return value

    @classmethod
    def from_json(cls, text: str, *,
                  source: str | Path | None = None) -> "FailureDatabase":
        """Inverse of :meth:`to_json`.

        Malformed, truncated, or structurally wrong JSON raises
        :class:`~repro.errors.CorruptDatabaseError` naming the source
        path (when given) and the offending section — never a raw
        ``KeyError``/``json.JSONDecodeError``.
        """
        path = str(source) if source is not None else None
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CorruptDatabaseError(
                f"database JSON is malformed: {exc}",
                path=path, reason=f"invalid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise CorruptDatabaseError(
                "database JSON is not an object",
                path=path,
                reason=f"top level is {type(data).__name__}")
        return cls(
            disengagements=_decode_section(
                data, "disengagements", DisengagementRecord.from_dict,
                required=True, path=path),
            accidents=_decode_section(
                data, "accidents", AccidentRecord.from_dict,
                required=True, path=path),
            mileage=_decode_section(
                data, "mileage", MonthlyMileage.from_dict,
                required=True, path=path),
            quarantine=Quarantine(entries=_decode_section(
                data, "quarantine", QuarantineEntry.from_dict,
                required=False, path=path)),
        )

    def save(self, path: str | Path, *, durable: bool = True,
             checksum: bool = True, crash: Any = None) -> None:
        """Write the database to ``path`` as JSON — atomically.

        Guarantee: the JSON is written to a temporary file in the same
        directory, fsynced, and published with :func:`os.replace`, so
        a crash at any instant leaves either the previous database
        file or the complete new one on disk — never a torn mix.
        ``checksum=True`` additionally publishes a
        ``<name>.sha256`` sidecar (``sha256sum``-compatible) that
        :meth:`load` verifies before trusting the file.

        ``crash`` accepts a
        :class:`~repro.pipeline.chaos.CrashController` whose ``save``
        kill point fires mid-save (crash-recovery testing).
        """
        path = Path(path)
        text = self.to_json()
        atomic_write_text(
            path, text, durable=durable,
            crash_hook=(None if crash is None
                        else lambda: crash.reached("save")))
        if checksum:
            atomic_write_text(
                _sidecar_path(path),
                f"{sha256_text(text)}  {path.name}\n",
                durable=durable)

    @classmethod
    def load(cls, path: str | Path, *,
             verify_checksum: bool = True) -> "FailureDatabase":
        """Read a database previously written with :meth:`save`.

        When a ``.sha256`` sidecar exists (and ``verify_checksum`` is
        on), the file content is verified against it first; a mismatch
        raises :class:`~repro.errors.CorruptDatabaseError` instead of
        returning silently wrong data.
        """
        path = Path(path)
        text = path.read_text(encoding="utf-8")
        sidecar = _sidecar_path(path)
        if verify_checksum and sidecar.exists():
            expected = sidecar.read_text(encoding="utf-8").split()
            if not expected or sha256_text(text) != expected[0]:
                raise CorruptDatabaseError(
                    f"database file {path} does not match its "
                    ".sha256 sidecar",
                    path=str(path), reason="checksum mismatch")
        return cls.from_json(text, source=path)


def _sidecar_path(path: Path) -> Path:
    """Where :meth:`FailureDatabase.save` puts the checksum sidecar."""
    return path.with_name(path.name + ".sha256")


def _decode_section(data: dict, key: str, from_dict, *,
                    required: bool, path: str | None) -> list:
    """Decode one record list, translating failures to typed errors."""
    if key not in data:
        if not required:
            return []
        raise CorruptDatabaseError(
            f"database JSON is missing required section {key!r}",
            path=path, reason=f"missing key {key!r}")
    section = data[key]
    if not isinstance(section, list):
        raise CorruptDatabaseError(
            f"database section {key!r} is not a list",
            path=path,
            reason=f"{key!r} is {type(section).__name__}")
    records = []
    for index, entry in enumerate(section):
        try:
            records.append(from_dict(entry))
        except Exception as exc:
            raise CorruptDatabaseError(
                f"database section {key!r} entry {index} could not "
                f"be decoded: {type(exc).__name__}: {exc}",
                path=path,
                reason=f"bad {key!r} entry {index}: {exc}") from exc
    return records
