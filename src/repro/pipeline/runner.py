"""End-to-end pipeline orchestration (Fig. 1).

Every per-document and per-record step runs through a
:class:`~repro.pipeline.resilience.StageGuard`, so one bad unit of
work is retried, degraded, or quarantined according to the configured
:class:`~repro.pipeline.resilience.FailurePolicy` instead of aborting
the whole run.  A clean run draws no randomness from the guard, so
resilient output is byte-identical to the historical unguarded
pipeline.

When the config names a checkpoint directory, completed units of work
are journaled through a
:class:`~repro.pipeline.checkpoint.CheckpointStore` at stage
boundaries, and a resume run restores them instead of recomputing —
keyed by the same stable unit ids the resilience layer uses, so a run
killed at any point (see
:data:`~repro.pipeline.chaos.CRASH_POINTS`) and resumed produces a
database byte-identical to an uninterrupted run.  Artifacts that fail
their checksum, or checkpoints written under a different config/seed,
are discarded and recomputed, never trusted.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import time
import warnings
from dataclasses import asdict, dataclass

from ..errors import (
    DegradedModeWarning,
    ParseError,
    PipelineError,
    QuarantinedError,
)
from ..nlp.dictionary import FailureDictionary
from ..nlp.evaluation import evaluate_tagger
from ..nlp.tagger import VotingTagger
from ..nlp.textcache import token_cache
from ..obs.metrics import (
    STORAGE_CONVERT_SECONDS,
    STORAGE_ROWS,
    TOKEN_CACHE_HITS,
    TOKEN_CACHE_MISSES,
)
from ..obs.runtime import Observability
from ..parsing import (
    default_registry,
    filter_records,
    parse_accident_report,
)
from ..parsing.filters import FilterStats
from ..parsing.normalize import (
    NormalizationStats,
    normalize_accident,
    normalize_records,
)
from ..parsing.records import (
    AccidentRecord,
    DisengagementRecord,
    MonthlyMileage,
)
from ..rng import child_generator
from ..synth.dataset import SyntheticCorpus, generate_corpus
from ..synth.reports import RawDocument
from ..taxonomy import FailureCategory, FaultTag, category_of
from .chaos import ChaosInjector, CrashController
from .checkpoint import CheckpointStore, config_fingerprint
from .config import PipelineConfig
from .parallel import (
    BatchOutcome,
    ParallelExecutor,
    ParallelStats,
    UnitOutcome,
    iter_units,
)
from .resilience import QuarantineEntry, StageGuard
from .stages import OcrStage, PipelineDiagnostics
from .store import FailureDatabase


@dataclass
class PipelineResult:
    """Output of one pipeline run."""

    database: FailureDatabase
    diagnostics: PipelineDiagnostics
    config: PipelineConfig


def run_pipeline(config: PipelineConfig | None = None) -> PipelineResult:
    """Synthesize the corpus and process it end to end."""
    config = config or PipelineConfig()
    corpus = generate_corpus(config.seed, config.manufacturers)
    return process_corpus(corpus, config)


def process_corpus(corpus: SyntheticCorpus,
                   config: PipelineConfig | None = None) -> PipelineResult:
    """Process an existing raw corpus through Stages II-IV."""
    config = config or PipelineConfig()
    diagnostics = PipelineDiagnostics()
    database = FailureDatabase()
    obs = Observability.for_run(config)
    guard = StageGuard(
        policy=config.resolved_policy(),
        seed=config.seed,
        quarantine=database.quarantine,
        chaos=(ChaosInjector(config.chaos, config.seed)
               if config.chaos is not None else None),
        metrics=obs.registry)
    diagnostics.health = guard.health
    store = None
    if config.checkpointing_active:
        store = CheckpointStore(
            config.checkpoint_dir, config_fingerprint(config),
            health=guard.health.checkpoint)
        store.open(resume=config.resume)
    cache_before = (token_cache().stats()
                    if obs.registry is not None else None)
    try:
        with obs.tracer.span("run", kind="run", seed=config.seed,
                             workers=config.workers):
            result = _process(corpus, config, diagnostics, database,
                              guard, store, obs)
            _finalize_storage(result, config, store, obs)
        _snapshot_obs(obs, diagnostics, config, cache_before)
        return result
    finally:
        if store is not None:
            store.close()
        obs.close()


def _finalize_storage(result: PipelineResult, config: PipelineConfig,
                      store: CheckpointStore | None,
                      obs: Observability) -> None:
    """Swap the finished database to the configured storage backend.

    ``storage_backend="columnar"`` repacks the corpus into
    struct-of-arrays tables (byte-identical JSON/fingerprint — the
    backend is a representation choice, never an output change) and,
    when checkpointing is active, leaves an atomic columnar snapshot
    artifact beside the journals so a later consumer can reload the
    packed form directly.
    """
    if config.storage_backend != "columnar":
        return
    # Imported lazily: repro.storage imports this package.
    from ..storage import ColumnarFailureDatabase, encode_columnar

    started = time.perf_counter()
    with obs.stage("storage-convert", backend=config.storage_backend):
        columnar = ColumnarFailureDatabase.from_database(
            result.database)
        if store is not None:
            store.write_blob_artifact(
                "database", encode_columnar(columnar))
    result.database = columnar
    registry = obs.registry
    if registry is not None:
        rows = registry.counter(
            STORAGE_ROWS, "Rows packed into columnar tables",
            ("table",))
        for name, table in columnar.tables.items():
            rows.labels(name).inc(len(table))
        registry.counter(
            STORAGE_CONVERT_SECONDS,
            "Wall time spent converting to the columnar backend",
        ).inc(time.perf_counter() - started)


def _snapshot_obs(obs: Observability,
                  diagnostics: PipelineDiagnostics,
                  config: PipelineConfig,
                  cache_before: dict | None) -> None:
    """Fold end-of-run samples in and snapshot onto diagnostics.

    The token-cache counters are sampled as a start/end delta of the
    process-global cache: in serial and thread-pool runs that covers
    every consumer; process-pool workers ship their private caches'
    deltas home per unit instead (see ``parallel._stage3_unit``).
    """
    registry = obs.registry
    if registry is not None:
        if cache_before is not None:
            after = token_cache().stats()
            registry.counter(
                TOKEN_CACHE_HITS, "Token-memo hits").inc(
                after["hits"] - cache_before["hits"])
            registry.counter(
                TOKEN_CACHE_MISSES, "Token-memo misses").inc(
                after["misses"] - cache_before["misses"])
        diagnostics.metrics = registry.to_dict()
        obs.publish()
    if config.trace_path is not None:
        diagnostics.trace_path = str(config.trace_path)


def _process(corpus: SyntheticCorpus, config: PipelineConfig,
             diagnostics: PipelineDiagnostics,
             database: FailureDatabase, guard: StageGuard,
             store: CheckpointStore | None,
             obs: Observability) -> PipelineResult:
    executor = None
    if config.resolved_parallelism()[1] != "serial":
        executor = ParallelExecutor(config, diagnostics.parallel)
    try:
        return _run_stages(corpus, config, diagnostics, database,
                           guard, store, executor, obs)
    finally:
        if executor is not None:
            executor.close()


def _run_stages(corpus: SyntheticCorpus, config: PipelineConfig,
                diagnostics: PipelineDiagnostics,
                database: FailureDatabase, guard: StageGuard,
                store: CheckpointStore | None,
                executor: ParallelExecutor | None,
                obs: Observability) -> PipelineResult:
    crash = CrashController(config.crash)
    checkpoint = guard.health.checkpoint
    par = diagnostics.parallel
    ocr_stage = OcrStage(
        config.scanner_profile, config.correction_enabled,
        config.fallback_threshold) if config.ocr_enabled else None
    registry = default_registry()

    # ---- Stage II: disengagement reports (per-document) --------------
    raw_disengagements: list[DisengagementRecord] = []
    raw_mileage: list[MonthlyMileage] = []
    started = time.perf_counter()
    with obs.stage("parse-documents",
                   documents=len(corpus.disengagement_documents)):
        _stage2_disengagements(
            corpus.disengagement_documents, config, diagnostics,
            database, guard, store, crash, ocr_stage, registry,
            executor, raw_disengagements, raw_mileage, obs)
    _mark_stage(par, "parse-documents", started, executor is not None)
    crash.reached("parse-documents")
    if store is not None:
        store.sync()

    # ---- Stage II: accident reports (per-document) -------------------
    started = time.perf_counter()
    with obs.stage("accident-documents",
                   documents=len(corpus.accident_documents)):
        _stage2_accidents(
            corpus.accident_documents, config, diagnostics, database,
            guard, store, crash, ocr_stage, executor, obs)
    _mark_stage(par, "accident-documents", started,
                executor is not None)
    crash.reached("accident-documents")
    if store is not None:
        store.sync()

    # ---- Stage II/III boundary: normalize + filter -------------------
    started = time.perf_counter()
    with obs.stage("normalize"):
        restored_norm = _restore_normalized(store, config, diagnostics,
                                            checkpoint)
        if restored_norm is not None:
            filtered, mileage = restored_norm
        else:
            normalized, mileage, norm_stats = normalize_records(
                raw_disengagements, raw_mileage)
            diagnostics.normalization = norm_stats
            filtered, filter_stats = filter_records(
                normalized, drop_planned=config.drop_planned)
            diagnostics.filters = filter_stats
            if store is not None:
                store.write_artifact("normalized", {
                    "disengagements": [r.to_dict() for r in filtered],
                    "mileage": [m.to_dict() for m in mileage],
                    "normalization": asdict(norm_stats),
                    "filters": asdict(filter_stats),
                })
    _mark_stage(par, "normalize", started)
    crash.reached("normalize")

    # ---- Stage III: dictionary + tagging -----------------------------
    started = time.perf_counter()
    with obs.stage("dictionary", mode=config.dictionary_mode):
        dictionary = _restore_dictionary(store, config, checkpoint)
        if dictionary is None:
            dictionary = guard.run(
                "dictionary", "corpus",
                lambda: _build_dictionary(filtered, config),
                fallback=lambda: _degraded_dictionary())
            if store is not None:
                store.write_artifact(
                    "dictionary", json.loads(dictionary.to_json()))
        diagnostics.dictionary_entries = len(dictionary)
    _mark_stage(par, "dictionary", started)
    crash.reached("dictionary")

    tagger = VotingTagger(dictionary)
    started = time.perf_counter()
    with obs.stage("tag", records=len(filtered)):
        _stage3_tags(filtered, dictionary, tagger, config, guard,
                     store, crash, checkpoint, executor, par, obs)
    _mark_stage(par, "tag", started, executor is not None)
    crash.reached("tag")
    if store is not None:
        store.sync()

    if config.attach_truth:
        started = time.perf_counter()
        with obs.stage("evaluate"):
            diagnostics.tagging = evaluate_tagger(tagger, filtered)
        _mark_stage(par, "evaluate", started)

    database.disengagements = filtered
    database.mileage = mileage
    return PipelineResult(
        database=database, diagnostics=diagnostics, config=config)


def _mark_stage(par: ParallelStats, stage: str, started: float,
                fanned: bool = False) -> None:
    """Record one stage's coordinator wall time."""
    elapsed = time.perf_counter() - started
    par.stage_wall_s[stage] = (
        par.stage_wall_s.get(stage, 0.0) + elapsed)
    if fanned:
        par.parallel_wall_s += elapsed


# ----------------------------------------------------------------------
# Stage loops.  Each has a serial branch (the historical loop,
# byte-for-byte) and a parallel branch that fans units out to the
# worker pool and merges the outcomes back in original corpus order.
# ----------------------------------------------------------------------

def _stage2_disengagements(documents, config: PipelineConfig,
                           diagnostics: PipelineDiagnostics,
                           database: FailureDatabase,
                           guard: StageGuard,
                           store: CheckpointStore | None,
                           crash: CrashController,
                           ocr_stage: OcrStage | None, registry,
                           executor: ParallelExecutor | None,
                           raw_disengagements: list,
                           raw_mileage: list,
                           obs: Observability) -> None:
    checkpoint = guard.health.checkpoint
    restored_docs = store.restored("documents") if store else {}
    units_c = obs.unit_counter("parse-documents")
    results = None
    batcher = None
    if executor is not None:
        pending = [("disengagement", document)
                   for document in documents
                   if document.document_id not in restored_docs]
        if store is not None:
            batcher = _JournalBatcher(store, "documents")
        results = iter_units(
            executor.map_documents(pending, "parse-documents"),
            _batch_folder("parse-documents", guard,
                          diagnostics.parallel, batcher))
    try:
        for index, document in enumerate(documents):
            crash.reached_mid("mid-parse-documents", index,
                              len(documents))
            if units_c is not None:
                units_c.inc()
            entry = restored_docs.get(document.document_id)
            if entry is not None and _restore_disengagement(
                    entry, diagnostics, database, guard,
                    raw_disengagements, raw_mileage):
                checkpoint.restored_units += 1
                obs.restored_unit("parse-documents",
                                  document.document_id)
                continue
            if results is None or entry is not None:
                # Serial path — also the fallback for a unit whose
                # checkpoint entry was corrupt (it was never
                # dispatched, so it is recomputed inline, exactly
                # like a serial run).
                with obs.unit("parse-documents",
                              document.document_id):
                    body = _process_disengagement(
                        document, config, diagnostics, database,
                        guard, ocr_stage, registry,
                        raw_disengagements, raw_mileage,
                        journal=store is not None)
            else:
                outcome = next(results)
                obs.merged_unit("parse-documents",
                                document.document_id, outcome.elapsed)
                body = _merge_stage2(
                    outcome, "disengagement", diagnostics, database,
                    guard, raw_disengagements, raw_mileage)
            if store is not None:
                if batcher is not None:
                    batcher.append(document.document_id, body)
                else:
                    store.append("documents", document.document_id,
                                 body)
                checkpoint.recomputed_units += 1
    finally:
        # Buffered entries are completed units: journal them even
        # when a crash/abort unwinds the loop, exactly as the serial
        # per-unit appends would have survived via the writer buffer.
        if batcher is not None:
            batcher.flush()


def _stage2_accidents(documents, config: PipelineConfig,
                      diagnostics: PipelineDiagnostics,
                      database: FailureDatabase, guard: StageGuard,
                      store: CheckpointStore | None,
                      crash: CrashController,
                      ocr_stage: OcrStage | None,
                      executor: ParallelExecutor | None,
                      obs: Observability) -> None:
    checkpoint = guard.health.checkpoint
    restored_accidents = store.restored("accidents") if store else {}
    units_c = obs.unit_counter("accident-documents")
    results = None
    batcher = None
    if executor is not None:
        pending = [("accident", document) for document in documents
                   if document.document_id not in restored_accidents]
        if store is not None:
            batcher = _JournalBatcher(store, "accidents")
        results = iter_units(
            executor.map_documents(pending, "accident-documents"),
            _batch_folder("accident-documents", guard,
                          diagnostics.parallel, batcher))
    try:
        for document in documents:
            if units_c is not None:
                units_c.inc()
            entry = restored_accidents.get(document.document_id)
            if entry is not None and _restore_accident(
                    entry, diagnostics, database, guard):
                checkpoint.restored_units += 1
                obs.restored_unit("accident-documents",
                                  document.document_id)
                continue
            if results is None or entry is not None:
                with obs.unit("accident-documents",
                              document.document_id):
                    body = _process_accident(
                        document, config, diagnostics, database,
                        guard, ocr_stage, journal=store is not None)
            else:
                outcome = next(results)
                obs.merged_unit("accident-documents",
                                document.document_id, outcome.elapsed)
                body = _merge_stage2(
                    outcome, "accident", diagnostics, database, guard,
                    None, None)
            if store is not None:
                if batcher is not None:
                    batcher.append(document.document_id, body)
                else:
                    store.append("accidents", document.document_id,
                                 body)
                checkpoint.recomputed_units += 1
    finally:
        if batcher is not None:
            batcher.flush()


def _stage3_tags(filtered, dictionary, tagger,
                 config: PipelineConfig, guard: StageGuard,
                 store: CheckpointStore | None,
                 crash: CrashController, checkpoint,
                 executor: ParallelExecutor | None,
                 par: ParallelStats, obs: Observability) -> None:
    restored_tags = store.restored("tags") if store else {}
    record_ids = [_record_id(record) for record in filtered]
    units_c = obs.unit_counter("tag")
    pending = [(rid, record.description)
               for rid, record in zip(record_ids, filtered)
               if rid not in restored_tags]
    results = None
    batcher = None
    precomputed = None
    if executor is not None:
        if store is not None:
            batcher = _JournalBatcher(store, "tags")
        results = iter_units(
            executor.map_tags(dictionary.to_json(), pending),
            _batch_folder("tag", guard, par, batcher))
    elif pending:
        # Serial runs tag through the batch-native entrypoint too:
        # one tokenization/index pass over the whole stage, with each
        # precomputed result adopted under the record's own guarded
        # stage run — retries, chaos draws, fallbacks, and journal
        # bytes are identical to the historical per-record loop.
        precomputed = iter(
            tagger.tag_batch([text for _, text in pending]))
    try:
        for index, record in enumerate(filtered):
            crash.reached_mid("mid-tag", index, len(filtered))
            if units_c is not None:
                units_c.inc()
            record_id = record_ids[index]
            entry = restored_tags.get(record_id)
            if entry is not None and _restore_tag(entry, record,
                                                  checkpoint):
                checkpoint.restored_units += 1
                obs.restored_unit("tag", record_id)
                continue
            if results is not None and entry is None:
                outcome = next(results)
                obs.merged_unit("tag", record_id, outcome.elapsed)
                _merge_tag(outcome, record, guard)
            else:
                with obs.unit("tag", record_id):
                    if precomputed is not None and entry is None:
                        pre = next(precomputed)
                        result = guard.run("tag", record_id,
                                           lambda: pre,
                                           fallback=_unknown_tag)
                    else:
                        # Corrupt checkpoint entry: the record was
                        # never dispatched or precomputed, so it is
                        # re-tagged inline, exactly like a serial run.
                        result = guard.run(
                            "tag", record_id,
                            lambda: tagger.tag(record.description),
                            fallback=_unknown_tag)
                    record.tag = result.tag
                    record.category = result.category
            if store is not None:
                body = {
                    "tag": record.tag.value,
                    "category": record.category.value,
                }
                if batcher is not None:
                    batcher.append(record_id, body)
                else:
                    store.append("tags", record_id, body)
                checkpoint.recomputed_units += 1
    finally:
        if batcher is not None:
            batcher.flush()


# ----------------------------------------------------------------------
# Parallel merge paths.  The coordinator adopts worker outcomes in
# original corpus order, reproducing exactly the state transitions the
# serial live path would have made.
# ----------------------------------------------------------------------

def _merge_stage2(outcome: UnitOutcome, kind: str,
                  diagnostics: PipelineDiagnostics,
                  database: FailureDatabase, guard: StageGuard,
                  raw_disengagements: list | None,
                  raw_mileage: list | None) -> dict:
    _merge_worker_health(outcome, guard)
    if outcome.error is not None:
        raise PipelineError(outcome.error)
    if outcome.ocr is not None:
        _merge_ocr_stats(outcome.ocr, diagnostics)
    body = outcome.body
    verdict = body["outcome"]
    if verdict == "quarantined":
        database.quarantine.add(
            QuarantineEntry.from_dict(body["entry"]))
        _check_merged_thresholds(outcome, guard)
        return body
    if verdict == "parse_error":
        diagnostics.parse.unparsed_lines += int(body["unparsed"])
        return body
    if kind == "disengagement":
        records = [DisengagementRecord.from_dict(d)
                   for d in body["disengagements"]]
        cells = [MonthlyMileage.from_dict(m) for m in body["mileage"]]
        diagnostics.parse.documents += 1
        diagnostics.parse.disengagements_parsed += len(records)
        diagnostics.parse.mileage_cells_parsed += len(cells)
        diagnostics.parse.unparsed_lines += int(body["unparsed"])
        raw_disengagements.extend(records)
        raw_mileage.extend(cells)
    else:
        diagnostics.parse.accidents_parsed += 1
        database.accidents.append(
            AccidentRecord.from_dict(body["accident"]))
    return body


class _JournalBatcher:
    """Buffers one stage's journal appends for per-chunk flushing.

    Entries accumulate in merge (corpus) order and land with one
    buffered multi-line :meth:`~repro.pipeline.checkpoint.
    CheckpointStore.append_many` per dispatch chunk, so the journal
    file is line-for-line identical to a serial run's.  A crash can
    additionally lose the current chunk's buffered entries (on top of
    the writer's usual fsync window); resume simply recomputes them.
    """

    def __init__(self, store: CheckpointStore, name: str) -> None:
        self._store = store
        self._name = name
        self._entries: list[tuple[str, dict]] = []

    def append(self, unit_id: str, body: dict) -> None:
        self._entries.append((unit_id, body))

    def flush(self) -> None:
        if self._entries:
            self._store.append_many(self._name, self._entries)
            self._entries.clear()


def _batch_folder(stage: str, guard: StageGuard, par: ParallelStats,
                  batcher: _JournalBatcher | None):
    """The once-per-chunk merge hook for one stage's fan-out.

    Fires when the coordinator pulls a chunk, right before its units
    unpack: the previous chunk's journal buffer flushes (one
    multi-line append per chunk), and the chunk-level sidecars — the
    merged health delta, metrics dump, chaos count, and batch
    accounting — fold exactly once.
    """
    counters = None
    if guard.metrics is not None:
        from ..obs.metrics import (
            BATCH_PAYLOAD_BYTES_TOTAL, BATCH_TASKS_TOTAL,
            BATCH_UNITS_TOTAL)

        registry = guard.metrics
        counters = (
            registry.counter(BATCH_TASKS_TOTAL,
                             "Dispatch chunks shipped to the pool",
                             ("stage",)).labels(stage),
            registry.counter(BATCH_UNITS_TOTAL,
                             "Units that rode dispatch chunks",
                             ("stage",)).labels(stage),
            registry.counter(BATCH_PAYLOAD_BYTES_TOTAL,
                             "Pickled chunk-outcome payload bytes",
                             ("stage",)).labels(stage),
        )

    def fold(batch: BatchOutcome) -> None:
        if batcher is not None:
            batcher.flush()
        par.batch_tasks += 1
        par.parallel_units += batch.units
        par.unit_compute_s += batch.elapsed
        if batch.health is not None:
            _fold_health_delta(batch.health, guard)
        if guard.chaos is not None:
            guard.chaos.injected += batch.injected
        if batch.metrics is not None and guard.metrics is not None:
            guard.metrics.merge(batch.metrics)
        if counters is not None:
            tasks_c, units_c, bytes_c = counters
            tasks_c.inc()
            units_c.inc(batch.units)
            bytes_c.inc(len(pickle.dumps(batch)))

    return fold


def _merge_tag(outcome: UnitOutcome, record,
               guard: StageGuard) -> None:
    _merge_worker_health(outcome, guard)
    if outcome.error is not None:
        raise PipelineError(outcome.error)
    record.tag = FaultTag(outcome.body["tag"])
    record.category = FailureCategory(outcome.body["category"])


def _merge_worker_health(outcome: UnitOutcome,
                         guard: StageGuard) -> None:
    """Fold one unpacked unit's sidecars into the run health.

    ``health`` is ``None`` for units whose chunk shipped one merged
    delta (already folded by the chunk hook); per-unit deltas appear
    only when the chunk carried a quarantine.  ``injected`` and
    ``metrics`` are zero/``None`` on unpacked units — kept here so
    hand-built per-unit outcomes (tests, benchmarks) merge fully.
    """
    if outcome.health is not None:
        _fold_health_delta(outcome.health, guard)
    if guard.chaos is not None:
        guard.chaos.injected += outcome.injected
    if outcome.metrics is not None and guard.metrics is not None:
        guard.metrics.merge(outcome.metrics)


def _fold_health_delta(delta: tuple, guard: StageGuard) -> None:
    """Fold a ``(stages, events)`` health delta into the run health."""
    par_stats, events = delta
    for name, (attempts, errors, retries, degradations,
               quarantined) in par_stats.items():
        stats = guard.health.stage(name)
        stats.attempts += attempts
        stats.errors += errors
        stats.retries += retries
        stats.degradations += degradations
        stats.quarantined += quarantined
    guard.health.degradation_events.extend(events)


def _check_merged_thresholds(outcome: UnitOutcome,
                             guard: StageGuard) -> None:
    """Re-enforce the threshold policy on the merged counters.

    The serial path checks the threshold exactly when a unit is
    quarantined, so the merge path checks only stages whose delta
    carries a quarantine — with the merged (run-global) stats, the
    run aborts at the same unit with the same message.  A quarantined
    unit always arrives with a per-unit delta (its chunk switches to
    ``unit_health``), so ``health`` is never ``None`` here.
    """
    if outcome.health is None:  # pragma: no cover - invariant guard
        return
    for name, counters in outcome.health[0].items():
        if counters[4]:  # quarantined
            guard.check_threshold(name)


def _merge_ocr_stats(delta: dict, diagnostics: PipelineDiagnostics,
                     ) -> None:
    """Fold one worker document's OCR stats into the run's.

    Replays the serial stage's running-mean update in merge (corpus)
    order, so the merged confidence is bit-identical to a serial run.
    """
    stats = diagnostics.ocr
    stats.documents += 1
    stats.pages += delta["pages"]
    stats.lines += delta["lines"]
    stats.mean_confidence += (
        delta["confidence"] - stats.mean_confidence) / stats.documents
    stats.fallback_pages += delta["fallback_pages"]
    stats.fallback_lines += delta["fallback_lines"]


# ----------------------------------------------------------------------
# Per-unit processing (live path).  Each returns the journal body that
# lets a resume run replay the unit without recomputing it.
# ----------------------------------------------------------------------

def _process_disengagement(document: RawDocument,
                           config: PipelineConfig,
                           diagnostics: PipelineDiagnostics,
                           database: FailureDatabase,
                           guard: StageGuard,
                           ocr_stage: OcrStage | None,
                           registry,
                           raw_disengagements: list,
                           raw_mileage: list,
                           journal: bool = True) -> dict | None:
    try:
        lines = guard.run(
            "ocr", document.document_id,
            lambda: _through_ocr(document, ocr_stage, config,
                                 diagnostics))
    except QuarantinedError:
        return _quarantined_body(database)
    try:
        parsed = guard.run(
            "parse", document.document_id,
            lambda: registry.resolve(lines).parse(
                lines, document.document_id),
            expected=(ParseError,))
    except ParseError:
        unparsed = _non_blank(lines)
        diagnostics.parse.unparsed_lines += unparsed
        return {"outcome": "parse_error", "unparsed": unparsed}
    except QuarantinedError:
        return _quarantined_body(database)
    unparsed = _non_blank(parsed.unparsed_lines)
    diagnostics.parse.documents += 1
    diagnostics.parse.disengagements_parsed += len(
        parsed.disengagements)
    diagnostics.parse.mileage_cells_parsed += len(parsed.mileage)
    diagnostics.parse.unparsed_lines += unparsed
    if config.attach_truth:
        _attach_truth(document, parsed.disengagements)
    raw_disengagements.extend(parsed.disengagements)
    raw_mileage.extend(parsed.mileage)
    if not journal:  # body building is pure checkpoint overhead
        return None
    return {
        "outcome": "ok",
        "disengagements": [r.to_dict() for r in parsed.disengagements],
        "mileage": [m.to_dict() for m in parsed.mileage],
        "unparsed": unparsed,
    }


def _process_accident(document: RawDocument, config: PipelineConfig,
                      diagnostics: PipelineDiagnostics,
                      database: FailureDatabase, guard: StageGuard,
                      ocr_stage: OcrStage | None,
                      journal: bool = True) -> dict | None:
    try:
        lines = guard.run(
            "ocr", document.document_id,
            lambda: _through_ocr(document, ocr_stage, config,
                                 diagnostics))
    except QuarantinedError:
        return _quarantined_body(database)
    try:
        accident = guard.run(
            "parse", document.document_id,
            lambda: parse_accident_report(
                lines, document.document_id),
            expected=(ParseError,))
    except ParseError:
        unparsed = _non_blank(lines)
        diagnostics.parse.unparsed_lines += unparsed
        return {"outcome": "parse_error", "unparsed": unparsed}
    except QuarantinedError:
        return _quarantined_body(database)
    try:
        normalized_accident = guard.run(
            "normalize", document.document_id,
            lambda: normalize_accident(accident))
    except QuarantinedError:
        return _quarantined_body(database)
    diagnostics.parse.accidents_parsed += 1
    database.accidents.append(normalized_accident)
    if not journal:
        return None
    return {"outcome": "ok",
            "accident": normalized_accident.to_dict()}


def _quarantined_body(database: FailureDatabase) -> dict:
    """Journal body for a unit the guard just dead-lettered."""
    return {"outcome": "quarantined",
            "entry": database.quarantine.entries[-1].to_dict()}


# ----------------------------------------------------------------------
# Restore paths.  Each returns True when the journal entry was adopted;
# False sends the unit back to the live path (corrupt/unknown shapes
# are recomputed, never trusted).
# ----------------------------------------------------------------------

def _restore_disengagement(entry: dict,
                           diagnostics: PipelineDiagnostics,
                           database: FailureDatabase,
                           guard: StageGuard,
                           raw_disengagements: list,
                           raw_mileage: list) -> bool:
    try:
        outcome = entry["outcome"]
        if outcome == "ok":
            records = [DisengagementRecord.from_dict(d)
                       for d in entry["disengagements"]]
            cells = [MonthlyMileage.from_dict(m)
                     for m in entry["mileage"]]
            unparsed = int(entry["unparsed"])
            diagnostics.parse.documents += 1
            diagnostics.parse.disengagements_parsed += len(records)
            diagnostics.parse.mileage_cells_parsed += len(cells)
            diagnostics.parse.unparsed_lines += unparsed
            diagnostics.parse.documents_restored += 1
            raw_disengagements.extend(records)
            raw_mileage.extend(cells)
            return True
        if outcome == "parse_error":
            diagnostics.parse.unparsed_lines += int(entry["unparsed"])
            diagnostics.parse.documents_restored += 1
            return True
        if outcome == "quarantined":
            _restore_quarantined(entry, database, guard)
            diagnostics.parse.documents_restored += 1
            return True
    except Exception:
        pass
    _note_unusable(guard, entry)
    return False


def _restore_accident(entry: dict, diagnostics: PipelineDiagnostics,
                      database: FailureDatabase,
                      guard: StageGuard) -> bool:
    try:
        outcome = entry["outcome"]
        if outcome == "ok":
            accident = AccidentRecord.from_dict(entry["accident"])
            diagnostics.parse.accidents_parsed += 1
            diagnostics.parse.documents_restored += 1
            database.accidents.append(accident)
            return True
        if outcome == "parse_error":
            diagnostics.parse.unparsed_lines += int(entry["unparsed"])
            diagnostics.parse.documents_restored += 1
            return True
        if outcome == "quarantined":
            _restore_quarantined(entry, database, guard)
            diagnostics.parse.documents_restored += 1
            return True
    except Exception:
        pass
    _note_unusable(guard, entry)
    return False


def _restore_quarantined(entry: dict, database: FailureDatabase,
                         guard: StageGuard) -> None:
    """Re-adopt a pre-crash quarantine verdict (and its health)."""
    quarantined = QuarantineEntry.from_dict(entry["entry"])
    database.quarantine.add(quarantined)
    stats = guard.health.stage(quarantined.stage)
    stats.attempts += 1
    stats.errors += 1
    stats.quarantined += 1


def _restore_normalized(store: CheckpointStore | None,
                        config: PipelineConfig,
                        diagnostics: PipelineDiagnostics,
                        checkpoint) -> tuple[list, list] | None:
    """Adopt the normalized+filtered stage artifact, if usable."""
    if store is None or not config.resume:
        return None
    payload = store.load_artifact("normalized")
    if payload is None:
        return None
    try:
        filtered = [DisengagementRecord.from_dict(d)
                    for d in payload["disengagements"]]
        mileage = [MonthlyMileage.from_dict(m)
                   for m in payload["mileage"]]
        norm_stats = NormalizationStats(**payload["normalization"])
        filter_stats = FilterStats(**payload["filters"])
    except Exception:
        checkpoint.corrupt_entries += 1
        checkpoint.notes.append(
            "artifact 'normalized' could not be decoded; recomputed")
        return None
    diagnostics.normalization = norm_stats
    diagnostics.filters = filter_stats
    checkpoint.artifacts_restored += 1
    return filtered, mileage


def _restore_dictionary(store: CheckpointStore | None,
                        config: PipelineConfig,
                        checkpoint) -> FailureDictionary | None:
    """Adopt the built-dictionary stage artifact, if usable."""
    if store is None or not config.resume:
        return None
    payload = store.load_artifact("dictionary")
    if payload is None:
        return None
    try:
        dictionary = FailureDictionary.from_json(json.dumps(payload))
    except Exception:
        checkpoint.corrupt_entries += 1
        checkpoint.notes.append(
            "artifact 'dictionary' could not be decoded; recomputed")
        return None
    checkpoint.artifacts_restored += 1
    return dictionary


def _restore_tag(entry: dict, record, checkpoint) -> bool:
    try:
        tag = FaultTag(entry["tag"])
        category = FailureCategory(entry["category"])
    except Exception:
        checkpoint.corrupt_entries += 1
        checkpoint.notes.append(
            f"tag entry for {_record_id(record)!r} unusable; "
            "recomputed")
        return False
    record.tag = tag
    record.category = category
    return True


def _note_unusable(guard: StageGuard, entry: dict) -> None:
    checkpoint = guard.health.checkpoint
    checkpoint.corrupt_entries += 1
    checkpoint.notes.append(
        f"journal entry with outcome {entry.get('outcome')!r} "
        "unusable; recomputed")


# ----------------------------------------------------------------------
# Shared helpers.
# ----------------------------------------------------------------------

def _non_blank(lines: list[str]) -> int:
    """Count the non-blank lines (blank ones are not 'unparsed')."""
    return sum(1 for line in lines if line.strip())


def record_id(record) -> str:
    """A stable unit id for one disengagement record.

    Records without provenance get a content-derived id rather than a
    positional one: a position shifts whenever an earlier record is
    filtered or quarantined, which would silently re-key the unit
    across a resume.
    """
    if record.source_document is not None:
        return f"{record.source_document}:{record.source_line}"
    digest = hashlib.sha256("|".join((
        record.manufacturer, record.month, record.description,
    )).encode("utf-8")).hexdigest()[:16]
    return f"record:{digest}"


#: Backward-compatible alias (the id became public API when the query
#: layer's by-id index started exposing it).
_record_id = record_id


def _unknown_tag():
    """Degraded tagging outcome: the explicit UNKNOWN tag/category."""
    from ..nlp.tagger import TagResult

    return TagResult(
        tag=FaultTag.UNKNOWN,
        category=category_of(FaultTag.UNKNOWN),
        confident=False)


def _degraded_dictionary() -> FailureDictionary:
    """Fallback when the corpus-expanded dictionary build fails."""
    warnings.warn(
        "expanded dictionary build failed; falling back to the "
        "hand-curated seed dictionary",
        DegradedModeWarning, stacklevel=2)
    return FailureDictionary.from_seeds()


def _through_ocr(document: RawDocument, ocr_stage: OcrStage | None,
                 config: PipelineConfig,
                 diagnostics: PipelineDiagnostics) -> list[str]:
    if ocr_stage is None:
        return list(document.lines)
    rng = child_generator(config.seed, f"ocr:{document.document_id}")
    return ocr_stage.process(document, rng, diagnostics.ocr)


def _attach_truth(document: RawDocument, parsed) -> None:
    """Copy ground-truth tags onto parsed records by source line.

    Line numbers are stable through the OCR channel (lines are never
    merged or split), so (document, line) identifies the record.
    """
    truth_by_line = {r.source_line: r
                     for r in document.truth_disengagements}
    for record in parsed:
        truth = truth_by_line.get(record.source_line)
        if truth is not None:
            record.truth_tag = truth.truth_tag


def _build_dictionary(records, config: PipelineConfig) -> FailureDictionary:
    if config.dictionary_mode == "seed":
        return FailureDictionary.from_seeds()
    texts = [r.description for r in records]
    return FailureDictionary.build(texts)
