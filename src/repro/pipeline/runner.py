"""End-to-end pipeline orchestration (Fig. 1)."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParseError
from ..nlp.dictionary import FailureDictionary
from ..nlp.evaluation import evaluate_tagger
from ..nlp.tagger import VotingTagger
from ..parsing import (
    default_registry,
    filter_records,
    parse_accident_report,
)
from ..parsing.normalize import (
    NormalizationStats,
    normalize_accident,
    normalize_records,
)
from ..rng import child_generator
from ..synth.dataset import SyntheticCorpus, generate_corpus
from ..synth.reports import RawDocument
from .config import PipelineConfig
from .stages import OcrStage, PipelineDiagnostics
from .store import FailureDatabase


@dataclass
class PipelineResult:
    """Output of one pipeline run."""

    database: FailureDatabase
    diagnostics: PipelineDiagnostics
    config: PipelineConfig


def run_pipeline(config: PipelineConfig | None = None) -> PipelineResult:
    """Synthesize the corpus and process it end to end."""
    config = config or PipelineConfig()
    corpus = generate_corpus(config.seed, config.manufacturers)
    return process_corpus(corpus, config)


def process_corpus(corpus: SyntheticCorpus,
                   config: PipelineConfig | None = None) -> PipelineResult:
    """Process an existing raw corpus through Stages II-IV."""
    config = config or PipelineConfig()
    diagnostics = PipelineDiagnostics()
    database = FailureDatabase()

    ocr_stage = OcrStage(
        config.scanner_profile, config.correction_enabled,
        config.fallback_threshold) if config.ocr_enabled else None
    registry = default_registry()

    raw_disengagements = []
    raw_mileage = []
    for document in corpus.disengagement_documents:
        lines = _through_ocr(document, ocr_stage, config, diagnostics)
        try:
            parsed = registry.resolve(lines).parse(
                lines, document.document_id)
        except ParseError:
            diagnostics.parse.unparsed_lines += len(lines)
            continue
        diagnostics.parse.documents += 1
        diagnostics.parse.disengagements_parsed += len(
            parsed.disengagements)
        diagnostics.parse.mileage_cells_parsed += len(parsed.mileage)
        diagnostics.parse.unparsed_lines += sum(
            1 for line in parsed.unparsed_lines if line.strip())
        if config.attach_truth:
            _attach_truth(document, parsed.disengagements)
        raw_disengagements.extend(parsed.disengagements)
        raw_mileage.extend(parsed.mileage)

    for document in corpus.accident_documents:
        lines = _through_ocr(document, ocr_stage, config, diagnostics)
        try:
            accident = parse_accident_report(
                lines, document.document_id)
        except ParseError:
            diagnostics.parse.unparsed_lines += len(lines)
            continue
        diagnostics.parse.accidents_parsed += 1
        database.accidents.append(normalize_accident(accident))

    normalized, mileage, norm_stats = normalize_records(
        raw_disengagements, raw_mileage)
    diagnostics.normalization = norm_stats

    filtered, filter_stats = filter_records(
        normalized, drop_planned=config.drop_planned)
    diagnostics.filters = filter_stats

    dictionary = _build_dictionary(filtered, config)
    diagnostics.dictionary_entries = len(dictionary)
    tagger = VotingTagger(dictionary)
    for record in filtered:
        result = tagger.tag(record.description)
        record.tag = result.tag
        record.category = result.category

    if config.attach_truth:
        diagnostics.tagging = evaluate_tagger(tagger, filtered)

    database.disengagements = filtered
    database.mileage = mileage
    return PipelineResult(
        database=database, diagnostics=diagnostics, config=config)


def _through_ocr(document: RawDocument, ocr_stage: OcrStage | None,
                 config: PipelineConfig,
                 diagnostics: PipelineDiagnostics) -> list[str]:
    if ocr_stage is None:
        return list(document.lines)
    rng = child_generator(config.seed, f"ocr:{document.document_id}")
    return ocr_stage.process(document, rng, diagnostics.ocr)


def _attach_truth(document: RawDocument, parsed) -> None:
    """Copy ground-truth tags onto parsed records by source line.

    Line numbers are stable through the OCR channel (lines are never
    merged or split), so (document, line) identifies the record.
    """
    truth_by_line = {r.source_line: r
                     for r in document.truth_disengagements}
    for record in parsed:
        truth = truth_by_line.get(record.source_line)
        if truth is not None:
            record.truth_tag = truth.truth_tag


def _build_dictionary(records, config: PipelineConfig) -> FailureDictionary:
    if config.dictionary_mode == "seed":
        return FailureDictionary.from_seeds()
    texts = [r.description for r in records]
    return FailureDictionary.build(texts)
