"""End-to-end pipeline orchestration (Fig. 1).

Every per-document and per-record step runs through a
:class:`~repro.pipeline.resilience.StageGuard`, so one bad unit of
work is retried, degraded, or quarantined according to the configured
:class:`~repro.pipeline.resilience.FailurePolicy` instead of aborting
the whole run.  A clean run draws no randomness from the guard, so
resilient output is byte-identical to the historical unguarded
pipeline.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..errors import DegradedModeWarning, ParseError, QuarantinedError
from ..nlp.dictionary import FailureDictionary
from ..nlp.evaluation import evaluate_tagger
from ..nlp.tagger import VotingTagger
from ..parsing import (
    default_registry,
    filter_records,
    parse_accident_report,
)
from ..parsing.normalize import (
    NormalizationStats,
    normalize_accident,
    normalize_records,
)
from ..rng import child_generator
from ..synth.dataset import SyntheticCorpus, generate_corpus
from ..synth.reports import RawDocument
from ..taxonomy import FaultTag, category_of
from .chaos import ChaosInjector
from .config import PipelineConfig
from .resilience import StageGuard
from .stages import OcrStage, PipelineDiagnostics
from .store import FailureDatabase


@dataclass
class PipelineResult:
    """Output of one pipeline run."""

    database: FailureDatabase
    diagnostics: PipelineDiagnostics
    config: PipelineConfig


def run_pipeline(config: PipelineConfig | None = None) -> PipelineResult:
    """Synthesize the corpus and process it end to end."""
    config = config or PipelineConfig()
    corpus = generate_corpus(config.seed, config.manufacturers)
    return process_corpus(corpus, config)


def process_corpus(corpus: SyntheticCorpus,
                   config: PipelineConfig | None = None) -> PipelineResult:
    """Process an existing raw corpus through Stages II-IV."""
    config = config or PipelineConfig()
    diagnostics = PipelineDiagnostics()
    database = FailureDatabase()
    guard = StageGuard(
        policy=config.resolved_policy(),
        seed=config.seed,
        quarantine=database.quarantine,
        chaos=(ChaosInjector(config.chaos, config.seed)
               if config.chaos is not None else None))
    diagnostics.health = guard.health

    ocr_stage = OcrStage(
        config.scanner_profile, config.correction_enabled,
        config.fallback_threshold) if config.ocr_enabled else None
    registry = default_registry()

    raw_disengagements = []
    raw_mileage = []
    for document in corpus.disengagement_documents:
        try:
            lines = guard.run(
                "ocr", document.document_id,
                lambda: _through_ocr(document, ocr_stage, config,
                                     diagnostics))
        except QuarantinedError:
            continue
        try:
            parsed = guard.run(
                "parse", document.document_id,
                lambda: registry.resolve(lines).parse(
                    lines, document.document_id),
                expected=(ParseError,))
        except ParseError:
            diagnostics.parse.unparsed_lines += _non_blank(lines)
            continue
        except QuarantinedError:
            continue
        diagnostics.parse.documents += 1
        diagnostics.parse.disengagements_parsed += len(
            parsed.disengagements)
        diagnostics.parse.mileage_cells_parsed += len(parsed.mileage)
        diagnostics.parse.unparsed_lines += sum(
            1 for line in parsed.unparsed_lines if line.strip())
        if config.attach_truth:
            _attach_truth(document, parsed.disengagements)
        raw_disengagements.extend(parsed.disengagements)
        raw_mileage.extend(parsed.mileage)

    for document in corpus.accident_documents:
        try:
            lines = guard.run(
                "ocr", document.document_id,
                lambda: _through_ocr(document, ocr_stage, config,
                                     diagnostics))
        except QuarantinedError:
            continue
        try:
            accident = guard.run(
                "parse", document.document_id,
                lambda: parse_accident_report(
                    lines, document.document_id),
                expected=(ParseError,))
        except ParseError:
            diagnostics.parse.unparsed_lines += _non_blank(lines)
            continue
        except QuarantinedError:
            continue
        try:
            normalized_accident = guard.run(
                "normalize", document.document_id,
                lambda: normalize_accident(accident))
        except QuarantinedError:
            continue
        diagnostics.parse.accidents_parsed += 1
        database.accidents.append(normalized_accident)

    normalized, mileage, norm_stats = normalize_records(
        raw_disengagements, raw_mileage)
    diagnostics.normalization = norm_stats

    filtered, filter_stats = filter_records(
        normalized, drop_planned=config.drop_planned)
    diagnostics.filters = filter_stats

    dictionary = guard.run(
        "dictionary", "corpus",
        lambda: _build_dictionary(filtered, config),
        fallback=lambda: _degraded_dictionary())
    diagnostics.dictionary_entries = len(dictionary)
    tagger = VotingTagger(dictionary)
    for index, record in enumerate(filtered):
        result = guard.run(
            "tag", _record_id(record, index),
            lambda: tagger.tag(record.description),
            fallback=_unknown_tag)
        record.tag = result.tag
        record.category = result.category

    if config.attach_truth:
        diagnostics.tagging = evaluate_tagger(tagger, filtered)

    database.disengagements = filtered
    database.mileage = mileage
    return PipelineResult(
        database=database, diagnostics=diagnostics, config=config)


def _non_blank(lines: list[str]) -> int:
    """Count the non-blank lines (blank ones are not 'unparsed')."""
    return sum(1 for line in lines if line.strip())


def _record_id(record, index: int) -> str:
    """A stable unit id for one disengagement record."""
    if record.source_document is not None:
        return f"{record.source_document}:{record.source_line}"
    return f"record:{index}"


def _unknown_tag():
    """Degraded tagging outcome: the explicit UNKNOWN tag/category."""
    from ..nlp.tagger import TagResult

    return TagResult(
        tag=FaultTag.UNKNOWN,
        category=category_of(FaultTag.UNKNOWN),
        confident=False)


def _degraded_dictionary() -> FailureDictionary:
    """Fallback when the corpus-expanded dictionary build fails."""
    warnings.warn(
        "expanded dictionary build failed; falling back to the "
        "hand-curated seed dictionary",
        DegradedModeWarning, stacklevel=2)
    return FailureDictionary.from_seeds()


def _through_ocr(document: RawDocument, ocr_stage: OcrStage | None,
                 config: PipelineConfig,
                 diagnostics: PipelineDiagnostics) -> list[str]:
    if ocr_stage is None:
        return list(document.lines)
    rng = child_generator(config.seed, f"ocr:{document.document_id}")
    return ocr_stage.process(document, rng, diagnostics.ocr)


def _attach_truth(document: RawDocument, parsed) -> None:
    """Copy ground-truth tags onto parsed records by source line.

    Line numbers are stable through the OCR channel (lines are never
    merged or split), so (document, line) identifies the record.
    """
    truth_by_line = {r.source_line: r
                     for r in document.truth_disengagements}
    for record in parsed:
        truth = truth_by_line.get(record.source_line)
        if truth is not None:
            record.truth_tag = truth.truth_tag


def _build_dictionary(records, config: PipelineConfig) -> FailureDictionary:
    if config.dictionary_mode == "seed":
        return FailureDictionary.from_seeds()
    texts = [r.description for r in records]
    return FailureDictionary.build(texts)
