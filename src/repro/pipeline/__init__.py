"""End-to-end pipeline: Stage I (data) through Stage IV inputs.

``run_pipeline`` wires everything together: synthesize (or accept) a
raw corpus, push it through the OCR channel, parse and normalize it,
tag every narrative with the NLP engine, and assemble the consolidated
failure database that the statistical analyses consume.  The
:mod:`~repro.pipeline.resilience` layer isolates per-unit failures
(quarantine, bounded retry, degraded modes) and the
:mod:`~repro.pipeline.chaos` harness injects faults to prove it.
"""

from .chaos import ChaosConfig, ChaosError, ChaosInjector
from .config import PipelineConfig
from .resilience import (
    FailurePolicy,
    Quarantine,
    QuarantineEntry,
    RunHealth,
    StageGuard,
    retry_with_backoff,
)
from .store import FailureDatabase
from .stages import PipelineDiagnostics
from .runner import PipelineResult, run_pipeline, process_corpus

__all__ = [
    "ChaosConfig",
    "ChaosError",
    "ChaosInjector",
    "FailurePolicy",
    "PipelineConfig",
    "FailureDatabase",
    "PipelineDiagnostics",
    "PipelineResult",
    "Quarantine",
    "QuarantineEntry",
    "RunHealth",
    "StageGuard",
    "retry_with_backoff",
    "run_pipeline",
    "process_corpus",
]
