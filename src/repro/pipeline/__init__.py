"""End-to-end pipeline: Stage I (data) through Stage IV inputs.

``run_pipeline`` wires everything together: synthesize (or accept) a
raw corpus, push it through the OCR channel, parse and normalize it,
tag every narrative with the NLP engine, and assemble the consolidated
failure database that the statistical analyses consume.  The
:mod:`~repro.pipeline.resilience` layer isolates per-unit failures
(quarantine, bounded retry, degraded modes), the
:mod:`~repro.pipeline.checkpoint` layer journals completed work so a
killed run resumes instead of restarting, and the
:mod:`~repro.pipeline.chaos` harness injects faults — including
simulated hard crashes — to prove both.
"""

from .chaos import (
    CRASH_POINTS,
    SWAP_POINTS,
    ChaosConfig,
    ChaosError,
    ChaosInjector,
    CrashController,
    CrashPoint,
    ServingChaos,
    SimulatedCrash,
)
from .checkpoint import (
    CheckpointStore,
    atomic_write_text,
    config_fingerprint,
)
from .config import PipelineConfig
from .ingest import (
    IngestReport,
    IngestResult,
    document_digest,
    ingest_corpus,
)
from .parallel import (
    PROCESS_POOL_MIN_WORKERS,
    WORKER_MODES,
    BatchOutcome,
    ParallelExecutor,
    ParallelStats,
    resolve_batch_size,
)
from .resilience import (
    CheckpointHealth,
    FailurePolicy,
    Quarantine,
    QuarantineEntry,
    RunHealth,
    StageGuard,
    retry_with_backoff,
)
from .store import FailureDatabase
from .stages import PipelineDiagnostics
from .runner import PipelineResult, run_pipeline, process_corpus

__all__ = [
    "CRASH_POINTS",
    "ChaosConfig",
    "ChaosError",
    "ChaosInjector",
    "CheckpointHealth",
    "CheckpointStore",
    "CrashController",
    "CrashPoint",
    "FailurePolicy",
    "IngestReport",
    "IngestResult",
    "BatchOutcome",
    "PROCESS_POOL_MIN_WORKERS",
    "ParallelExecutor",
    "ParallelStats",
    "PipelineConfig",
    "FailureDatabase",
    "PipelineDiagnostics",
    "PipelineResult",
    "WORKER_MODES",
    "Quarantine",
    "QuarantineEntry",
    "RunHealth",
    "SWAP_POINTS",
    "ServingChaos",
    "SimulatedCrash",
    "StageGuard",
    "atomic_write_text",
    "config_fingerprint",
    "document_digest",
    "ingest_corpus",
    "resolve_batch_size",
    "retry_with_backoff",
    "run_pipeline",
    "process_corpus",
]
