"""End-to-end pipeline: Stage I (data) through Stage IV inputs.

``run_pipeline`` wires everything together: synthesize (or accept) a
raw corpus, push it through the OCR channel, parse and normalize it,
tag every narrative with the NLP engine, and assemble the consolidated
failure database that the statistical analyses consume.
"""

from .config import PipelineConfig
from .store import FailureDatabase
from .stages import PipelineDiagnostics
from .runner import PipelineResult, run_pipeline, process_corpus

__all__ = [
    "PipelineConfig",
    "FailureDatabase",
    "PipelineDiagnostics",
    "PipelineResult",
    "run_pipeline",
    "process_corpus",
]
