"""Stage-level fault injection for the pipeline itself.

Where :mod:`repro.stpa.fault_injection` injects faults into the *AV
control structure*, this module injects faults into the *reproduction
pipeline*: any per-unit step can be wrapped with seeded exception,
corruption, or latency injection, to prove that the quarantine, retry,
and threshold-abort paths of :mod:`repro.pipeline.resilience` actually
work.

Injection is deterministic: the decision for a given ``(stage,
unit_id)`` pair is drawn from its own child stream of the pipeline
seed, so whether a particular document gets a fault does not depend on
processing order — or on which worker of a ``--workers N`` pool runs
it — and two runs with the same seed inject the same faults.  Kill
points are a coordinator concern: under a worker pool,
:class:`CrashController` checks fire in the merge loop (workers never
see a :class:`CrashPoint`), so a parallel run dies at the same unit
boundary, with the same journal state, as a serial one.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import TypeVar

from ..errors import TransientError
from ..rng import child_generator

T = TypeVar("T")

#: Recognized injection kinds.
CHAOS_KINDS = ("exception", "transient", "corruption", "latency")

#: Named kill points a :class:`CrashPoint` may target.  The ``mid-*``
#: points fire halfway through the corresponding per-unit loop (so a
#: partially journaled stage is exercised); the bare names fire at the
#: stage's completion boundary; ``save`` fires inside
#: :meth:`~repro.pipeline.store.FailureDatabase.save`, after the
#: temporary file is written but before it is atomically published.
CRASH_POINTS = (
    "mid-parse-documents",
    "parse-documents",
    "accident-documents",
    "normalize",
    "dictionary",
    "mid-tag",
    "tag",
    "save",
)


class ChaosError(RuntimeError):
    """The fault the chaos harness injects.

    Deliberately *not* a :class:`~repro.errors.ReproError`: it models
    an arbitrary unexpected crash (the kind real messy corpora
    produce), so it exercises the resilience layer's generic handling
    rather than any domain-specific catch.
    """


class SimulatedCrash(BaseException):
    """A simulated *hard* process death (OOM kill, SIGKILL, power loss).

    Derives from :class:`BaseException`, not :class:`Exception`, so it
    cannot be caught by the resilience layer's quarantine/retry paths —
    exactly like a real ``kill -9``, nothing in the pipeline may
    survive it.  Only the crash-recovery tests (and the CLI process
    boundary) see it.
    """


@dataclass(frozen=True)
class CrashPoint:
    """Kill-point injection: die at a named pipeline boundary.

    Used by the crash-recovery tests and the CLI ``--crash-at`` flag to
    prove that a run killed anywhere leaves only a valid checkpoint
    directory behind, and that ``--resume`` then reproduces the
    uninterrupted run byte for byte.
    """

    #: One of :data:`CRASH_POINTS`.
    at: str

    def __post_init__(self) -> None:
        if self.at not in CRASH_POINTS:
            raise ValueError(
                f"crash point must be one of {CRASH_POINTS}, "
                f"got {self.at!r}")


class CrashController:
    """Raises :class:`SimulatedCrash` when its kill point is reached.

    A ``None`` point makes every check a no-op, so the production path
    costs one attribute test per boundary.
    """

    def __init__(self, point: CrashPoint | None = None) -> None:
        self.point = point

    def reached(self, name: str) -> None:
        """Die if ``name`` is the configured kill point."""
        if self.point is not None and self.point.at == name:
            raise SimulatedCrash(
                f"simulated hard crash at {name!r}")

    def reached_mid(self, name: str, index: int, total: int) -> None:
        """Die at ``name`` halfway through a loop of ``total`` units."""
        if self.point is not None and index == total // 2:
            self.reached(name)


@dataclass(frozen=True)
class ChaosConfig:
    """What to inject, where, and how often."""

    #: Stage name to target (``ocr``, ``parse``, ``normalize``,
    #: ``dictionary``, ``tag`` — anything a guard names).
    stage: str
    #: Probability a unit at that stage gets a fault.
    rate: float = 0.1
    #: One of :data:`CHAOS_KINDS`.
    kind: str = "exception"
    #: ``latency`` kind: seconds of injected delay per hit.
    latency_s: float = 0.001

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"chaos kind must be one of {CHAOS_KINDS}, "
                f"got {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"chaos rate {self.rate} outside [0, 1]")
        if self.latency_s < 0:
            raise ValueError("latency_s must be >= 0")


class ChaosInjector:
    """Wraps per-unit stage callables with seeded fault injection."""

    def __init__(self, config: ChaosConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed
        self.injected = 0

    def wrap(self, stage: str, unit_id: str,
             func: Callable[[], T]) -> Callable[[], T]:
        """Return ``func`` with this injector's fault applied.

        Non-targeted stages pass through untouched.  The injection
        decision is re-drawn per call, so a retried transient fault can
        genuinely succeed on a later attempt.
        """
        if stage != self.config.stage:
            return func
        rng = child_generator(self.seed, f"chaos:{stage}:{unit_id}")

        def chaotic() -> T:
            if rng.random() >= self.config.rate:
                return func()
            self.injected += 1
            kind = self.config.kind
            if kind == "exception":
                raise ChaosError(
                    f"injected fault at {stage}:{unit_id}")
            if kind == "transient":
                raise TransientError(
                    f"injected transient fault at {stage}:{unit_id}")
            if kind == "latency":
                time.sleep(self.config.latency_s)
                return func()
            return _corrupt(func(), rng)

        return chaotic


def _corrupt(value: T, rng) -> T:
    """Garble a stage output in a type-appropriate way.

    Lists of strings (document lines) get a corrupted slice; strings
    get reversed; anything else is replaced with ``None`` — a shape
    violation downstream code must survive or quarantine.
    """
    if isinstance(value, list) and value \
            and all(isinstance(v, str) for v in value):
        corrupted = list(value)
        index = int(rng.integers(len(corrupted)))
        corrupted[index] = "\x00" + corrupted[index][::-1]
        return corrupted  # type: ignore[return-value]
    if isinstance(value, str):
        return value[::-1]  # type: ignore[return-value]
    return None  # type: ignore[return-value]
