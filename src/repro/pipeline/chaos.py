"""Stage-level fault injection for the pipeline itself.

Where :mod:`repro.stpa.fault_injection` injects faults into the *AV
control structure*, this module injects faults into the *reproduction
pipeline*: any per-unit step can be wrapped with seeded exception,
corruption, or latency injection, to prove that the quarantine, retry,
and threshold-abort paths of :mod:`repro.pipeline.resilience` actually
work.

Injection is deterministic: the decision for a given ``(stage,
unit_id)`` pair is drawn from its own child stream of the pipeline
seed, so whether a particular document gets a fault does not depend on
processing order — or on which worker of a ``--workers N`` pool runs
it — and two runs with the same seed inject the same faults.  Kill
points are a coordinator concern: under a worker pool,
:class:`CrashController` checks fire in the merge loop (workers never
see a :class:`CrashPoint`), so a parallel run dies at the same unit
boundary, with the same journal state, as a serial one.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import TypeVar

from ..errors import TransientError
from ..rng import child_generator

T = TypeVar("T")

#: Recognized injection kinds.
CHAOS_KINDS = ("exception", "transient", "corruption", "latency")

#: Named kill points a :class:`CrashPoint` may target.  The ``mid-*``
#: points fire halfway through the corresponding per-unit loop (so a
#: partially journaled stage is exercised); the bare names fire at the
#: stage's completion boundary; ``save`` fires inside
#: :meth:`~repro.pipeline.store.FailureDatabase.save`, after the
#: temporary file is written but before it is atomically published.
CRASH_POINTS = (
    "mid-parse-documents",
    "parse-documents",
    "accident-documents",
    "normalize",
    "dictionary",
    "mid-tag",
    "tag",
    "save",
)

#: Kill points inside a serving-layer snapshot swap (see
#: :class:`~repro.query.snapshot.SnapshotManager`).  ``swap-load``
#: fires before the candidate file is read, ``swap-build`` after the
#: candidate decoded but before its index is built, ``swap-publish``
#: after the index is built but before the generation pointer moves —
#: the last instant a crash could possibly tear the swap.  A crash at
#: any of them must leave the previous snapshot serving untouched.
SWAP_POINTS = (
    "swap-load",
    "swap-build",
    "swap-publish",
)


class ChaosError(RuntimeError):
    """The fault the chaos harness injects.

    Deliberately *not* a :class:`~repro.errors.ReproError`: it models
    an arbitrary unexpected crash (the kind real messy corpora
    produce), so it exercises the resilience layer's generic handling
    rather than any domain-specific catch.
    """


class SimulatedCrash(BaseException):
    """A simulated *hard* process death (OOM kill, SIGKILL, power loss).

    Derives from :class:`BaseException`, not :class:`Exception`, so it
    cannot be caught by the resilience layer's quarantine/retry paths —
    exactly like a real ``kill -9``, nothing in the pipeline may
    survive it.  Only the crash-recovery tests (and the CLI process
    boundary) see it.
    """


@dataclass(frozen=True)
class CrashPoint:
    """Kill-point injection: die at a named pipeline boundary.

    Used by the crash-recovery tests and the CLI ``--crash-at`` flag to
    prove that a run killed anywhere leaves only a valid checkpoint
    directory behind, and that ``--resume`` then reproduces the
    uninterrupted run byte for byte.
    """

    #: One of :data:`CRASH_POINTS`.
    at: str

    def __post_init__(self) -> None:
        if self.at not in CRASH_POINTS:
            raise ValueError(
                f"crash point must be one of {CRASH_POINTS}, "
                f"got {self.at!r}")


class CrashController:
    """Raises :class:`SimulatedCrash` when its kill point is reached.

    A ``None`` point makes every check a no-op, so the production path
    costs one attribute test per boundary.
    """

    def __init__(self, point: CrashPoint | None = None) -> None:
        self.point = point

    def reached(self, name: str) -> None:
        """Die if ``name`` is the configured kill point."""
        if self.point is not None and self.point.at == name:
            raise SimulatedCrash(
                f"simulated hard crash at {name!r}")

    def reached_mid(self, name: str, index: int, total: int) -> None:
        """Die at ``name`` halfway through a loop of ``total`` units."""
        if self.point is not None and index == total // 2:
            self.reached(name)


@dataclass(frozen=True)
class ChaosConfig:
    """What to inject, where, and how often."""

    #: Stage name to target (``ocr``, ``parse``, ``normalize``,
    #: ``dictionary``, ``tag`` — anything a guard names).
    stage: str
    #: Probability a unit at that stage gets a fault.
    rate: float = 0.1
    #: One of :data:`CHAOS_KINDS`.
    kind: str = "exception"
    #: ``latency`` kind: seconds of injected delay per hit.
    latency_s: float = 0.001

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"chaos kind must be one of {CHAOS_KINDS}, "
                f"got {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"chaos rate {self.rate} outside [0, 1]")
        if self.latency_s < 0:
            raise ValueError("latency_s must be >= 0")


class ChaosInjector:
    """Wraps per-unit stage callables with seeded fault injection."""

    def __init__(self, config: ChaosConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed
        self.injected = 0

    def wrap(self, stage: str, unit_id: str,
             func: Callable[[], T]) -> Callable[[], T]:
        """Return ``func`` with this injector's fault applied.

        Non-targeted stages pass through untouched.  The injection
        decision is re-drawn per call, so a retried transient fault can
        genuinely succeed on a later attempt.
        """
        if stage != self.config.stage:
            return func
        rng = child_generator(self.seed, f"chaos:{stage}:{unit_id}")

        def chaotic() -> T:
            if rng.random() >= self.config.rate:
                return func()
            self.injected += 1
            kind = self.config.kind
            if kind == "exception":
                raise ChaosError(
                    f"injected fault at {stage}:{unit_id}")
            if kind == "transient":
                raise TransientError(
                    f"injected transient fault at {stage}:{unit_id}")
            if kind == "latency":
                time.sleep(self.config.latency_s)
                return func()
            return _corrupt(func(), rng)

        return chaotic


@dataclass
class ServingChaos:
    """Fault injection for the always-on serving layer.

    Where :class:`ChaosInjector` attacks the *pipeline*, this attacks
    the *serving* lifecycle: candidate databases can be garbled before
    they are decoded (``corrupt_candidate``), a snapshot swap can die
    at any :data:`SWAP_POINTS` boundary (``crash_at``), and query
    handling can be slowed to exercise deadlines and admission
    control (``slow_query_s``/``slow_query_rate``).

    Slow-query decisions are drawn from a seeded child stream so a
    chaos run is reproducible; corruption is deterministic (the same
    candidate text always garbles the same way).
    """

    #: Die at this swap boundary (one of :data:`SWAP_POINTS`).
    crash_at: str | None = None
    #: Garble every candidate database text before it is decoded.
    corrupt_candidate: bool = False
    #: Injected per-query delay in seconds (when the rate draws a hit).
    slow_query_s: float = 0.0
    #: Probability a query gets the injected delay.
    slow_query_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.crash_at is not None and self.crash_at not in SWAP_POINTS:
            raise ValueError(
                f"crash_at must be one of {SWAP_POINTS}, "
                f"got {self.crash_at!r}")
        if not 0.0 <= self.slow_query_rate <= 1.0:
            raise ValueError(
                f"slow_query_rate {self.slow_query_rate} outside [0, 1]")
        if self.slow_query_s < 0:
            raise ValueError("slow_query_s must be >= 0")
        self._rng = child_generator(self.seed, "serving-chaos")
        self._lock = threading.Lock()
        self.injected_corruptions = 0
        self.injected_delays = 0

    def reached(self, point: str) -> None:
        """Die hard if ``point`` is the configured swap kill point."""
        if self.crash_at == point:
            raise SimulatedCrash(f"simulated hard crash at {point!r}")

    def corrupt_text(self, text: str) -> str:
        """Garble a candidate database payload (torn-file simulation).

        Truncates the tail and prepends a NUL — both JSON decoding and
        any checksum verification must fail, exactly like a torn or
        bit-rotted file; the serving layer must quarantine it.
        """
        if not self.corrupt_candidate:
            return text
        self.injected_corruptions += 1
        return "\x00" + text[: max(1, len(text) // 2)]

    def maybe_slow_query(self) -> float:
        """Sleep the injected latency (if drawn); returns the delay."""
        if self.slow_query_s <= 0 or self.slow_query_rate <= 0:
            return 0.0
        # The rng and counters are shared across handler threads.
        with self._lock:
            hit = self._rng.random() < self.slow_query_rate
            if hit:
                self.injected_delays += 1
        if not hit:
            return 0.0
        time.sleep(self.slow_query_s)
        return self.slow_query_s


def _corrupt(value: T, rng) -> T:
    """Garble a stage output in a type-appropriate way.

    Lists of strings (document lines) get a corrupted slice; strings
    get reversed; anything else is replaced with ``None`` — a shape
    violation downstream code must survive or quarantine.
    """
    if isinstance(value, list) and value \
            and all(isinstance(v, str) for v in value):
        corrupted = list(value)
        index = int(rng.integers(len(corrupted)))
        corrupted[index] = "\x00" + corrupted[index][::-1]
        return corrupted  # type: ignore[return-value]
    if isinstance(value, str):
        return value[::-1]  # type: ignore[return-value]
    return None  # type: ignore[return-value]
