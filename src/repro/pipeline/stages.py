"""Stage implementations and diagnostics for the pipeline runner."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nlp.evaluation import TaggingReport
from ..ocr import (
    ManualTranscriptionQueue,
    OcrCorrector,
    OcrEngine,
    Scanner,
    apply_fallback,
)
from ..ocr.scanner import ScannerProfile
from ..parsing.filters import FilterStats
from ..parsing.normalize import NormalizationStats
from ..synth.reports import RawDocument
from .parallel import ParallelStats
from .resilience import RunHealth


@dataclass
class OcrStageStats:
    """Diagnostics of the OCR stage."""

    documents: int = 0
    pages: int = 0
    lines: int = 0
    mean_confidence: float = 1.0
    fallback_pages: int = 0
    fallback_lines: int = 0


@dataclass
class ParseStageStats:
    """Diagnostics of the parsing stage."""

    documents: int = 0
    disengagements_parsed: int = 0
    mileage_cells_parsed: int = 0
    accidents_parsed: int = 0
    unparsed_lines: int = 0
    #: Documents whose Stage II outcome was replayed from a checkpoint
    #: journal instead of recomputed (always 0 without ``--resume``).
    documents_restored: int = 0


@dataclass
class PipelineDiagnostics:
    """Everything the pipeline observed about its own run."""

    ocr: OcrStageStats = field(default_factory=OcrStageStats)
    parse: ParseStageStats = field(default_factory=ParseStageStats)
    normalization: NormalizationStats = field(
        default_factory=NormalizationStats)
    filters: FilterStats = field(default_factory=FilterStats)
    #: NLP accuracy vs. ground truth (when truth is attached).
    tagging: TaggingReport | None = None
    #: Dictionary size used for tagging.
    dictionary_entries: int = 0
    #: What the resilience layer observed (errors, retries,
    #: degradations, quarantine counts per stage).
    health: RunHealth = field(default_factory=RunHealth)
    #: Per-stage wall times plus worker-pool accounting (worker
    #: count, fanned-out units, estimated speedup vs serial).
    parallel: ParallelStats = field(default_factory=ParallelStats)
    #: JSON-able snapshot of the run's metrics registry (``None``
    #: unless the run was started with ``metrics_enabled``).
    metrics: dict | None = None
    #: Where the run published its JSONL span trace (``None`` unless
    #: tracing was active).
    trace_path: str | None = None


class OcrStage:
    """Stage I/II boundary: scan, recognize, correct, fall back."""

    def __init__(self, profile: ScannerProfile,
                 correction_enabled: bool,
                 fallback_threshold: float) -> None:
        self.scanner = Scanner(profile)
        self.engine = OcrEngine()
        self.corrector = OcrCorrector() if correction_enabled else None
        self.queue = ManualTranscriptionQueue(
            threshold=fallback_threshold)

    def process(self, document: RawDocument, rng: np.random.Generator,
                stats: OcrStageStats) -> list[str]:
        """Run one raw document through the OCR channel."""
        scanned = self.scanner.scan(
            document.document_id, document.lines, rng)
        result = self.engine.recognize(scanned, rng)
        lines = apply_fallback(scanned, result, self.queue)
        if self.corrector is not None:
            lines = self.corrector.correct_lines(lines)
        stats.documents += 1
        stats.pages += len(scanned.pages)
        stats.lines += len(lines)
        # Running mean of document confidences.
        n = stats.documents
        stats.mean_confidence += (
            result.mean_confidence - stats.mean_confidence) / n
        stats.fallback_pages = self.queue.pages_transcribed
        stats.fallback_lines = self.queue.lines_transcribed
        return lines
