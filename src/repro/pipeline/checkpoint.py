"""Crash-safe persistence for the pipeline (durable checkpoints).

A long Stage II-IV run over thousands of heterogeneous DMV scans must
survive a hard process death (OOM kill, SIGKILL, power loss) without
losing completed work.  This module provides the durability layer:

* :func:`atomic_write_text` — the commit primitive used everywhere a
  file is published: write to a temporary file in the same directory,
  flush + ``fsync``, then :func:`os.replace` over the destination and
  ``fsync`` the directory.  A reader can never observe a torn file;
  a crash mid-write leaves the previous version intact.
* :class:`CheckpointStore` — a checkpoint directory holding per-unit
  *journals* (append-only JSONL, one self-checksummed line per
  completed unit of work) and stage-level *artifacts* (whole-stage
  outputs committed atomically), all bound to a ``manifest.json``
  that records the pipeline config fingerprint and library version.

Integrity rules:

* Every journal line and artifact carries a sha256 over its canonical
  JSON body.  A torn tail line (crash mid-append) or a corrupted entry
  fails its checksum, is dropped, counted in
  :class:`~repro.pipeline.resilience.CheckpointHealth`, and the unit
  is *recomputed* — corrupted state is never trusted.
* A manifest whose config fingerprint or library version does not
  match the resuming run marks the whole directory **stale**: it is
  discarded and rebuilt, so checkpoints from a different config/seed
  can never silently leak into a run.

Checkpoint directory layout::

    <dir>/
      manifest.json     # format version, library version, fingerprint
      documents.jsonl   # journal: per-document Stage II outcomes
      accidents.jsonl   # journal: per accident-document outcomes
      tags.jsonl        # journal: per-record Stage III tag results
      normalized.json   # artifact: normalized+filtered record set
      dictionary.json   # artifact: the built failure dictionary
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import IO, Any

from .resilience import CheckpointHealth

try:  # optional accelerator; the stdlib encoder is the contract
    import orjson as _orjson
except ImportError:  # pragma: no cover - depends on environment
    _orjson = None

#: Bumped whenever the checkpoint layout changes incompatibly; a
#: mismatch marks the directory stale.
CHECKPOINT_FORMAT = 1

#: Names of the per-unit journals a store manages.
JOURNAL_NAMES = ("documents", "accidents", "tags")

#: Names of the stage-level artifacts a store manages.
ARTIFACT_NAMES = ("normalized", "dictionary")

#: Names of the binary (non-JSON) artifacts a store manages — today
#: just the columnar database snapshot a columnar-backend run leaves
#: behind at the end.
BLOB_ARTIFACT_NAMES = ("database",)

#: How many journal appends may ride in process/OS buffers before the
#: writer forces an ``fsync`` (stage boundaries always force one).
#: This bounds the recompute window after a hard crash — at most this
#: many completed units are lost and redone — while keeping the fsync
#: cost of a clean run negligible.
FSYNC_INTERVAL = 512


def sha256_text(text: str) -> str:
    """Hex sha256 of ``text`` (UTF-8)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding used for checksums.

    Sorted keys, compact separators, raw (non-escaped) unicode.
    ``orjson`` (when present) is used because checkpoint
    serialization sits on the per-unit hot path and it is several
    times faster than the stdlib encoder.  The two encoders agree on
    every payload the pipeline journals; where they could ever differ
    (exotic float notation), a checkpoint written under one encoder
    and read under the other merely fails its checksum and is
    recomputed — integrity never depends on encoder parity.
    """
    if _orjson is not None:
        return _orjson.dumps(obj, option=_orjson.OPT_SORT_KEYS).decode()
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=False)


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry update (rename durability) to disk."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str | Path, text: str | bytes, *,
                      durable: bool = True,
                      crash_hook: Any = None) -> None:
    """Atomically publish ``text`` (str or UTF-8 bytes) at ``path``.

    The temporary file lives in the destination directory (same
    filesystem, so :func:`os.replace` is atomic); a crash at any point
    leaves either the old content or the new content, never a torn
    mix.  ``durable=False`` skips the fsyncs (tests, benchmarks).

    ``crash_hook`` (crash-recovery testing only) is called after the
    temporary file is written but before it is published — the window
    a real mid-save crash would die in.  If it raises, the temporary
    file is left behind, exactly like real crash debris.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    if isinstance(text, str):
        text = text.encode("utf-8")
    with open(tmp, "wb") as handle:
        handle.write(text)
        handle.flush()
        if durable:
            os.fsync(handle.fileno())
    if crash_hook is not None:
        crash_hook()
    try:
        os.replace(tmp, path)
    except OSError:
        tmp.unlink(missing_ok=True)
        raise
    if durable:
        _fsync_directory(path.parent)


# ----------------------------------------------------------------------
# Journals: append-only, per-line checksummed JSONL.
# ----------------------------------------------------------------------

def _dumps_bytes(obj: Any) -> bytes:
    """:func:`canonical_json` as UTF-8 bytes (avoids a decode/encode
    round-trip on the journal hot path)."""
    if _orjson is not None:
        return _orjson.dumps(obj, option=_orjson.OPT_SORT_KEYS)
    return canonical_json(obj).encode("utf-8")


def _journal_line_bytes(unit_id: str, body: dict[str, Any]) -> bytes:
    # The body is serialized exactly once; embedding the canonical
    # bytes directly keeps the checksum consistent with what
    # ``read_journal`` recomputes after parsing.
    body_bytes = _dumps_bytes(body)
    digest = hashlib.sha256(body_bytes).hexdigest()
    return (b'{"body":' + body_bytes
            + b',"sha256":"' + digest.encode("ascii")
            + b'","unit":' + _dumps_bytes(unit_id) + b"}")


def journal_line(unit_id: str, body: dict[str, Any]) -> str:
    """Encode one journal entry as a self-checksummed line."""
    return _journal_line_bytes(unit_id, body).decode("utf-8")


def read_journal(path: str | Path) -> tuple[dict[str, dict[str, Any]], int]:
    """Read a journal, dropping torn or checksum-failed lines.

    Returns ``(entries, corrupt)``: a unit-id -> body mapping (a
    re-journaled unit's latest line wins) and the number of lines
    dropped for failing integrity.  A missing file is an empty
    journal.
    """
    path = Path(path)
    entries: dict[str, dict[str, Any]] = {}
    corrupt = 0
    if not path.exists():
        return entries, corrupt
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                unit = record["unit"]
                body = record["body"]
                ok = (isinstance(unit, str) and isinstance(body, dict)
                      and record["sha256"]
                      == hashlib.sha256(
                          _dumps_bytes(body)).hexdigest())
            except (json.JSONDecodeError, KeyError, TypeError):
                ok = False
            if not ok:
                corrupt += 1
                continue
            entries[unit] = body
    return entries, corrupt


class _JournalWriter:
    """Appends checksummed lines, fsyncing every few entries.

    Appends ride in the stream buffer between syncs; a hard crash can
    lose at most ``FSYNC_INTERVAL`` buffered lines (plus one torn tail
    line, which the reader's checksum drops), and every lost unit is
    simply recomputed on resume.
    """

    def __init__(self, path: Path, durable: bool) -> None:
        self.path = path
        self.durable = durable
        self._handle: IO[bytes] | None = None
        self._pending = 0

    def append(self, unit_id: str, body: dict[str, Any]) -> None:
        if self._handle is None:
            self._handle = open(self.path, "ab")
        self._handle.write(_journal_line_bytes(unit_id, body) + b"\n")
        self._pending += 1
        if self._pending >= FSYNC_INTERVAL:
            self.sync()

    def append_many(self,
                    entries: list[tuple[str, dict[str, Any]]]) -> None:
        """Append a chunk of entries with one buffered write.

        The on-disk bytes — per-line checksums included — are
        identical to repeated :meth:`append`, so torn-tail recovery
        is unchanged; batching only collapses the chunk into a single
        ``write`` call.
        """
        if not entries:
            return
        if self._handle is None:
            self._handle = open(self.path, "ab")
        self._handle.write(b"".join(
            _journal_line_bytes(unit_id, body) + b"\n"
            for unit_id, body in entries))
        self._pending += len(entries)
        if self._pending >= FSYNC_INTERVAL:
            self.sync()

    def sync(self) -> None:
        if self._handle is not None and self._pending:
            self._handle.flush()
            if self.durable:
                os.fsync(self._handle.fileno())
            self._pending = 0

    def close(self) -> None:
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None


# ----------------------------------------------------------------------
# The store.
# ----------------------------------------------------------------------

class CheckpointStore:
    """One checkpoint directory, bound to one pipeline configuration.

    ``open(resume=...)`` validates the manifest (creating or resetting
    the directory as needed); afterwards the runner reads restored
    journal entries / artifacts and appends newly completed units.
    All observations land in :attr:`health` for diagnostics.
    """

    MANIFEST = "manifest.json"

    def __init__(self, directory: str | Path, fingerprint: str, *,
                 durable: bool = True,
                 health: CheckpointHealth | None = None) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.durable = durable
        self.health = health if health is not None else CheckpointHealth()
        self.health.enabled = True
        self._writers: dict[str, _JournalWriter] = {}
        self._restored: dict[str, dict[str, dict[str, Any]]] = {}

    # -- lifecycle ------------------------------------------------------

    def open(self, resume: bool = False) -> None:
        """Prepare the directory: validate, reset, or adopt it."""
        self.directory.mkdir(parents=True, exist_ok=True)
        self.health.resumed = resume
        if not resume:
            self._reset()
            return
        reason = self._manifest_problem()
        if reason is not None:
            self.health.stale = True
            self.health.stale_reason = reason
            self._reset()
            return
        for name in JOURNAL_NAMES:
            entries, corrupt = read_journal(self._journal_path(name))
            self._restored[name] = entries
            if corrupt:
                self.health.corrupt_entries += corrupt
                self.health.notes.append(
                    f"journal {name!r}: {corrupt} corrupt "
                    "entr(y/ies) dropped and recomputed")

    def close(self) -> None:
        """Flush and close every journal writer."""
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()

    def sync(self) -> None:
        """Force journal durability (called at stage boundaries)."""
        for writer in self._writers.values():
            writer.sync()

    def _reset(self) -> None:
        """Discard all checkpoint state and write a fresh manifest."""
        self._restored = {}
        for name in JOURNAL_NAMES:
            self._journal_path(name).unlink(missing_ok=True)
        for name in ARTIFACT_NAMES:
            self._artifact_path(name).unlink(missing_ok=True)
        for name in BLOB_ARTIFACT_NAMES:
            self._blob_path(name).unlink(missing_ok=True)
            self._blob_sidecar_path(name).unlink(missing_ok=True)
        for leftover in self.directory.glob(".*.tmp.*"):
            leftover.unlink(missing_ok=True)
        atomic_write_text(
            self.directory / self.MANIFEST,
            canonical_json({
                "format": CHECKPOINT_FORMAT,
                "version": _library_version(),
                "fingerprint": self.fingerprint,
            }),
            durable=self.durable)

    def _manifest_problem(self) -> str | None:
        """Why this directory cannot be resumed (None = resumable)."""
        path = self.directory / self.MANIFEST
        if not path.exists():
            return "missing manifest"
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return "corrupt manifest"
        if not isinstance(manifest, dict):
            return "corrupt manifest"
        if manifest.get("format") != CHECKPOINT_FORMAT:
            return (f"checkpoint format {manifest.get('format')!r} != "
                    f"{CHECKPOINT_FORMAT}")
        if manifest.get("version") != _library_version():
            return (f"library version {manifest.get('version')!r} != "
                    f"{_library_version()!r}")
        if manifest.get("fingerprint") != self.fingerprint:
            return "config/seed fingerprint mismatch"
        return None

    # -- journals -------------------------------------------------------

    def _journal_path(self, name: str) -> Path:
        return self.directory / f"{name}.jsonl"

    def restored(self, name: str) -> dict[str, dict[str, Any]]:
        """Journal entries available for restore (empty if fresh)."""
        return self._restored.get(name, {})

    def append(self, name: str, unit_id: str,
               body: dict[str, Any]) -> None:
        """Journal one completed unit of work."""
        self._writer(name).append(unit_id, body)

    def append_many(self, name: str,
                    entries: list[tuple[str, dict[str, Any]]]) -> None:
        """Journal a chunk of completed units in one buffered append."""
        self._writer(name).append_many(entries)

    def _writer(self, name: str) -> _JournalWriter:
        writer = self._writers.get(name)
        if writer is None:
            writer = self._writers[name] = _JournalWriter(
                self._journal_path(name), self.durable)
        return writer

    # -- artifacts ------------------------------------------------------

    def _artifact_path(self, name: str) -> Path:
        return self.directory / f"{name}.json"

    def write_artifact(self, name: str, payload: Any) -> None:
        """Atomically commit one stage-level artifact."""
        # Like the journal: one serialization pass, checksum over the
        # embedded canonical bytes.
        payload_bytes = _dumps_bytes(payload)
        digest = hashlib.sha256(payload_bytes).hexdigest()
        atomic_write_text(
            self._artifact_path(name),
            b'{"payload":' + payload_bytes
            + b',"sha256":"' + digest.encode("ascii") + b'"}',
            durable=self.durable)

    def load_artifact(self, name: str) -> Any | None:
        """A restored artifact payload, or None (absent or corrupt)."""
        path = self._artifact_path(name)
        if not path.exists():
            return None
        try:
            wrapper = json.loads(path.read_text(encoding="utf-8"))
            payload = wrapper["payload"]
            ok = (wrapper["sha256"] == hashlib.sha256(
                _dumps_bytes(payload)).hexdigest())
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            ok = False
            payload = None
        if not ok:
            self.health.corrupt_entries += 1
            self.health.notes.append(
                f"artifact {name!r} failed its checksum; recomputed")
            return None
        return payload

    # -- binary artifacts ----------------------------------------------

    def _blob_path(self, name: str) -> Path:
        return self.directory / f"{name}.bin"

    def _blob_sidecar_path(self, name: str) -> Path:
        return self.directory / f"{name}.bin.sha256"

    def write_blob_artifact(self, name: str, payload: bytes) -> None:
        """Atomically commit one binary artifact + sha256 sidecar.

        Binary payloads (the columnar database snapshot) cannot embed
        their checksum the way the JSON artifacts do, so the digest
        lives in a ``sha256sum``-compatible sidecar instead.
        """
        atomic_write_text(self._blob_path(name), payload,
                          durable=self.durable)
        atomic_write_text(
            self._blob_sidecar_path(name),
            f"{hashlib.sha256(payload).hexdigest()}  {name}.bin\n",
            durable=self.durable)

    def load_blob_artifact(self, name: str) -> bytes | None:
        """A restored binary artifact, or None (absent or corrupt)."""
        path = self._blob_path(name)
        if not path.exists():
            return None
        try:
            payload = path.read_bytes()
            expected = self._blob_sidecar_path(name) \
                .read_text(encoding="utf-8").split()
            ok = bool(expected) and (
                hashlib.sha256(payload).hexdigest() == expected[0])
        except OSError:
            ok = False
            payload = None
        if not ok:
            self.health.corrupt_entries += 1
            self.health.notes.append(
                f"binary artifact {name!r} failed its checksum; "
                "recomputed")
            return None
        return payload

    def drop_blob_artifact(self, name: str) -> None:
        """Delete one binary artifact (stale after an ingest delta)."""
        self._blob_path(name).unlink(missing_ok=True)
        self._blob_sidecar_path(name).unlink(missing_ok=True)


def config_fingerprint(config: Any) -> str:
    """A stable digest of every config knob that shapes the output.

    Two runs share checkpoints only if their fingerprints match.
    Checkpointing knobs themselves, the kill-point
    (:class:`~repro.pipeline.chaos.CrashPoint`), and the
    ``workers``/``worker_mode``/``batch_size`` parallelism knobs, and
    the observability knobs (``trace_enabled``/``trace_dir``/
    ``metrics_enabled``) are deliberately excluded: a crash aborts a
    run but never changes any unit's output, a worker pool is an
    execution strategy with byte-identical output, and tracing/metrics
    only observe — so a resume may drop ``--crash-at``, switch worker
    counts, or toggle tracing and still adopt the pre-crash
    checkpoints.
    """
    chaos = None
    if config.chaos is not None:
        chaos = dataclasses.asdict(config.chaos)
    payload = {
        "seed": config.seed,
        "manufacturers": config.manufacturers,
        "scanner_profile": dataclasses.asdict(config.scanner_profile),
        "ocr_enabled": config.ocr_enabled,
        "correction_enabled": config.correction_enabled,
        "fallback_threshold": config.fallback_threshold,
        "dictionary_mode": config.dictionary_mode,
        "drop_planned": config.drop_planned,
        "attach_truth": config.attach_truth,
        "failure_policy": config.failure_policy,
        "max_error_rate": config.max_error_rate,
        "max_retries": config.max_retries,
        "chaos": chaos,
    }
    return sha256_text(canonical_json(payload))


def _library_version() -> str:
    # Imported lazily: repro/__init__ imports the pipeline package, so
    # a module-level import here would be circular.
    from .. import __version__

    return __version__
