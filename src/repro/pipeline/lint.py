"""Consistency linting for a failure database.

A data-quality gate a production deployment would run after ingest:
checks internal invariants of the consolidated database and returns
typed findings instead of raising, so an operator can triage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..calibration.manufacturers import PERIODS
from ..taxonomy import FailureCategory, category_of
from ..units import months_between
from .store import FailureDatabase


class Severity(enum.Enum):
    """Finding severity."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One lint finding."""

    severity: Severity
    check: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - formatting only
        return f"[{self.severity}] {self.check}: {self.message}"


def _coverage_months() -> set[str]:
    months: set[str] = set()
    for start, end in PERIODS.values():
        months.update(months_between(start, end))
    return months


def lint_database(db: FailureDatabase) -> list[Finding]:
    """Run all consistency checks; returns findings (possibly empty)."""
    findings: list[Finding] = []
    coverage = _coverage_months()

    # --- disengagement records -------------------------------------
    for index, record in enumerate(db.disengagements):
        where = f"disengagement[{index}] ({record.manufacturer})"
        if record.month not in coverage:
            findings.append(Finding(
                Severity.ERROR, "month-coverage",
                f"{where}: month {record.month} outside the study "
                "window"))
        if record.event_date is not None and \
                record.event_date.strftime("%Y-%m") != record.month:
            findings.append(Finding(
                Severity.ERROR, "date-month-mismatch",
                f"{where}: event date {record.event_date} does not "
                f"match month {record.month}"))
        if record.tag is not None and record.category is not None \
                and category_of(record.tag) is not record.category:
            findings.append(Finding(
                Severity.ERROR, "tag-category-mismatch",
                f"{where}: tag {record.tag} implies "
                f"{category_of(record.tag)}, record says "
                f"{record.category}"))
        if record.reaction_time_s is not None \
                and record.reaction_time_s > 3600:
            findings.append(Finding(
                Severity.WARNING, "implausible-reaction-time",
                f"{where}: reaction time {record.reaction_time_s}s"))
        if not record.description.strip():
            findings.append(Finding(
                Severity.ERROR, "empty-description", where))

    # --- mileage ----------------------------------------------------
    for index, cell in enumerate(db.mileage):
        if cell.miles < 0:
            findings.append(Finding(
                Severity.ERROR, "negative-miles",
                f"mileage[{index}] ({cell.manufacturer} {cell.month})"))
        if cell.month not in coverage:
            findings.append(Finding(
                Severity.ERROR, "mileage-month-coverage",
                f"mileage[{index}] ({cell.manufacturer}): "
                f"{cell.month} outside the study window"))

    # --- events without exposure ------------------------------------
    miles = db.miles_by_manufacturer()
    for name, records in db.disengagements_by_manufacturer().items():
        if records and miles.get(name, 0.0) <= 0:
            findings.append(Finding(
                Severity.ERROR, "events-without-miles",
                f"{name}: {len(records)} disengagements but no "
                "mileage"))

    # --- accidents ---------------------------------------------------
    for index, accident in enumerate(db.accidents):
        where = f"accident[{index}] ({accident.manufacturer})"
        if accident.month is not None and accident.month not in coverage:
            findings.append(Finding(
                Severity.ERROR, "accident-month-coverage",
                f"{where}: month {accident.month} outside the study "
                "window"))
        if accident.av_speed_mph is not None \
                and accident.av_speed_mph > 100:
            findings.append(Finding(
                Severity.WARNING, "implausible-speed",
                f"{where}: AV speed {accident.av_speed_mph} mph"))
        if accident.redacted and accident.vehicle_id is not None:
            findings.append(Finding(
                Severity.ERROR, "redaction-leak",
                f"{where}: redacted but carries a vehicle id"))

    # --- aggregate sanity --------------------------------------------
    untagged = sum(1 for r in db.disengagements if r.tag is None)
    if untagged:
        findings.append(Finding(
            Severity.WARNING, "untagged-records",
            f"{untagged} disengagements lack an NLP tag"))
    unknown = sum(
        1 for r in db.disengagements
        if r.category is FailureCategory.UNKNOWN
        and r.manufacturer != "Tesla")
    total = sum(1 for r in db.disengagements
                if r.manufacturer != "Tesla")
    if total and unknown / total > 0.25:
        findings.append(Finding(
            Severity.WARNING, "unknown-category-share",
            f"{unknown}/{total} non-Tesla records are Unknown-C: the "
            "dictionary may be stale"))
    return findings


def errors(findings: list[Finding]) -> list[Finding]:
    """Just the ERROR-severity findings."""
    return [f for f in findings if f.severity is Severity.ERROR]
