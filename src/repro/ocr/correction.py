"""Post-OCR text correction.

Two repair strategies, both conservative (never fire on text that is
already a known word or a plausible number):

* **Lexicon repair** — single-edit lookup of unknown words against a
  domain lexicon (vehicle/driving/failure vocabulary harvested from
  the narrative templates plus common English glue words).
* **Pattern repair** — digit de-confusion inside date-like, time-like,
  and number-like spans (``O3/l4/2O15`` -> ``03/14/2015``).
"""

from __future__ import annotations

import re

from ..synth.narratives import TEMPLATES

_DIGIT_FIX = str.maketrans({
    "O": "0", "o": "0", "l": "1", "I": "1", "|": "1",
    "S": "5", "B": "8", "Z": "2", "g": "9",
})

#: Spans that should be purely numeric (with their separators).
_NUMERIC_SPAN_RE = re.compile(
    r"\b[\dOolI|SBZg]{1,4}([/:.\-][\dOolI|SBZg]{1,4}){1,3}\b")

_WORD_RE = re.compile(r"[A-Za-z]{3,}")

_GLUE_WORDS = (
    "the and for with from that this was were not did didn't your are "
    "has had its all one two out due too own other after before during "
    "into over under behind ahead near while when where which vehicle "
    "driver control manual mode test safely resumed took immediate "
    "disengaged disengagement disengage autonomous report section "
    "miles reaction time car road weather highway freeway interstate "
    "street suburban rural parking city sunny cloudy overcast raining "
    "clear night takeover request planned injection precautionary "
    "initiated date month end state california traffic accident "
    "manufacturer reporting period unknown none description location "
    "collision speed injuries operation safe auto events "
    # Month abbreviations and fleet vocabulary: without these the
    # single-edit repair "fixes" Sep -> See and Leaf -> Lead.
    "jan feb mar apr may jun jul aug sep oct nov dec "
    "january february march april june july august september october "
    "november december "
    "leaf alfa bravo charlie delta echo foxtrot golf hotel india "
    "juliett kilo lima mike oscar papa quebec romeo sierra tango "
    "uniform victor whiskey xray yankee zulu "
    "initiator cause mercedes benz bosch delphi nissan tesla "
    "volkswagen waymo cruise gmcruise ford honda uber atc bmw").split()


def _harvest_lexicon() -> frozenset[str]:
    words: set[str] = set(_GLUE_WORDS)
    for templates in TEMPLATES.values():
        for template in templates:
            for word in _WORD_RE.findall(template.text):
                words.add(word.lower())
            for choice in template.choices:
                for word in _WORD_RE.findall(choice):
                    words.add(word.lower())
    return frozenset(words)


#: Alphabetic token that swallowed digit look-alikes (``p1anned``,
#: ``SECTI0N``): mostly letters, no hyphen, at least one confusable.
_DIGIT_IN_WORD_RE = re.compile(
    r"\b[A-Za-z]+[0l1|5I][A-Za-z0l1|5I]*[A-Za-z]\b")

_WORD_DIGIT_FIX = str.maketrans({"0": "o", "1": "l", "|": "l", "5": "s"})

#: Digraph confusions the channel applies that a single-edit repair
#: cannot undo (they change word length by one in a correlated way).
_DIGRAPH_SWAPS = (("rn", "m"), ("m", "rn"), ("cl", "d"), ("d", "cl"))


def _single_edits(word: str) -> set[str]:
    """All strings within one edit of ``word`` (lowercase letters)."""
    letters = "abcdefghijklmnopqrstuvwxyz"
    splits = [(word[:i], word[i:]) for i in range(len(word) + 1)]
    deletes = {left + right[1:] for left, right in splits if right}
    replaces = {left + c + right[1:]
                for left, right in splits if right for c in letters}
    inserts = {left + c + right for left, right in splits for c in letters}
    return deletes | replaces | inserts


class OcrCorrector:
    """Conservative post-OCR repair pass."""

    def __init__(self, extra_lexicon: set[str] | None = None) -> None:
        lexicon = set(_harvest_lexicon())
        if extra_lexicon:
            lexicon.update(w.lower() for w in extra_lexicon)
        self._lexicon = frozenset(lexicon)

    @property
    def lexicon(self) -> frozenset[str]:
        """The correction lexicon in use."""
        return self._lexicon

    def correct_line(self, line: str) -> str:
        """Repair one OCR-output line."""
        line = _NUMERIC_SPAN_RE.sub(
            lambda m: m.group().translate(_DIGIT_FIX), line)
        line = _DIGIT_IN_WORD_RE.sub(self._repair_digit_word, line)
        return _WORD_RE.sub(self._repair_word, line)

    def _repair_digit_word(self, match: re.Match[str]) -> str:
        """Repair digits that crept inside an alphabetic word."""
        token = match.group()
        letters = sum(c.isalpha() for c in token)
        if letters < 0.6 * len(token):
            return token
        candidate = token.translate(_WORD_DIGIT_FIX)
        if candidate.lower() in self._lexicon:
            return _match_case(token, candidate.lower())
        return token

    def correct_lines(self, lines: list[str]) -> list[str]:
        """Repair a whole document."""
        return [self.correct_line(line) for line in lines]

    def _repair_word(self, match: re.Match[str]) -> str:
        word = match.group()
        lowered = word.lower()
        if lowered in self._lexicon:
            return word
        for source, target in _DIGRAPH_SWAPS:
            if source in lowered:
                candidate = lowered.replace(source, target, 1)
                if candidate in self._lexicon:
                    return _match_case(word, candidate)
        candidates = [c for c in _single_edits(lowered)
                      if c in self._lexicon]
        if len(candidates) == 1:
            return _match_case(word, candidates[0])
        return word


def _match_case(original: str, repaired: str) -> str:
    """Transfer the original word's casing onto the repaired word."""
    if original.isupper():
        return repaired.upper()
    if original[:1].isupper():
        return repaired.capitalize()
    return repaired
