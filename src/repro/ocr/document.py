"""Scanned-document and OCR-output models."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import OcrError

#: Number of text lines per simulated scanned page.
LINES_PER_PAGE = 40


@dataclass
class ScannedPage:
    """One page of a scanned report.

    ``true_lines`` is the underlying clean text (what a perfect OCR
    would return); ``quality`` in (0, 1] models scan resolution and
    contrast.  The OCR engine never reads ``true_lines`` directly —
    it reads them *through* the noise channel parameterized by
    ``quality``.
    """

    page_number: int
    true_lines: list[str]
    quality: float

    def __post_init__(self) -> None:
        if not 0.0 < self.quality <= 1.0:
            raise OcrError(
                f"page {self.page_number} quality {self.quality} outside "
                "(0, 1]")


@dataclass
class ScannedDocument:
    """A scanned report: ordered pages plus provenance."""

    document_id: str
    pages: list[ScannedPage] = field(default_factory=list)

    @property
    def line_count(self) -> int:
        """Total clean lines across pages."""
        return sum(len(p.true_lines) for p in self.pages)

    def true_lines(self) -> list[str]:
        """The clean text of the whole document (testing/fallback)."""
        return [line for page in self.pages for line in page.true_lines]


@dataclass
class OcrLine:
    """One recognized line with the engine's confidence estimate."""

    text: str
    confidence: float
    page_number: int


@dataclass
class OcrResult:
    """Output of OCR over a whole document."""

    document_id: str
    lines: list[OcrLine] = field(default_factory=list)

    def texts(self) -> list[str]:
        """Just the recognized text lines."""
        return [line.text for line in self.lines]

    def page_confidence(self, page_number: int) -> float:
        """Mean confidence of a page's lines (1.0 for empty pages)."""
        values = [l.confidence for l in self.lines
                  if l.page_number == page_number]
        if not values:
            return 1.0
        return sum(values) / len(values)

    @property
    def mean_confidence(self) -> float:
        """Mean confidence across all lines (1.0 for empty output)."""
        if not self.lines:
            return 1.0
        return sum(l.confidence for l in self.lines) / len(self.lines)


def paginate(document_id: str, lines: list[str],
             qualities: list[float]) -> ScannedDocument:
    """Split ``lines`` into pages with the given per-page qualities."""
    pages = []
    for index in range(0, len(lines), LINES_PER_PAGE):
        page_number = index // LINES_PER_PAGE
        if page_number >= len(qualities):
            raise OcrError(
                f"document {document_id}: {len(qualities)} qualities for "
                f"{page_number + 1}+ pages")
        pages.append(ScannedPage(
            page_number=page_number,
            true_lines=lines[index:index + LINES_PER_PAGE],
            quality=qualities[page_number],
        ))
    return ScannedDocument(document_id=document_id, pages=pages)


def page_count(line_total: int) -> int:
    """Number of pages needed for ``line_total`` lines."""
    return max(1, -(-line_total // LINES_PER_PAGE))
