"""Character-confusion model for the OCR noise channel.

Models the classic Tesseract failure modes on low-quality scans:
visually similar glyph substitutions (``O``/``0``, ``l``/``1``,
``rn``/``m``), occasional character drops, and spurious specks read as
punctuation.  Confusions are weighted: a degraded page substitutes
more aggressively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: (source, replacement, relative weight).  Multi-character sources
#: model digraph confusions.
DEFAULT_CONFUSIONS: tuple[tuple[str, str, float], ...] = (
    ("O", "0", 1.0), ("0", "O", 1.0),
    ("l", "1", 1.0), ("1", "l", 0.6),
    ("I", "1", 0.8), ("i", "ı", 0.1),
    ("S", "5", 0.6), ("5", "S", 0.5),
    ("B", "8", 0.5), ("8", "B", 0.4),
    ("Z", "2", 0.5), ("2", "Z", 0.3),
    ("g", "9", 0.3), ("9", "g", 0.2),
    ("rn", "m", 0.8), ("m", "rn", 0.5),
    ("cl", "d", 0.4), ("d", "cl", 0.2),
    ("e", "c", 0.4), ("c", "e", 0.3),
    ("a", "o", 0.3), ("o", "a", 0.2),
    ("t", "f", 0.3), ("f", "t", 0.2),
    ("h", "b", 0.2), ("u", "v", 0.3),
)

#: Characters the channel never touches, to keep table structure
#: recoverable the way the authors' manual normalization did: field
#: separators survive scanning far better than glyph interiors.
PROTECTED_CHARACTERS = frozenset("—|;—\n\t")


@dataclass
class ConfusionModel:
    """Samplable character-confusion table."""

    confusions: tuple[tuple[str, str, float], ...] = DEFAULT_CONFUSIONS
    #: Probability scale of a confusion firing at quality 0.
    base_rate: float = 0.25
    #: Probability of dropping a character entirely at quality 0.
    drop_rate: float = 0.01
    _by_source: dict[str, list[tuple[str, float]]] = field(
        init=False, default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for source, replacement, weight in self.confusions:
            self._by_source.setdefault(source, []).append(
                (replacement, weight))

    def corrupt_line(self, line: str, quality: float,
                     rng: np.random.Generator) -> tuple[str, int]:
        """Pass ``line`` through the channel at the given ``quality``.

        Returns the corrupted line and the number of corruptions
        applied (used by the engine to compute confidence).
        """
        severity = max(0.0, 1.0 - quality)
        sub_p = self.base_rate * severity
        drop_p = self.drop_rate * severity
        if severity <= 0.0:
            return line, 0
        out: list[str] = []
        corruptions = 0
        i = 0
        while i < len(line):
            # Digraph confusions get first shot.
            digraph = line[i:i + 2]
            if (len(digraph) == 2 and digraph in self._by_source
                    and rng.random() < sub_p):
                out.append(self._pick(digraph, rng))
                corruptions += 1
                i += 2
                continue
            char = line[i]
            if char in PROTECTED_CHARACTERS:
                out.append(char)
            elif char in self._by_source and rng.random() < sub_p:
                out.append(self._pick(char, rng))
                corruptions += 1
            elif char.isalpha() and rng.random() < drop_p:
                # Real engines substitute glyphs far more often than
                # they delete them, and deletions concentrate in letter
                # strokes; digits and punctuation survive.
                corruptions += 1  # dropped
            else:
                out.append(char)
            i += 1
        return "".join(out), corruptions

    def _pick(self, source: str, rng: np.random.Generator) -> str:
        options = self._by_source[source]
        if len(options) == 1:
            return options[0][0]
        weights = np.array([w for _, w in options])
        weights = weights / weights.sum()
        return options[int(rng.choice(len(options), p=weights))][0]
