"""Manual-transcription fallback for pages OCR could not read.

The paper: "In certain cases, where the Tesseract OCR failed (because
of low-resolution scans or inability to recognize some table formats),
we manually converted the documents to machine-encoded text."  We model
that with a confidence threshold: pages whose mean OCR confidence falls
below it are queued for manual transcription, which returns the page's
true text (a human reads the original scan).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .document import OcrResult, ScannedDocument

#: Pages below this mean confidence are transcribed by hand.
DEFAULT_CONFIDENCE_THRESHOLD = 0.75


@dataclass
class ManualTranscriptionQueue:
    """Pages routed to a human transcriber, with effort accounting."""

    threshold: float = DEFAULT_CONFIDENCE_THRESHOLD
    pages_transcribed: int = 0
    lines_transcribed: int = 0
    documents_touched: set[str] = field(default_factory=set)

    def needs_fallback(self, result: OcrResult, page_number: int) -> bool:
        """Whether ``page_number`` of ``result`` is below threshold."""
        return result.page_confidence(page_number) < self.threshold

    def transcribe(self, document: ScannedDocument,
                   page_number: int) -> list[str]:
        """Manually transcribe one page (returns its true text)."""
        self.pages_transcribed += 1
        page = document.pages[page_number]
        self.lines_transcribed += len(page.true_lines)
        self.documents_touched.add(document.document_id)
        return list(page.true_lines)


def apply_fallback(document: ScannedDocument, result: OcrResult,
                   queue: ManualTranscriptionQueue) -> list[str]:
    """Merge OCR output with manual transcriptions of bad pages.

    Returns the final machine-encoded line list for downstream parsing:
    OCR text for confident pages, human transcription for the rest.
    """
    lines: list[str] = []
    for page in document.pages:
        if queue.needs_fallback(result, page.page_number):
            lines.extend(queue.transcribe(document, page.page_number))
        else:
            lines.extend(l.text for l in result.lines
                         if l.page_number == page.page_number)
    return lines
