"""Scanner model: per-page scan quality.

Most pages of the DMV corpus scanned cleanly; a minority were
low-resolution or skewed enough that Tesseract failed and the authors
transcribed them by hand.  The scanner draws per-page quality from a
Beta distribution concentrated near 1, with a configurable fraction of
"bad" pages drawn from a low-quality regime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import OcrError
from .document import ScannedDocument, page_count, paginate


@dataclass(frozen=True)
class ScannerProfile:
    """Quality regime of a scanning campaign."""

    #: Beta parameters for normal pages (mean near 0.95).
    good_alpha: float = 18.0
    good_beta: float = 1.0
    #: Fraction of pages scanned badly.
    bad_page_rate: float = 0.04
    #: Uniform quality range for bad pages.
    bad_low: float = 0.05
    bad_high: float = 0.45

    def __post_init__(self) -> None:
        if not 0.0 <= self.bad_page_rate <= 1.0:
            raise OcrError(
                f"bad_page_rate {self.bad_page_rate} outside [0, 1]")
        if not 0.0 < self.bad_low < self.bad_high <= 1.0:
            raise OcrError("bad-page quality range must satisfy "
                           "0 < low < high <= 1")


#: A perfect scanner (used to disable the OCR channel in ablations).
PERFECT_PROFILE = ScannerProfile(
    good_alpha=1.0, good_beta=1e-9, bad_page_rate=0.0)


class Scanner:
    """Turns raw report text into a :class:`ScannedDocument`."""

    def __init__(self, profile: ScannerProfile | None = None) -> None:
        self.profile = profile or ScannerProfile()

    def scan(self, document_id: str, lines: list[str],
             rng: np.random.Generator) -> ScannedDocument:
        """Scan ``lines`` into pages with sampled quality."""
        pages = page_count(len(lines))
        qualities = []
        for _ in range(pages):
            if rng.random() < self.profile.bad_page_rate:
                quality = rng.uniform(self.profile.bad_low,
                                      self.profile.bad_high)
            else:
                quality = rng.beta(self.profile.good_alpha,
                                   self.profile.good_beta)
            qualities.append(float(min(max(quality, 1e-6), 1.0)))
        return paginate(document_id, lines, qualities)
