"""OCR engine simulator.

Reads a :class:`ScannedDocument` through the character-confusion
channel and reports per-line confidence the way a real engine does:
high when few glyphs were ambiguous, degrading with page quality.
Confidence is *estimated* (the engine cannot know its true error
count), so it is the true clean fraction perturbed by estimation noise
— which is exactly what makes a fallback threshold meaningful.
"""

from __future__ import annotations

import numpy as np

from .confusion import ConfusionModel
from .document import OcrLine, OcrResult, ScannedDocument


class OcrEngine:
    """Simulated OCR engine with per-line confidence reporting."""

    def __init__(self, confusion: ConfusionModel | None = None,
                 confidence_noise: float = 0.03) -> None:
        self.confusion = confusion or ConfusionModel()
        self.confidence_noise = confidence_noise

    def recognize(self, document: ScannedDocument,
                  rng: np.random.Generator) -> OcrResult:
        """OCR the whole document."""
        result = OcrResult(document_id=document.document_id)
        for page in document.pages:
            for line in page.true_lines:
                text, corruptions = self.confusion.corrupt_line(
                    line, page.quality, rng)
                confidence = self._estimate_confidence(
                    line, corruptions, page.quality, rng)
                result.lines.append(OcrLine(
                    text=text, confidence=confidence,
                    page_number=page.page_number))
        return result

    def _estimate_confidence(self, line: str, corruptions: int,
                             quality: float,
                             rng: np.random.Generator) -> float:
        if not line:
            return 1.0
        clean_fraction = 1.0 - corruptions / max(len(line), 1)
        # The engine's own confidence blends glyph certainty with page
        # quality, plus estimation noise.
        estimate = (0.7 * clean_fraction + 0.3 * quality
                    + rng.normal(0.0, self.confidence_noise))
        return float(min(max(estimate, 0.0), 1.0))
