"""OCR substrate: scanned-document model and recognition simulator.

The real pipeline ran Google Tesseract over scanned DMV PDFs and fell
back to manual transcription where OCR failed (low-resolution scans,
unrecognized table formats).  This package simulates that channel: a
scanner that assigns per-page quality, an OCR engine that injects
character-confusion noise inversely proportional to quality and reports
per-line confidence, a post-OCR correction pass, and a manual-fallback
queue for pages below the confidence threshold.
"""

from .confusion import ConfusionModel, DEFAULT_CONFUSIONS
from .document import OcrLine, OcrResult, ScannedDocument, ScannedPage
from .scanner import Scanner, ScannerProfile
from .engine import OcrEngine
from .correction import OcrCorrector
from .fallback import ManualTranscriptionQueue, apply_fallback

__all__ = [
    "ConfusionModel",
    "DEFAULT_CONFUSIONS",
    "OcrLine",
    "OcrResult",
    "ScannedDocument",
    "ScannedPage",
    "Scanner",
    "ScannerProfile",
    "OcrEngine",
    "OcrCorrector",
    "ManualTranscriptionQueue",
    "apply_fallback",
]
