"""Embedded JSON HTTP API over a query engine — stdlib only.

A :class:`~http.server.ThreadingHTTPServer` front end for
:class:`~repro.query.engine.QueryEngine`, hardened for always-on
serving.  The API surface is **versioned**: every endpoint lives
under ``/v1/`` and the unversioned paths from earlier releases keep
working as deprecated aliases.

==============================  ==================================
``GET /v1/healthz``             liveness: status, version, db
                                fingerprint
``GET /v1/readyz``              readiness: snapshot generation +
                                degraded state (distinct from
                                liveness — see below)
``GET /v1/stats``               engine statistics (index + cache
                                counters)
``GET /v1/manufacturers``       manufacturers in the database
                                (paginable)
``GET /v1/metrics/dpm``         per-manufacturer DPM summaries
``GET /v1/metrics/apm``         per-manufacturer APM (Table VII)
``GET /v1/metrics/dpa``         per-manufacturer DPA (Table VI)
``GET|POST /v1/query``          the full typed query surface
                                (paginable when grouped)
``GET /metrics``                Prometheus text exposition
                                (infrastructure route, unversioned)
==============================  ==================================

**Versioning & deprecation.**  The unversioned legacy paths
(``/healthz``, ``/query``, …) answer identically to their ``/v1``
canonical forms but carry a ``Deprecation: true`` header and a
``Link: </v1/...>; rel="successor-version"`` pointer.  For metrics,
an alias folds into its canonical route's label so per-route
cardinality stays bounded.

**Error envelope.**  Every non-2xx response carries the same
structured body::

    {"error": {"code": "<machine-readable>",
               "message": "<human-readable>",
               "detail": <extra context or null>}}

Codes: ``invalid_query`` / ``bad_json`` / ``invalid_cursor`` /
``stale_cursor`` (400), ``not_found`` (404), ``insufficient_data``
(422), ``internal`` (500, always sanitized — never a traceback on
the wire), ``overloaded`` / ``draining`` / ``deadline_exceeded``
(503, with ``Retry-After`` and a ``retry_after_s`` detail field).

**Pagination.**  List-shaped responses (``/v1/manufacturers`` and
grouped ``/v1/query`` results) accept ``limit`` and ``cursor``.
Cursors are opaque, deterministic, and derived from the snapshot
fingerprint — a cursor issued against one generation is rejected as
``stale_cursor`` after a hot swap, so a paging client can never
silently blend generations.  Requests without either parameter get
the exact unpaginated body earlier releases served.

``GET /v1/query`` reads the query from the URL (``?metric=dpm&
group_by=manufacturer&manufacturer=Waymo&month_from=2015-01``;
repeat ``manufacturer`` to filter on several); ``POST /v1/query``
takes the same fields as a JSON object.  The ``/v1/metrics/*``
shortcuts accept the filter parameters too.

**Liveness vs readiness.**  ``/v1/healthz`` answers "is the process
up" and is always 200 while the server runs.  ``/v1/readyz`` answers
"should you send traffic": 200 ``ok`` normally, 200 ``degraded``
when the last snapshot-swap candidate was quarantined (we still
serve, from the last-good generation), 503 ``draining`` during
graceful shutdown.

**Admission control.**  At most ``max_inflight`` requests are
handled concurrently; excess load is shed with a structured
``503 + Retry-After`` instead of queueing without bound.  Each
admitted request gets a ``deadline_s`` budget; blowing it returns a
structured 503 naming the deadline.  ``/v1/healthz``,
``/v1/readyz``, and the ``/metrics`` exposition are exempt — health
probes and scrapes must work precisely when the server is saturated.

**Consistency.**  Each request captures the live
:class:`~repro.query.snapshot.Snapshot` exactly once and answers
entirely from it, so a hot-swap mid-request can never blend
generations in one response.
"""

from __future__ import annotations

import base64
import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Mapping
from urllib.parse import parse_qs, urlsplit

from .. import __version__
from ..errors import InsufficientDataError, QueryError
from ..obs.metrics import (
    HTTP_LATENCY,
    HTTP_REQUESTS,
    INDEX_RECORDS,
    QUERY_CACHE_EVICTIONS,
    QUERY_CACHE_HITS,
    QUERY_CACHE_MISSES,
    QUERY_CACHE_SIZE,
    REQUEST_TIMEOUTS,
    REQUESTS_INFLIGHT,
    REQUESTS_SHED,
    MetricsRegistry,
    default_registry,
)
from ..pipeline.chaos import ServingChaos
from ..pipeline.store import FailureDatabase
from .engine import DEFAULT_SHARDS, Query, QueryEngine
from .snapshot import DirectoryWatcher, Snapshot, SnapshotManager

#: Metric families reachable as ``/v1/metrics/<name>`` shortcuts.
METRIC_SHORTCUTS = ("dpm", "apm", "dpa")

#: The current API version prefix.
API_VERSION = "v1"

#: Canonical (versioned) API routes.
_V1_ROUTES = frozenset(
    {"/v1/healthz", "/v1/readyz", "/v1/stats", "/v1/manufacturers",
     "/v1/query"}
    | {f"/v1/metrics/{name}" for name in METRIC_SHORTCUTS})

#: Legacy unversioned alias -> canonical ``/v1`` route.  Aliases
#: answer identically but carry a ``Deprecation`` header, and fold
#: into the canonical route's metric label so per-route cardinality
#: stays bounded.  ``/metrics`` (the Prometheus exposition) is *not*
#: an alias — it is the unversioned infrastructure route.
LEGACY_ALIASES: Mapping[str, str] = {
    route[len("/v1"):]: route for route in _V1_ROUTES}

#: Routes the request metrics label individually; anything else is
#: folded into ``<unknown>`` so scanners can't explode cardinality.
_KNOWN_ROUTES = _V1_ROUTES | {"/", "/metrics"}

#: Canonical routes exempt from admission control and deadlines:
#: probes and scrapes must answer precisely when the server is
#: saturated or draining.  (Legacy aliases resolve to canonical
#: before this check, so ``/healthz`` is exempt too.)
_EXEMPT_ROUTES = frozenset({"/v1/healthz", "/v1/readyz", "/metrics"})

#: ``Retry-After`` seconds suggested on shed/drain/deadline 503s.
RETRY_AFTER_S = 1

#: How many fingerprint characters a page cursor embeds.
_CURSOR_FP_CHARS = 12


def error_envelope(code: str, message: str,
                   detail: Any = None) -> dict[str, Any]:
    """The unified error body every non-2xx response carries."""
    return {"error": {"code": code, "message": message,
                      "detail": detail}}


class _CursorError(Exception):
    """A bad page cursor (carries the envelope code to use)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def encode_cursor(fingerprint: str, offset: int) -> str:
    """Encode an opaque, deterministic page cursor.

    The cursor embeds a fingerprint prefix so it can only be redeemed
    against the snapshot that issued it — paging across a hot swap is
    a ``stale_cursor`` error, never a silent blend of generations.
    """
    token = f"{fingerprint[:_CURSOR_FP_CHARS]}:{offset}"
    return base64.urlsafe_b64encode(
        token.encode("ascii")).decode("ascii").rstrip("=")


def decode_cursor(cursor: str, fingerprint: str) -> int:
    """Decode a page cursor back to an offset, or raise.

    Raises :class:`_CursorError` with ``invalid_cursor`` for a
    malformed token and ``stale_cursor`` for a token minted by a
    different snapshot generation.
    """
    try:
        padded = cursor + "=" * (-len(cursor) % 4)
        token = base64.urlsafe_b64decode(
            padded.encode("ascii")).decode("ascii")
        prefix, sep, offset_text = token.partition(":")
        if not sep:
            raise ValueError(token)
        offset = int(offset_text)
        if offset < 0:
            raise ValueError(offset)
    except (ValueError, UnicodeError) as exc:
        raise _CursorError(
            "invalid_cursor",
            f"cursor {cursor!r} is not a valid page cursor") from exc
    if prefix != fingerprint[:_CURSOR_FP_CHARS]:
        raise _CursorError(
            "stale_cursor",
            "cursor was issued against a different database snapshot; "
            "restart pagination from the first page")
    return offset


def _page_args(limit_value: Any,
               cursor_value: Any) -> tuple[int | None, str | None]:
    """Validate raw ``limit``/``cursor`` values from either transport."""
    limit: int | None = None
    if limit_value is not None:
        try:
            limit = int(limit_value)
        except (TypeError, ValueError):
            raise QueryError(
                f"limit must be a positive integer, "
                f"got {limit_value!r}") from None
        if limit < 1:
            raise QueryError(
                f"limit must be a positive integer, got {limit}")
    cursor = None
    if cursor_value is not None:
        cursor = str(cursor_value)
    return limit, cursor


def _paginate(items: list, fingerprint: str, limit: int | None,
              cursor: str | None) -> tuple[list, dict[str, Any]]:
    """Slice one stable-ordered item list into a page + page info."""
    offset = decode_cursor(cursor, fingerprint) if cursor else 0
    size = limit if limit is not None else max(len(items) - offset, 0)
    window = items[offset:offset + size]
    next_offset = offset + len(window)
    next_cursor = (encode_cursor(fingerprint, next_offset)
                   if next_offset < len(items) else None)
    page = {
        "limit": limit,
        "offset": offset,
        "total": len(items),
        "next_cursor": next_cursor,
    }
    return window, page


def _query_from_params(params: Mapping[str, list[str]]) -> Query:
    """Build a query from URL parameters (``GET /v1/query`` and the
    ``/v1/metrics/*`` filters)."""
    known = {"metric", "group_by", "manufacturer", "manufacturers",
             "month_from", "month_to", "tag", "category"}
    unknown = sorted(set(params) - known)
    if unknown:
        raise QueryError(
            f"unknown query parameter(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known | {'limit', 'cursor'}))}")
    data: dict[str, Any] = {}
    if "metric" in params:
        data["metric"] = params["metric"][-1]
    for key in ("group_by", "month_from", "month_to", "tag",
                "category"):
        if key in params:
            data[key] = params[key][-1]
    names = list(params.get("manufacturer", []))
    for value in params.get("manufacturers", []):
        names.extend(part.strip() for part in value.split(",")
                     if part.strip())
    if names:
        data["manufacturers"] = tuple(names)
    return Query.from_dict(data)


class _QueryHTTPServer(ThreadingHTTPServer):
    """The HTTP server plus serving state the handler reads.

    Owns admission accounting (in-flight count, drain flag) — the
    handler calls :meth:`try_admit`/:meth:`release` around every
    non-exempt request.
    """

    daemon_threads = True

    # Set by QueryServer right after construction.
    snapshots: SnapshotManager
    metrics: MetricsRegistry
    verbose: bool = False
    max_inflight: int = 0
    deadline_s: float = 0.0
    chaos: ServingChaos | None = None
    #: Override for the ``/metrics`` body (the pre-fork worker plugs
    #: in cross-worker aggregation here); ``None`` renders the local
    #: registry.
    metrics_renderer: Callable[[MetricsRegistry], str] | None = None
    http_requests = None
    http_latency = None
    shed_total = None
    timeout_total = None
    inflight_gauge = None

    def __init__(self, server_address, handler_class, *,
                 reuse_port: bool = False,
                 listen_socket: socket.socket | None = None) -> None:
        self._reuse_port = reuse_port
        if listen_socket is not None:
            # Adopt an already-bound, already-listening socket (the
            # pre-fork fallback on platforms without SO_REUSEPORT:
            # the master listens once, every forked worker accepts
            # from the shared socket).
            super().__init__(listen_socket.getsockname()[:2],
                             handler_class, bind_and_activate=False)
            self.socket = listen_socket
            self.server_address = listen_socket.getsockname()[:2]
            host, port = self.server_address
            self.server_name = socket.getfqdn(host)
            self.server_port = port
        else:
            super().__init__(server_address, handler_class)
        self._admission = threading.Condition()
        self._inflight = 0
        self._draining = False

    def server_bind(self) -> None:
        if self._reuse_port and hasattr(socket, "SO_REUSEPORT"):
            # Pre-fork mode: every worker binds its own socket to the
            # same port and the kernel load-balances accepts.
            self.socket.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()

    # -- admission -----------------------------------------------------

    @property
    def draining(self) -> bool:
        """Whether graceful shutdown has begun."""
        return self._draining

    @property
    def inflight(self) -> int:
        """Requests currently admitted."""
        return self._inflight

    def try_admit(self) -> str | None:
        """Admit one request; returns the rejection reason instead
        when draining or saturated (never blocks)."""
        with self._admission:
            if self._draining:
                return "draining"
            if (self.max_inflight
                    and self._inflight >= self.max_inflight):
                return "overloaded"
            self._inflight += 1
            inflight = self._inflight
        if self.inflight_gauge is not None:
            self.inflight_gauge.set(inflight)
        return None

    def release(self) -> None:
        """Release one admitted request (wakes the drain waiter)."""
        with self._admission:
            self._inflight -= 1
            inflight = self._inflight
            if inflight == 0:
                self._admission.notify_all()
        if self.inflight_gauge is not None:
            self.inflight_gauge.set(inflight)

    def begin_drain(self) -> None:
        """Stop admitting new work (existing requests finish)."""
        with self._admission:
            self._draining = True

    def wait_drained(self, timeout: float) -> bool:
        """Block until in-flight hits zero (or ``timeout`` passes)."""
        deadline = time.monotonic() + timeout
        with self._admission:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._admission.wait(remaining)
        return True


class _Handler(BaseHTTPRequestHandler):
    """Routes one request; serving state lives on the server object."""

    server_version = f"repro-query/{__version__}"
    protocol_version = "HTTP/1.1"
    # Headers and body go out as separate writes; without TCP_NODELAY
    # Nagle holds the second one for the peer's delayed ACK (~40ms
    # per request on keep-alive connections).
    disable_nagle_algorithm = True
    server: _QueryHTTPServer

    # -- plumbing ------------------------------------------------------

    @property
    def snapshot(self) -> Snapshot:
        """The snapshot captured when this request started — the only
        generation anything in the response may come from."""
        return self._snapshot

    @property
    def engine(self) -> QueryEngine:
        return self._snapshot.engine

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Any,
                   headers: Mapping[str, str] | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_body(status, "application/json", body,
                        headers=headers)

    def _send_body(self, status: int, content_type: str, body: bytes,
                   headers: Mapping[str, str] | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if getattr(self, "_deprecated", False):
            # RFC 8594-style deprecation signal on legacy aliases.
            self.send_header("Deprecation", "true")
            self.send_header(
                "Link", f'<{self._route}>; rel="successor-version"')
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self._observe(status)

    def _observe(self, status: int) -> None:
        """Record the request into the server's metrics registry."""
        server = self.server
        requests = getattr(server, "http_requests", None)
        if requests is None:
            return
        route = getattr(self, "_route", "<unknown>")
        requests.labels(route, str(status)).inc()
        started = getattr(self, "_started", None)
        if started is not None:
            server.http_latency.labels(route).observe(
                time.perf_counter() - started)

    # -- request lifecycle ---------------------------------------------

    def _begin(self, path: str) -> str:
        """Per-request state reset (handlers are reused across
        keep-alive requests on one connection).

        Resolves legacy aliases to their canonical ``/v1`` route —
        everything downstream (routing, admission exemption, metric
        labels) sees only canonical routes.
        """
        self._started = time.perf_counter()
        self._snapshot = self.server.snapshots.current()
        self._admitted = False
        route = urlsplit(path).path.rstrip("/") or "/"
        canonical = LEGACY_ALIASES.get(route)
        self._deprecated = canonical is not None
        if canonical is not None:
            route = canonical
        self._route = (route if route in _KNOWN_ROUTES
                       else "<unknown>")
        return route

    def _admit(self, route: str) -> bool:
        """Admission control for non-exempt routes.

        Returns whether the request may proceed; a shed request has
        already been answered with a structured ``503 + Retry-After``.
        """
        if route in _EXEMPT_ROUTES:
            return True
        reason = self.server.try_admit()
        if reason is None:
            self._admitted = True
            return True
        if (reason == "overloaded"
                and self.server.shed_total is not None):
            self.server.shed_total.inc()
        self._send_json(
            503,
            error_envelope(reason, f"server is {reason}; retry later",
                           {"retry_after_s": RETRY_AFTER_S}),
            headers={"Retry-After": str(RETRY_AFTER_S)})
        return False

    def _finish(self) -> None:
        if self._admitted:
            self._admitted = False
            self.server.release()

    def _deadline_exceeded(self) -> float | None:
        """Elapsed seconds when the admitted request blew its budget
        (``None`` otherwise — including for exempt requests)."""
        deadline = self.server.deadline_s
        if not self._admitted or deadline <= 0:
            return None
        elapsed = time.perf_counter() - self._started
        return elapsed if elapsed > deadline else None

    def _dispatch(self, handler, *args) -> None:
        chaos = self.server.chaos
        if chaos is not None and self._admitted:
            chaos.maybe_slow_query()
        try:
            status, payload = handler(*args)
        except QueryError as exc:
            status, payload = 400, error_envelope(
                "invalid_query", str(exc))
        except _CursorError as exc:
            status, payload = 400, error_envelope(exc.code, str(exc))
        except InsufficientDataError as exc:
            status, payload = 422, error_envelope(
                "insufficient_data", str(exc))
        except Exception as exc:
            # Sanitized: whatever blew up, the wire sees no detail.
            self.log_error("unhandled error on %s: %r",
                           self._route, exc)
            status, payload = 500, error_envelope(
                "internal", "internal server error")
        elapsed = self._deadline_exceeded()
        if elapsed is not None:
            if self.server.timeout_total is not None:
                self.server.timeout_total.inc()
            self._send_json(
                503,
                error_envelope(
                    "deadline_exceeded",
                    f"deadline exceeded: request took {elapsed:.3f}s "
                    f"against a {self.server.deadline_s:.3f}s budget",
                    {"elapsed_s": round(elapsed, 3),
                     "deadline_s": self.server.deadline_s,
                     "retry_after_s": RETRY_AFTER_S}),
                headers={"Retry-After": str(RETRY_AFTER_S)})
            return
        self._send_json(status, payload)

    def _not_found(self) -> None:
        self._send_json(404, error_envelope(
            "not_found", f"unknown path {self.path!r}",
            {"api_version": API_VERSION}))

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        route = self._begin(self.path)
        if not self._admit(route):
            return
        try:
            params = parse_qs(urlsplit(self.path).query)
            if route == "/v1/healthz":
                self._dispatch(self._healthz)
            elif route == "/v1/readyz":
                self._dispatch(self._readyz)
            elif route == "/v1/stats":
                self._dispatch(self._stats)
            elif route == "/v1/manufacturers":
                self._dispatch(self._manufacturers, params)
            elif route == "/v1/query":
                self._dispatch(self._query_get, params)
            elif route == "/metrics":
                self._metrics_exposition()
            elif route.startswith("/v1/metrics/"):
                self._dispatch(self._metric,
                               route[len("/v1/metrics/"):], params)
            else:
                self._not_found()
        finally:
            self._finish()

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        route = self._begin(self.path)
        if route != "/v1/query":
            self._not_found()
            return
        if not self._admit(route):
            return
        try:
            try:
                length = int(self.headers.get("Content-Length", "0"))
                data = json.loads(self.rfile.read(length) or b"{}")
            except (ValueError, json.JSONDecodeError) as exc:
                self._send_json(400, error_envelope(
                    "bad_json",
                    f"request body is not valid JSON: {exc}"))
                return
            self._dispatch(self._query_post, data)
        finally:
            self._finish()

    # -- endpoints -----------------------------------------------------

    def _healthz(self) -> tuple[int, Any]:
        """Liveness: the process is up (always 200 while serving)."""
        return 200, {
            "status": "ok",
            "version": __version__,
            "fingerprint": self.engine.fingerprint,
        }

    def _readyz(self) -> tuple[int, Any]:
        """Readiness: should a load balancer send traffic here.

        Reads the *manager*, not the request's captured snapshot —
        readiness describes what the next request would get.
        """
        manager = self.server.snapshots
        stats = manager.stats()
        if self.server.draining:
            status, state = 503, "draining"
        elif stats["degraded"]:
            status, state = 200, "degraded"
        else:
            status, state = 200, "ok"
        return status, {
            "status": state,
            "generation": stats["snapshot"]["generation"],
            "fingerprint": stats["snapshot"]["fingerprint"],
            "quarantined": stats["quarantined"],
            "last_error": stats["last_error"],
        }

    def _stats(self) -> tuple[int, Any]:
        return 200, self.engine.stats()

    def _manufacturers(self, params) -> tuple[int, Any]:
        limit, cursor = _page_args(
            params.get("limit", [None])[-1],
            params.get("cursor", [None])[-1])
        names = list(self.engine.index.manufacturers)
        if limit is None and cursor is None:
            return 200, {"manufacturers": names}
        window, page = _paginate(names, self.engine.fingerprint,
                                 limit, cursor)
        return 200, {"manufacturers": window, "page": page}

    def _query_get(self, params) -> tuple[int, Any]:
        params = dict(params)
        limit, cursor = _page_args(
            params.pop("limit", [None])[-1],
            params.pop("cursor", [None])[-1])
        query = _query_from_params(params)
        result = self.engine.execute(query)
        return 200, self._query_body(result, limit, cursor)

    def _query_post(self, data) -> tuple[int, Any]:
        if not isinstance(data, dict):
            raise QueryError("request body must be a JSON object")
        data = dict(data)
        limit, cursor = _page_args(data.pop("limit", None),
                                   data.pop("cursor", None))
        result = self.engine.execute(Query.from_dict(data))
        return 200, self._query_body(result, limit, cursor)

    def _query_body(self, result, limit: int | None,
                    cursor: str | None) -> Any:
        """The ``/v1/query`` body — paginated only on request.

        The page is a *view* over the (possibly cached) result value:
        the cached dict itself is never mutated, and an unpaginated
        request returns the exact body earlier releases served.
        """
        body = result.to_dict()
        if limit is None and cursor is None:
            return body
        if result.query.group_by is None or not isinstance(
                result.value, dict):
            raise QueryError(
                "pagination requires a grouped query: set group_by, "
                "or drop the limit/cursor parameters")
        items = list(result.value.items())
        window, page = _paginate(items, result.fingerprint, limit,
                                 cursor)
        body["result"] = dict(window)
        body["page"] = page
        return body

    def _metrics_exposition(self) -> None:
        """``GET /metrics``: the registry as Prometheus text.

        Cache and index levels are *sampled at scrape time* — they are
        gauges owned by the engine, not counters the request path
        maintains — so a scrape always reflects the live state.  A
        ``metrics_renderer`` hook on the server object overrides the
        final rendering (the pre-fork worker aggregates every
        sibling's registry dump there).
        """
        registry: MetricsRegistry = self.server.metrics
        stats = self.engine.stats()
        cache = stats["cache"]
        registry.gauge(
            QUERY_CACHE_HITS, "Query-result LRU hits").set(
            cache["hits"])
        registry.gauge(
            QUERY_CACHE_MISSES, "Query-result LRU misses").set(
            cache["misses"])
        registry.gauge(
            QUERY_CACHE_EVICTIONS, "Query-result LRU evictions").set(
            cache["evictions"])
        registry.gauge(
            QUERY_CACHE_SIZE, "Query-result LRU resident entries").set(
            cache["size"])
        index_g = registry.gauge(
            INDEX_RECORDS, "Records in the served database index",
            ("kind",))
        for kind in ("disengagements", "accidents", "mileage_cells"):
            index_g.labels(kind).set(stats["index"][kind])
        renderer = getattr(self.server, "metrics_renderer", None)
        if renderer is not None:
            text = renderer(registry)
        else:
            text = registry.render_prometheus()
        self._send_body(200, "text/plain; version=0.0.4",
                        text.encode("utf-8"))

    def _metric(self, name: str, params) -> tuple[int, Any]:
        if name not in METRIC_SHORTCUTS:
            return 404, error_envelope(
                "not_found", f"unknown metric endpoint {name!r}",
                {"known": list(METRIC_SHORTCUTS)})
        if "metric" in params:
            raise QueryError(
                "/v1/metrics/* fixes the metric; drop the 'metric' "
                "parameter or use /v1/query")
        query = _query_from_params({**params, "metric": [name]})
        return 200, self.engine.execute(query).to_dict()


class QueryServer:
    """A running (or startable) HTTP server around one engine.

    Usable blocking (:meth:`serve_forever`) or as a context manager
    that serves from a daemon thread — the test/embedding mode::

        with QueryServer(db, port=0) as server:
            urllib.request.urlopen(server.url + "/v1/healthz")

    Accepts a raw :class:`~repro.pipeline.store.FailureDatabase`, a
    prebuilt :class:`~repro.query.engine.QueryEngine`, or a
    :class:`~repro.query.snapshot.SnapshotManager` (the always-on
    mode: swap snapshots underneath while serving).  ``max_inflight``
    bounds concurrent admitted requests (0 = unbounded);
    ``deadline_s`` is the per-request budget (0 = none);
    ``drain_timeout_s`` caps how long :meth:`shutdown` waits for
    in-flight requests before closing anyway.  ``index_backend``
    (``monolithic`` / ``sharded``) and ``shards`` pick the index
    layout when the server builds the engine itself.
    """

    def __init__(self, db: FailureDatabase | QueryEngine
                 | SnapshotManager,
                 host: str = "127.0.0.1", port: int = 8350, *,
                 cache_size: int = 256,
                 verbose: bool = False,
                 registry: MetricsRegistry | None = None,
                 max_inflight: int = 64,
                 deadline_s: float = 10.0,
                 drain_timeout_s: float = 5.0,
                 index_backend: str = "monolithic",
                 shards: int = DEFAULT_SHARDS,
                 reuse_port: bool = False,
                 listen_socket: socket.socket | None = None,
                 chaos: ServingChaos | None = None) -> None:
        # The process-global registry by default, so a pipeline run in
        # this process shows up on the same /metrics scrape.
        self.registry = registry or default_registry()
        if isinstance(db, SnapshotManager):
            self.snapshots = db
        else:
            self.snapshots = SnapshotManager(
                db, cache_size=cache_size, registry=self.registry,
                index_backend=index_backend, shards=shards,
                chaos=chaos)
        self.drain_timeout_s = drain_timeout_s
        httpd = _QueryHTTPServer((host, port), _Handler,
                                 reuse_port=reuse_port,
                                 listen_socket=listen_socket)
        httpd.snapshots = self.snapshots
        httpd.verbose = verbose
        httpd.metrics = self.registry
        httpd.max_inflight = max_inflight
        httpd.deadline_s = deadline_s
        httpd.chaos = chaos
        httpd.http_requests = self.registry.counter(
            HTTP_REQUESTS, "HTTP requests by route and status",
            ("route", "status"))
        httpd.http_latency = self.registry.histogram(
            HTTP_LATENCY, "HTTP request latency by route", ("route",))
        httpd.shed_total = self.registry.counter(
            REQUESTS_SHED,
            "Requests shed by admission control (503 + Retry-After)")
        httpd.timeout_total = self.registry.counter(
            REQUEST_TIMEOUTS,
            "Requests that blew their per-request deadline")
        httpd.inflight_gauge = self.registry.gauge(
            REQUESTS_INFLIGHT, "Requests currently being handled")
        self._httpd = httpd
        self._thread: threading.Thread | None = None
        self._watch_thread: threading.Thread | None = None
        self._watch_stop = threading.Event()

    @property
    def engine(self) -> QueryEngine:
        """The engine of the currently served snapshot."""
        return self.snapshots.engine

    @property
    def host(self) -> str:
        """Bound host."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (the real one, also when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    @property
    def metrics_renderer(self) -> Callable[[MetricsRegistry], str] | None:
        """Override for the ``/metrics`` body (see the handler)."""
        return self._httpd.metrics_renderer

    @metrics_renderer.setter
    def metrics_renderer(
            self, renderer: Callable[[MetricsRegistry], str] | None,
            ) -> None:
        self._httpd.metrics_renderer = renderer

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._httpd.serve_forever()

    def start(self) -> "QueryServer":
        """Serve from a background daemon thread."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-query-server", daemon=True)
        self._thread.start()
        return self

    def watch(self, directory: str | Path,
              interval_s: float = 2.0) -> "QueryServer":
        """Poll ``directory`` for database drops; hot-swap each one.

        New or changed ``*.json`` files are loaded through the
        snapshot manager — a corrupt drop is quarantined (``/readyz``
        goes ``degraded``) and the last-good snapshot keeps serving.
        """
        watcher = DirectoryWatcher(directory)

        def loop() -> None:
            while not self._watch_stop.is_set():
                for path in watcher.poll():
                    try:
                        self.snapshots.load(path)
                    except OSError:
                        continue  # vanished mid-read; next poll
                self._watch_stop.wait(interval_s)

        self._watch_thread = threading.Thread(
            target=loop, name="repro-query-watch", daemon=True)
        self._watch_thread.start()
        return self

    def shutdown(self) -> None:
        """Graceful stop: drain in-flight requests, then close.

        New non-exempt requests are refused (503 ``draining``) the
        moment this is called; existing ones get up to
        ``drain_timeout_s`` to finish before the socket closes.
        """
        self._watch_stop.set()
        if self._watch_thread is not None:
            self._watch_thread.join(timeout=5.0)
            self._watch_thread = None
        self._httpd.begin_drain()
        self._httpd.wait_drained(self.drain_timeout_s)
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def serve(db: FailureDatabase, host: str = "127.0.0.1",
          port: int = 8350, *, cache_size: int = 256,
          verbose: bool = True, max_inflight: int = 64,
          deadline_s: float = 10.0,
          index_backend: str = "monolithic",
          shards: int = DEFAULT_SHARDS,
          watch: str | Path | None = None,
          watch_interval_s: float = 2.0) -> None:
    """Blocking convenience entry point (the ``repro serve`` verb)."""
    server = QueryServer(db, host, port, cache_size=cache_size,
                         verbose=verbose, max_inflight=max_inflight,
                         deadline_s=deadline_s,
                         index_backend=index_backend, shards=shards)
    if watch is not None:
        server.watch(watch, watch_interval_s)
    try:
        server.serve_forever()
    finally:
        server._watch_stop.set()
        server._httpd.server_close()
